"""Repository-level pytest configuration.

Registers the ``--update-results`` flag used by the benchmark suite
(``benchmarks/conftest.py``).  Without the flag, benchmark tables are
written to the untracked ``benchmarks/out/`` directory, so local runs and
CI never churn the committed tables under ``benchmarks/results/``; with
it, the committed tables are refreshed in place.  The option must be
registered here (the rootdir conftest) so it exists regardless of which
test directory is selected on the command line.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-results",
        action="store_true",
        default=False,
        help="rewrite the committed benchmark tables under "
        "benchmarks/results/ (default: write to benchmarks/out/)",
    )
