"""Repository-level pytest configuration.

Registers the ``--update-results`` flag used by the benchmark suite
(``benchmarks/conftest.py``).  Without the flag, benchmark tables are
written to the untracked ``benchmarks/out/`` directory, so local runs and
CI never churn the committed tables under ``benchmarks/results/``; with
it, the committed tables are refreshed in place.  The option must be
registered here (the rootdir conftest) so it exists regardless of which
test directory is selected on the command line.

Also registers ``--backend``: tests parametrized over the evaluation
backends (they request the ``backend_name`` fixture) normally run once
per registered backend; ``--backend sql`` restricts them to a single
backend, which is how CI exercises the SQL path on a fast tier-1 subset.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent / "src"))

from repro.data.backends import BACKENDS  # noqa: E402

# Derived from the registry so a newly registered backend is picked up by
# every backend-parametrized test without touching this file.
ALL_BACKENDS = tuple(sorted(BACKENDS))


def pytest_addoption(parser):
    parser.addoption(
        "--update-results",
        action="store_true",
        default=False,
        help="rewrite the committed benchmark tables under "
        "benchmarks/results/ (default: write to benchmarks/out/)",
    )
    parser.addoption(
        "--backend",
        choices=ALL_BACKENDS,
        default=None,
        help="restrict backend-parametrized tests to one evaluation "
        "backend (default: run them against every registered backend)",
    )


def pytest_generate_tests(metafunc):
    if "backend_name" in metafunc.fixturenames:
        choice = metafunc.config.getoption("--backend")
        names = (choice,) if choice else ALL_BACKENDS
        metafunc.parametrize("backend_name", names)
