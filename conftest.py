"""Repository-level pytest configuration.

Registers the ``--update-results`` flag used by the benchmark suite
(``benchmarks/conftest.py``).  Without the flag, benchmark tables are
written to the untracked ``benchmarks/out/`` directory, so local runs and
CI never churn the committed tables under ``benchmarks/results/``; with
it, the committed tables are refreshed in place.  The option must be
registered here (the rootdir conftest) so it exists regardless of which
test directory is selected on the command line.

Also registers ``--backend`` and ``--backend-opt``: tests parametrized
over the evaluation backends (they request the ``backend_name`` fixture)
normally run once per registered backend; ``--backend sql`` restricts
them to a single backend, which is how CI exercises the SQL, numpy and
dbapi paths on a fast tier-1 subset.  ``--backend-opt KEY=VALUE``
(repeatable) rides along through the ``backend_options`` fixture — the
same uniform options pipeline the CLI subcommands use (DESIGN.md §2i) —
so e.g. ``--backend dbapi --backend-opt uri=file:/tmp/t/s.sqlite`` pins
the whole backend-parametrized suite to a file-backed store.
"""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent / "src"))

from repro.data.backends import REGISTRY, parse_backend_opts  # noqa: E402

# Derived from the plugin registry (DESIGN.md §2i) so a newly registered
# backend — including entry-point / REPRO_BACKENDS plugins — is picked up
# by every backend-parametrized test without touching this file.
ALL_BACKENDS = tuple(REGISTRY.names())


def pytest_addoption(parser):
    parser.addoption(
        "--update-results",
        action="store_true",
        default=False,
        help="rewrite the committed benchmark tables under "
        "benchmarks/results/ (default: write to benchmarks/out/)",
    )
    parser.addoption(
        "--backend",
        choices=ALL_BACKENDS,
        default=None,
        help="restrict backend-parametrized tests to one evaluation "
        "backend (default: run them against every registered backend)",
    )
    parser.addoption(
        "--backend-opt",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="backend constructor option for backend-parametrized tests "
        "(repeatable, typed coercion; the CLI --backend-opt pipeline)",
    )


def pytest_generate_tests(metafunc):
    if "backend_name" in metafunc.fixturenames:
        choice = metafunc.config.getoption("--backend")
        names = (choice,) if choice else ALL_BACKENDS
        metafunc.parametrize("backend_name", names)


@pytest.fixture(scope="session")
def backend_options(request):
    """Parsed ``--backend-opt`` pairs (empty dict when none given)."""
    return parse_backend_opts(request.config.getoption("--backend-opt"))
