"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so editable
installs must use the classic ``setup.py develop`` path; all metadata lives
in pyproject.toml and is mirrored here.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "qhorn: learning and verifying quantified Boolean queries by "
        "example (PODS 2013 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
