#!/usr/bin/env python
"""Remote users on one event loop: the async half of the sans-io protocol.

Three learning sessions run *concurrently* in a single thread.  Each
learner is driven by an :class:`~repro.protocol.aio.AsyncDriver` over a
:class:`~repro.oracle.QueueUserOracle` — question batches go out on an
asyncio queue, answers come back on another — and each "remote user" is
an independent echo task answering from their own intended query (with a
simulated think delay).  While one user thinks, the other sessions'
rounds are served: no thread is blocked, which is exactly what lets a
server interleave thousands of these (DESIGN.md §2e).

Run:  python examples/remote_session.py
"""

import asyncio
import random

from repro import QueryOracle, parse_query
from repro.learning import Qhorn1Learner
from repro.oracle import QueueUserOracle
from repro.protocol import LearnerProtocol
from repro.protocol.aio import AsyncDriver


async def remote_user(
    name: str, oracle: QueueUserOracle, intent, delay: float
) -> None:
    """The far side of the queues: a user answering from their intent."""
    truth = QueryOracle(intent)
    rounds = 0
    while True:
        questions = await oracle.outbox.get()
        if questions is None:  # session over
            return
        rounds += 1
        await asyncio.sleep(delay)  # the user thinks…
        answers = [truth.ask(question) for question in questions]
        print(f"  [{name}] round {rounds}: answered {len(answers)} questions")
        await oracle.inbox.put(answers)


async def run_session(name: str, shorthand: str, n: int, delay: float):
    intent = parse_query(shorthand, n=n)
    queue_oracle = QueueUserOracle(n)
    # The protocol object is the bookkeeping: rounds and answered counts
    # accumulate as the driver pumps it, no oracle wrapper needed.
    protocol = LearnerProtocol(Qhorn1Learner(queue_oracle).steps())
    user = asyncio.ensure_future(
        remote_user(name, queue_oracle, intent, delay)
    )
    try:
        result = await AsyncDriver(queue_oracle).run(protocol)
    finally:
        await queue_oracle.outbox.put(None)
        await user
    exact = result.query == intent
    print(
        f"[{name}] learned {result.query.shorthand()!r} in "
        f"{protocol.questions_answered} questions / "
        f"{protocol.rounds} rounds (exact: {exact})"
    )
    return result


async def main() -> None:
    rng = random.Random(2013)
    sessions = [
        ("alice", "∀x1 ∃x2x3", 4, 0.002),
        ("bob", "∀x1x2 ∃x3x4", 4, 0.001),
        ("carol", "∃x1x2 ∃x3x4x5", 5, 0.003),
    ]
    rng.shuffle(sessions)
    print("serving", len(sessions), "remote users concurrently…\n")
    results = await asyncio.gather(
        *(run_session(*session) for session in sessions)
    )
    assert all(results)
    print("\nall sessions finished on one event loop, zero blocked threads")


if __name__ == "__main__":
    asyncio.run(main())
