#!/usr/bin/env python
"""From examples to SQL: close the loop the paper opens in §1.

"SQL interfaces force us to formulate precise quantified queries from the
get go."  Here the quantified query is *learned* from yes/no examples, then
compiled to SQL and executed on a real SQLite database — with the
in-process engine cross-checking every answer.

Run:  python examples/sql_export.py
"""

import random

from repro import QueryOracle, learn_qhorn1
from repro.data import QueryEngine
from repro.data.chocolate import (
    intro_query,
    random_store,
    storefront_vocabulary,
)
from repro.data.sql import SqliteEngine, to_sql


def main() -> None:
    vocabulary = storefront_vocabulary()
    store = random_store(100, random.Random(1304))

    # learn the intro query from membership answers
    learned = learn_qhorn1(QueryOracle(intro_query())).query
    print(f"learned query: {learned.shorthand()}")
    print("\npropositions:")
    print(vocabulary.legend())

    # compile to SQL over the objects/rows encoding
    sql = to_sql(learned, vocabulary)
    print("\ncompiled SQL:")
    print(sql)

    # execute on SQLite and cross-check with the in-process engine
    with SqliteEngine(store, vocabulary) as db:
        via_sql = db.execute(learned)
        print(f"\nSQLite answers: {len(via_sql)} boxes")
        for key in via_sql[:5]:
            print(f"  {key}")
        print("\nquery plan:")
        for line in db.explain_plan(learned)[:4]:
            print(f"  {line}")

    memory = QueryEngine(store, vocabulary)
    via_memory = sorted(o.key for o in memory.execute(learned))
    print(f"\nin-process engine agrees: {via_sql == via_memory}")
    assert via_sql == via_memory


if __name__ == "__main__":
    main()
