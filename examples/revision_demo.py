#!/usr/bin/env python
"""Query revision (§6 future work, implemented): fix a close-but-wrong query.

A colleague hands you a saved query (JSON) that is *almost* what you want.
Instead of relearning from scratch, the reviser confirms the parts you
agree with and repairs only the differences — cost proportional to the
revision distance.

Run:  python examples/revision_demo.py
"""

from repro import CountingOracle, QueryOracle, canonicalize, parse_query
from repro.analysis import revision_distance
from repro.core.serialize import query_from_json, query_to_json
from repro.learning import RolePreservingLearner, revise_query


def main() -> None:
    # the query your colleague saved (the paper's §4.2 running example)
    saved = parse_query(
        "∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6"
    )
    wire = query_to_json(saved)
    print("received query (JSON wire format):")
    print(wire[:200] + " ...")
    given = query_from_json(wire)

    # your actual intent differs in one universal Horn expression
    intended = parse_query(
        "∀x1x4→x5 ∀x2x3→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6"
    )
    print(f"\ngiven    : {given.shorthand()}")
    print(f"intended : {intended.shorthand()}")
    print(f"revision distance (§6 lattice metric): "
          f"{revision_distance(given, intended)}")

    you = CountingOracle(QueryOracle(intended))
    result = revise_query(given, you)
    print(f"\nrevised  : {result.query.shorthand()}")
    print("repairs:")
    for r in result.repairs:
        print(f"  - {r}")
    print(f"questions spent revising: {you.questions_asked}")
    assert canonicalize(result.query) == canonicalize(intended)

    # versus learning from scratch
    fresh = CountingOracle(QueryOracle(intended))
    RolePreservingLearner(fresh).learn()
    print(f"questions to learn from scratch: {fresh.questions_asked}")

    # and the degenerate case: the saved query was already right
    confirm = CountingOracle(QueryOracle(saved))
    unchanged = revise_query(saved, confirm)
    print(f"\nconfirming an already-correct query: "
          f"{confirm.questions_asked} questions "
          f"(changed: {unchanged.changed})")


if __name__ == "__main__":
    main()
