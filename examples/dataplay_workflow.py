#!/usr/bin/env python
"""The full DataPlay-style workflow (§1): specify → learn → verify → run.

1. The user picks propositions over the embedded relation.
2. The system drafts a plausible quantified query from them.
3. The verification set shows the draft is wrong for this user.
4. Example-driven learning recovers the intended query exactly, with every
   question rendered as a concrete data object (the transcript).
5. The final query runs against the database.

Run:  python examples/dataplay_workflow.py
"""

import random

from repro import CountingOracle, QueryOracle, canonicalize, parse_query
from repro.data import BoolIs, Equals, QueryEngine, Vocabulary
from repro.data.chocolate import chocolate_schema, random_store
from repro.interactive import LearningSession, VerificationSession
from repro.learning import RolePreservingLearner


def main() -> None:
    rng = random.Random(2013)  # the year of PODS

    # 1. propositions (checked for interference automatically)
    vocabulary = Vocabulary(
        chocolate_schema(),
        [
            BoolIs("isDark", name="dark"),
            BoolIs("isSugarFree", name="sugar-free"),
            Equals("origin", "Madagascar", name="from Madagascar"),
        ],
    )
    print("chosen propositions:")
    print(vocabulary.legend())

    # the user's (hidden) intent: all dark; some sugar-free Madagascar one
    intended = parse_query("∀x1 ∃x2x3", n=3)
    user = QueryOracle(intended)

    # 2. the system drafts the "all existential" reading of the atoms
    draft = parse_query("∃x1 ∃x2 ∃x3", n=3)
    print(f"\nsystem draft : {draft.shorthand()}")

    # 3. verify the draft against the user — it fails fast
    check = VerificationSession(draft, user, vocabulary.render_question)
    outcome = check.run(stop_at_first=True)
    print(f"draft verified: {outcome.verified} "
          f"(after {outcome.questions_asked} questions)")
    if not outcome.verified:
        d = outcome.disagreements[0]
        print(f"first disagreement: {d.describe()}")

    # 4. learn the real query by example, rendering every question as rows
    session = LearningSession(
        RolePreservingLearner,
        CountingOracle(user),
        renderer=vocabulary.render_question,
    )
    result = session.run()
    print(f"\nlearned query: {result.query.shorthand()}")
    print(f"questions asked: {result.questions_asked}")
    assert canonicalize(result.query) == canonicalize(intended)

    print("\nfirst two exchanges of the transcript:")
    for entry in list(result.transcript)[:2]:
        print(entry.describe())
        print()

    # 5. confirm the learned query, then execute it on the store
    confirm = VerificationSession(result.query, user)
    assert confirm.run().verified
    print("learned query verified against the user ✓")

    store = random_store(100, rng)
    engine = QueryEngine(store, vocabulary)
    answers = engine.execute(result.query)
    print(f"\nmatching boxes in the store: {len(answers)} / {len(store)}")
    for box in answers[:5]:
        print(f"  {box.key}")


if __name__ == "__main__":
    main()
