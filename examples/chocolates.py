#!/usr/bin/env python
"""The paper's introduction, end to end: buying chocolates by example.

You want "a box with dark chocolates — some sugar-free with nuts".  Instead
of writing the quantified query, you answer yes/no on example boxes the
learner synthesizes (or picks from the store's real stock).  The learned
query then filters the store's hundred boxes.

Run:  python examples/chocolates.py
"""

import random

from repro import CountingOracle, canonicalize, learn_qhorn1
from repro.data import ExampleFactory, QueryEngine
from repro.data.chocolate import (
    intro_query,
    random_store,
    storefront_vocabulary,
)


class Shopper:
    """The simulated customer: inspects real boxes and labels them."""

    def __init__(self, vocabulary, factory):
        self.intended = intro_query()
        self.vocabulary = vocabulary
        self.factory = factory
        self.n = vocabulary.n
        self.inspected = 0

    def ask(self, question):
        box = self.factory.from_database(question)
        self.inspected += 1
        if self.inspected <= 2:  # show the first couple of boxes
            print(f"\n--- box offered to the shopper ---")
            print(box.format(columns=[
                "isDark", "isSugarFree", "hasNuts", "hasFilling"
            ]))
        tuples = self.vocabulary.abstract_object(box.rows)
        verdict = self.intended.evaluate(tuples)
        if self.inspected <= 2:
            print("shopper says:", "I'd buy it" if verdict else "push aside")
        return verdict


def main() -> None:
    rng = random.Random(1304)
    vocabulary = storefront_vocabulary()
    store = random_store(100, rng)

    print("propositions the shopper mentioned:")
    print(vocabulary.legend())

    shopper = Shopper(vocabulary, ExampleFactory(vocabulary, database=store))
    counted = CountingOracle(shopper)
    result = learn_qhorn1(counted)

    print(f"\nlearned query: {result.query.shorthand()}")
    print(f"boxes inspected: {shopper.inspected}")
    exact = canonicalize(result.query) == canonicalize(intro_query())
    print(f"matches the shopper's intent exactly: {exact}")
    assert exact

    engine = QueryEngine(store, vocabulary)
    matches = engine.execute(result.query)
    print(f"\nboxes in stock matching the learned query: "
          f"{len(matches)} / {len(store)}")
    for box in matches[:3]:
        print(f"  {box.key}  ({len(box.rows)} chocolates)")

    if matches:
        print("\nwhy the first box matches:")
        for line in engine.explain(result.query, matches[0]):
            mark = "✓" if line.satisfied else "✗"
            print(f"  {mark} {line.expression}: {line.detail}")


if __name__ == "__main__":
    main()
