#!/usr/bin/env python
"""Query verification (§4): check a hand-written query against your intent.

A user wrote the six-variable query from the paper's §4.2 — but their true
intent differs in one universal Horn expression.  The O(k) verification set
surfaces the discrepancy, naming the exact membership question the user
disagrees with; learning the same query from scratch would cost many times
more questions.

Run:  python examples/verification_demo.py
"""

from repro import CountingOracle, QueryOracle, parse_query
from repro.core.generators import paper_running_query
from repro.learning import RolePreservingLearner
from repro.verification import Verifier, build_verification_set


def main() -> None:
    given = paper_running_query()
    print(f"query as written : {given.shorthand()}")

    verification_set = build_verification_set(given)
    print(f"verification set : {verification_set.size} membership questions")
    print(f"breakdown        : {verification_set.counts()}")

    # Scenario 1: the query is exactly what the user meant.
    user = CountingOracle(QueryOracle(given))
    outcome = Verifier(given).run(user)
    print(f"\n[scenario 1] intent == query: verified={outcome.verified} "
          f"after {outcome.questions_asked} questions")

    # Scenario 2: the user actually wants body {x2,x3} (not {x3,x4}) for x5.
    intended = parse_query(
        "∀x1x4→x5 ∀x2x3→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6"
    )
    print(f"\n[scenario 2] the user's real intent: {intended.shorthand()}")
    user2 = CountingOracle(QueryOracle(intended))
    outcome2 = Verifier(given).run(user2)
    print(f"verified={outcome2.verified} "
          f"after {outcome2.questions_asked} questions")
    for d in outcome2.disagreements:
        print(f"  disagreement: {d.describe()}")
        print("  the offending example object:")
        for line in d.item.question.format().splitlines():
            print(f"    {line}")

    # The economics: verification vs learning from scratch (§4).
    learner_user = CountingOracle(QueryOracle(intended))
    RolePreservingLearner(learner_user).learn()
    print(f"\nverification cost : {outcome2.questions_asked} questions")
    print(f"learning cost     : {learner_user.questions_asked} questions")
    assert outcome2.questions_asked < learner_user.questions_asked
    assert not outcome2.verified


if __name__ == "__main__":
    main()
