#!/usr/bin/env python
"""Interactive CLI: be the oracle yourself, with a parkable session.

The learner asks *you* membership questions about chocolate boxes; answer
y/n and watch it converge on a quantified query for your taste.  The
session runs on the resumable step API (DESIGN.md §2e): the learner
yields one round of questions at a time, your answers are fed back, and
mid-session the whole dialogue is parked into a serializable snapshot and
resumed through a fresh learner — the demonstration that the transcript
*is* the session state.  Pass ``--auto "∀x1 ∃x2x3"`` to let a simulated
user with that intent answer instead (useful for demos and CI).

Run:  python examples/interactive_cli.py --auto "∀x1 ∃x2x3"
      python examples/interactive_cli.py            # you answer
"""

import argparse

from repro import CountingOracle, QueryOracle, parse_query
from repro.data.chocolate import storefront_vocabulary
from repro.interactive import LearningSession
from repro.learning import Qhorn1Learner
from repro.oracle import HumanOracle
from repro.protocol import Finished, answer_round


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--auto",
        metavar="QUERY",
        help="simulate the user with this intended query "
        "(shorthand, e.g. '∀x1 ∃x2x3' or 'A x1; E x2 x3')",
    )
    args = parser.parse_args()

    vocabulary = storefront_vocabulary()
    print("You are shopping for chocolate boxes. The propositions are:")
    print(vocabulary.legend())
    print()

    if args.auto:
        intent = parse_query(args.auto, n=vocabulary.n)
        print(f"(simulated user with intent: {intent.shorthand()})")
        oracle = CountingOracle(QueryOracle(intent))
    else:
        print(
            "Answer each question with y (I'd buy that box) or "
            "n (not what I want)."
        )
        oracle = CountingOracle(
            HumanOracle(vocabulary.n, render=vocabulary.render_question)
        )

    # Step-driven session: rounds come to us, answers go back — the
    # oracle only ever sees the questions we choose to forward.
    factory = (lambda o: Qhorn1Learner(o))
    session = LearningSession(
        factory, renderer=vocabulary.render_question, n=vocabulary.n
    )
    event = session.step()
    rounds = 0
    while not isinstance(event, Finished):
        rounds += 1
        event = session.feed(answer_round(oracle, event))
        if rounds == 1 and not isinstance(event, Finished):
            # Park the session after the first round and resume it from
            # the serialized replay log, as a server would between
            # answers.  The resumed session continues at the same round.
            snapshot = session.snapshot()
            print(
                f"(parking the session: {len(snapshot.responses)} answers "
                "recorded; resuming from the snapshot…)"
            )
            session = LearningSession(
                factory, renderer=vocabulary.render_question, n=vocabulary.n
            )
            event = session.resume(snapshot)

    result = session.result

    print("\n================================")
    print(f"your query: {result.query.shorthand()}")
    print(f"({result.questions_asked} questions in {rounds} rounds)")
    legend = {i: p.name for i, p in enumerate(vocabulary.propositions)}
    print("\nin words:")
    for u in sorted(result.query.universals):
        body = " and ".join(legend[v] for v in sorted(u.body))
        if body:
            print(f"  every chocolate that is {body} must be {legend[u.head]}")
        else:
            print(f"  every chocolate must be {legend[u.head]}")
    for e in sorted(result.query.existentials):
        conj = " and ".join(legend[v] for v in sorted(e.variables))
        print(f"  at least one chocolate is {conj}")


if __name__ == "__main__":
    main()
