#!/usr/bin/env python
"""Interactive CLI: be the oracle yourself.

The learner asks *you* membership questions about chocolate boxes; answer
y/n and watch it converge on a quantified query for your taste.  Pass
``--auto "∀x1 ∃x2x3"`` to let a simulated user with that intent answer
instead (useful for demos and CI).

Run:  python examples/interactive_cli.py --auto "∀x1 ∃x2x3"
      python examples/interactive_cli.py            # you answer
"""

import argparse

from repro import CountingOracle, QueryOracle, parse_query
from repro.data.chocolate import storefront_vocabulary
from repro.learning import Qhorn1Learner
from repro.oracle import HumanOracle


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--auto",
        metavar="QUERY",
        help="simulate the user with this intended query "
        "(shorthand, e.g. '∀x1 ∃x2x3' or 'A x1; E x2 x3')",
    )
    args = parser.parse_args()

    vocabulary = storefront_vocabulary()
    print("You are shopping for chocolate boxes. The propositions are:")
    print(vocabulary.legend())
    print()

    if args.auto:
        intent = parse_query(args.auto, n=vocabulary.n)
        print(f"(simulated user with intent: {intent.shorthand()})")
        oracle = CountingOracle(QueryOracle(intent))
    else:
        print(
            "Answer each question with y (I'd buy that box) or "
            "n (not what I want)."
        )
        oracle = CountingOracle(
            HumanOracle(vocabulary.n, render=vocabulary.render_question)
        )

    result = Qhorn1Learner(oracle).learn()

    print("\n================================")
    print(f"your query: {result.query.shorthand()}")
    print(f"({oracle.questions_asked} questions)")
    legend = {i: p.name for i, p in enumerate(vocabulary.propositions)}
    print("\nin words:")
    for u in sorted(result.query.universals):
        body = " and ".join(legend[v] for v in sorted(u.body))
        if body:
            print(f"  every chocolate that is {body} must be {legend[u.head]}")
        else:
            print(f"  every chocolate must be {legend[u.head]}")
    for e in sorted(result.query.existentials):
        conj = " and ".join(legend[v] for v in sorted(e.variables))
        print(f"  at least one chocolate is {conj}")


if __name__ == "__main__":
    main()
