#!/usr/bin/env python
"""Quickstart: learn a quantified Boolean query from yes/no examples.

The core loop of the paper in ~30 lines: define the query a (simulated)
user has in mind, let the learner interrogate them with membership
questions, and confirm exact identification.

Run:  python examples/quickstart.py
"""

from repro import (
    CountingOracle,
    QueryOracle,
    canonicalize,
    learn_qhorn1,
    parse_query,
)


def main() -> None:
    # The user's intended query over six propositions x1..x6:
    #   every tuple with x1 and x2 true must have x3 true,
    #   some tuple has x4 and x5 true, and every tuple has x6 true.
    target = parse_query("∀x1x2→x3 ∃x4x5 ∀x6", n=6)
    print(f"hidden target query : {target.shorthand()}")

    # The "user" is a membership oracle: it labels example objects
    # (sets of Boolean tuples) as answers or non-answers.
    user = CountingOracle(QueryOracle(target))

    # Learn the query exactly with O(n lg n) membership questions (§3.1).
    result = learn_qhorn1(user)

    print(f"learned query       : {result.query.shorthand()}")
    print(f"membership questions: {user.questions_asked}")
    print(f"largest question    : {user.stats.max_tuples} tuples")
    exact = canonicalize(result.query) == canonicalize(target)
    print(f"exact identification: {exact}")
    assert exact

    # The structured view: how the learner partitioned the variables.
    print("\nlearned structure:")
    for group in result.groups:
        body = "".join(f"x{v + 1}" for v in sorted(group.body)) or "(none)"
        for h in sorted(group.universal_heads):
            print(f"  ∀ head x{h + 1}  with body {body}")
        for h in sorted(group.existential_heads):
            print(f"  ∃ head x{h + 1}  with body {body}")


if __name__ == "__main__":
    main()
