#!/usr/bin/env python
"""A tour of the paper's lower bounds, executed.

Three hardness results made concrete:

* Theorem 2.1 — general qhorn (the Uni∧Alias family) forces 2^n − 1
  questions: watch the adversary keep everything alive.
* Lemma 3.4 — cap the tuples per question and existential learning turns
  quadratic.
* Theorem 3.9 — the information floor: membership answers are single bits,
  so k middle-level conjunctions need ≥ lg C(C(n,n/2),k) questions.

Run:  python examples/lower_bounds_tour.py
"""

from itertools import chain, combinations

from repro.analysis import (
    existential_bound_bits,
    existential_bound_closed_form,
)
from repro.core import tuples as bt
from repro.core.generators import head_pair_query, uni_alias_query
from repro.core.tuples import Question
from repro.learning import HeadPairLearner
from repro.oracle import CandidateEliminationAdversary, QueryOracle


def theorem_2_1(n: int = 6) -> None:
    print(f"— Theorem 2.1: Uni ∧ Alias over n={n} variables —")
    candidates = [
        uni_alias_query(n, list(alias))
        for alias in chain.from_iterable(
            combinations(range(n), r) for r in range(n + 1)
        )
    ]
    adversary = CandidateEliminationAdversary(candidates)
    print(f"candidate queries: {len(candidates)} (= 2^{n})")
    top = bt.all_true(n)
    checkpoints = {1, len(candidates) // 2, len(candidates) - 1}
    for alias in chain.from_iterable(
        combinations(range(n), r) for r in range(n + 1)
    ):
        if adversary.is_identified():
            break
        adversary.ask(Question.of(n, [top, bt.with_false(top, list(alias))]))
        if adversary.questions_asked in checkpoints:
            print(
                f"  after {adversary.questions_asked:4d} questions: "
                f"{adversary.remaining} candidates remain"
            )
    print(f"questions to identify: {adversary.questions_asked} "
          f"(bound: 2^n - 1 = {2**n - 1})\n")


def lemma_3_4(n: int = 16) -> None:
    print(f"— Lemma 3.4: tuple-budgeted learning, n={n} —")
    for c in (4, 8):
        worst = 0
        for i, j in combinations(range(n), 2):
            learner = HeadPairLearner(
                QueryOracle(head_pair_query(n, i, j)), max_tuples=c
            )
            learner.learn()
            worst = max(worst, learner.questions_asked)
        print(f"  c={c} tuples/question: worst case {worst} questions "
              f"(n²/c² = {n * n // (c * c)})")
    print()


def theorem_3_9() -> None:
    print("— Theorem 3.9: the information floor —")
    for n, k in ((8, 2), (10, 4), (12, 6)):
        exact = existential_bound_bits(n, k)
        closed = existential_bound_closed_form(n, k)
        print(f"  n={n:2d} k={k}: ≥ {exact:6.1f} questions "
              f"(closed form nk/2 - k lg k = {closed:.1f})")
    print()


if __name__ == "__main__":
    theorem_2_1()
    lemma_3_4()
    theorem_3_9()
