#!/usr/bin/env python
"""Two-level nested quantification (§6 future work): the semantics, live.

The paper's queries quantify once, over the tuples of an object.  With two
nesting levels a single expression carries two quantifiers — "every crate
has a box in which every chocolate is dark".  Learning this class is an
open problem; this demo shows the implemented semantics and why the space
explodes (2^(2^(2^n)) conceivable queries).

Run:  python examples/nested_quantifiers.py
"""

from repro.core import tuples as bt
from repro.core.nested2 import (
    Nested2Query,
    NestedExpression,
    Quantifier,
    brute_force_equivalent2,
    count_distinct_objects,
)

A, E = Quantifier.FORALL, Quantifier.EXISTS


def crate(*boxes):
    """A crate = set of boxes; a box = set of chocolate bit-tuples."""
    return frozenset(
        frozenset(bt.parse_tuple(c) for c in box) for box in boxes
    )


def main() -> None:
    # propositions: x1 = dark, x2 = sugar-free
    q1 = Nested2Query(2, {NestedExpression(A, E, body=frozenset({0}))})
    q2 = Nested2Query(2, {NestedExpression(E, A, body=frozenset({0}))})
    print("q1:", q1, "   (every box has a dark chocolate)")
    print("q2:", q2, "   (some box is all-dark)")

    sampler = crate(("10", "01"), ("11",))       # box1 mixed, box2 dark+sf
    all_mixed = crate(("10", "01"), ("01", "10"))
    print("\ncrate A (mixed box + all-dark box):")
    print("  q1:", q1.evaluate(sampler), " q2:", q2.evaluate(sampler))
    print("crate B (two mixed boxes):")
    print("  q1:", q1.evaluate(all_mixed), " q2:", q2.evaluate(all_mixed))

    # quantifier order matters: ∀∃ and ∃∀ are inequivalent
    print("\n∀s∃t ≡ ∃s∀t ?", brute_force_equivalent2(q1, q2))

    # but rewrites still hold one level up: ∃s∃t(B→h) ≡ its guarantee
    horn = Nested2Query(
        2, {NestedExpression(E, E, body=frozenset({0}), head=1)}
    )
    guarantee = Nested2Query(
        2, {NestedExpression(E, E, body=frozenset({0, 1}))}
    )
    print("∃s∃t(x1→x2) ≡ ∃s∃t(x1∧x2) ?",
          brute_force_equivalent2(horn, guarantee))

    print("\nwhy learning this class is open (§6): object-space sizes")
    for n in (1, 2, 3):
        subs = count_distinct_objects(n)
        print(f"  n={n}: {subs} sub-objects -> 2^{subs} two-level objects")


if __name__ == "__main__":
    main()
