#!/usr/bin/env python
"""An out-of-tree evaluation backend registering itself (DESIGN.md §2i).

The backend plugin API v2 means a third-party package never edits
``repro.data.backends``: it implements the
:class:`~repro.data.backends.EvaluationBackend` contract, registers on
the process-wide :data:`~repro.data.backends.REGISTRY` (decorator shown
here; installed packages use a ``repro.backends`` entry point, ad-hoc
code the ``REPRO_BACKENDS`` environment variable), and immediately works
everywhere a backend name is accepted — ``QueryEngine(backend=...)``,
``create_backend``, the CLI ``--backend`` choices, and the pytest
``--backend`` fixture.

The toy backend below memoizes full-relation answer bitmasks per query —
a "caching proxy" over the reference evaluation path.  Real plugins
would talk to an external system instead (see
``repro.data.backends.dbapi`` for the production-shaped example:
dialects, pooling, retry).

Run:  python examples/custom_backend.py

To load the same class without importing this file yourself::

    REPRO_BACKENDS=examples.custom_backend:MemoizingBackend \
        python -m repro.cli demo --backend memo
"""

import random

from repro.core import tuples as bt
from repro.data import QueryEngine, create_backend
from repro.data.backends import REGISTRY
from repro.data.backends.base import check_width
from repro.data.chocolate import (
    intro_query,
    random_store,
    storefront_vocabulary,
)


@REGISTRY.register("memo", supports_oracle=True, replace_existing=True)
class MemoizingBackend:
    """Per-query answer-bitmask memo over the reference path.

    Capability flags ride along at registration (or as a class
    ``capabilities`` attribute for entry-point/env plugins, where no
    registration call site exists).
    """

    name = "memo"

    def __init__(self, relation, vocabulary, auto_refresh=True, **options):
        self.relation = relation
        self.vocabulary = vocabulary
        self.auto_refresh = auto_refresh
        self.options = options
        self._memo = {}
        self._version = None

    # -- the EvaluationBackend contract --------------------------------
    @property
    def is_stale(self):
        return getattr(self.relation, "version", None) != self._version

    def refresh(self, force=False):
        if force or self.is_stale:
            self._memo.clear()
            self._version = getattr(self.relation, "version", None)
            return True
        return False

    def matching_bits(self, query):
        check_width(query, self.vocabulary)
        if self.auto_refresh and self.is_stale:
            self.refresh()
        bits = self._memo.get(query)
        if bits is None:
            abstract = self.vocabulary.abstract_object
            bits = self._memo[query] = bt.union_masks(
                1 << i
                for i, obj in enumerate(self.relation)
                if query.evaluate(abstract(obj.rows))
            )
        return bits

    def execute(self, query):
        bits = self.matching_bits(query)
        return [
            o for i, o in enumerate(self.relation) if bits >> i & 1
        ]

    def matches_many(self, query, objects=None):
        bits = self.matching_bits(query)
        if objects is None:
            return [bool(bits >> i & 1) for i in range(len(self.relation))]
        abstract = self.vocabulary.abstract_object
        return [query.evaluate(abstract(o.rows)) for o in objects]

    def describe(self):
        return (
            f"memo backend: {len(self.relation)} objects, "
            f"{len(self._memo)} memoized queries"
        )


def main():
    vocab = storefront_vocabulary()
    store = random_store(80, random.Random(7))
    query = intro_query()

    print("registered backends:", ", ".join(REGISTRY.names()))
    print("memo capabilities:  ", REGISTRY.capabilities("memo"))

    # The plugin is a first-class citizen of every construction seam.
    backend = create_backend("memo", store, vocab)
    engine = QueryEngine(store, vocab, backend="memo")
    reference = QueryEngine(store, vocab)  # default bitmask backend

    mine = [o.key for o in engine.execute_batch(query)]
    theirs = [o.key for o in reference.execute_batch(query)]
    assert mine == theirs, "answer identity is the §2c contract"
    print(f"\n{query.shorthand()} matches {len(mine)} / {len(store)} boxes")
    print(backend.describe(), "->", engine.backend.describe())

    # Second evaluation hits the memo instead of re-evaluating.
    engine.execute_batch(query)
    print("after re-run:", engine.backend.describe())


if __name__ == "__main__":
    main()
