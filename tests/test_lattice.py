"""Unit tests for the Boolean lattice (Fig. 4) and its query-aware views."""

from __future__ import annotations

import math

import pytest

from repro.core import tuples as bt
from repro.core.expressions import UniversalHorn
from repro.lattice import (
    BodyLattice,
    children,
    compliant_children,
    downset,
    is_comparable,
    level,
    level_tuples,
    parents,
    upset,
    violates_universals,
)


class TestChildrenParents:
    def test_children_drop_exactly_one_true_variable(self):
        t = bt.parse_tuple("1011")
        kids = set(children(t, 4))
        assert kids == {
            bt.parse_tuple("0011"),
            bt.parse_tuple("1001"),
            bt.parse_tuple("1010"),
        }

    def test_out_degree_is_n_minus_level(self):
        # Fig. 4: tuples at level l have n - l children.
        n = 5
        for l in range(n + 1):
            for t in level_tuples(n, l):
                assert len(list(children(t, n))) == n - l

    def test_in_degree_is_level(self):
        n = 5
        for l in range(n + 1):
            for t in level_tuples(n, l):
                assert len(list(parents(t, n))) == l

    def test_children_parents_inverse(self):
        n = 4
        for t in level_tuples(n, 2):
            for c in children(t, n):
                assert t in set(parents(c, n))


class TestLevels:
    def test_level_counts_false_variables(self):
        assert level(bt.parse_tuple("1111"), 4) == 0
        assert level(bt.parse_tuple("0000"), 4) == 4
        assert level(bt.parse_tuple("0110"), 4) == 2

    def test_level_tuples_binomial_count(self):
        n = 6
        for l in range(n + 1):
            assert sum(1 for _ in level_tuples(n, l)) == math.comb(n, l)

    def test_whole_lattice_size(self):
        n = 5
        total = sum(1 for l in range(n + 1) for _ in level_tuples(n, l))
        assert total == 2**n


class TestUpsetDownset:
    def test_downset_is_subsets(self):
        t = bt.parse_tuple("1010")
        ds = set(downset(t, 4))
        assert ds == {
            bt.parse_tuple("1010"),
            bt.parse_tuple("1000"),
            bt.parse_tuple("0010"),
            bt.parse_tuple("0000"),
        }

    def test_upset_is_supersets(self):
        t = bt.parse_tuple("1010")
        us = set(upset(t, 4))
        assert us == {
            bt.parse_tuple("1010"),
            bt.parse_tuple("1110"),
            bt.parse_tuple("1011"),
            bt.parse_tuple("1111"),
        }

    def test_strict_variants_exclude_self(self):
        t = bt.parse_tuple("1010")
        assert t not in set(downset(t, 4, strict=True))
        assert t not in set(upset(t, 4, strict=True))

    def test_upset_downset_sizes(self):
        t = bt.parse_tuple("110010")
        assert len(set(downset(t, 6))) == 2 ** bt.popcount(t)
        assert len(set(upset(t, 6))) == 2 ** (6 - bt.popcount(t))

    def test_incomparable(self):
        assert not is_comparable(bt.parse_tuple("10"), bt.parse_tuple("01"))
        assert is_comparable(bt.parse_tuple("10"), bt.parse_tuple("11"))
        assert is_comparable(bt.parse_tuple("10"), bt.parse_tuple("10"))


class TestHornCompliance:
    def test_violating_tuples_detected(self):
        # §3.2.2: 111110 violates ∀x1x2→x6.
        u = UniversalHorn(head=5, body=frozenset({0, 1}))
        assert violates_universals(bt.parse_tuple("111110"), [u])
        assert not violates_universals(bt.parse_tuple("111111"), [u])
        assert not violates_universals(bt.parse_tuple("101110"), [u])

    def test_compliant_children_matches_paper_level1(self):
        """§3.2.2 level 1: children of 111111 minus {111110, 111101}."""
        us = [
            UniversalHorn(head=4, body=frozenset({0, 3})),
            UniversalHorn(head=4, body=frozenset({2, 3})),
            UniversalHorn(head=5, body=frozenset({0, 1})),
        ]
        kids = set(compliant_children(bt.all_true(6), 6, us))
        expected = {
            bt.parse_tuple(s)
            for s in ("111011", "110111", "101111", "011111")
        }
        assert kids == expected

    def test_compliant_children_of_111011(self):
        """§3.2.2 level 2: children of 111011 minus 111010."""
        us = [
            UniversalHorn(head=4, body=frozenset({0, 3})),
            UniversalHorn(head=4, body=frozenset({2, 3})),
            UniversalHorn(head=5, body=frozenset({0, 1})),
        ]
        kids = set(compliant_children(bt.parse_tuple("111011"), 6, us))
        expected = {
            bt.parse_tuple(s)
            for s in ("011011", "101011", "110011", "111001")
        }
        assert kids == expected


class TestBodyLattice:
    def test_embedding_fixes_heads(self):
        """Fig. 5: head x5 false, other head x6 true, non-heads free."""
        lat = BodyLattice(6, head=4, all_heads=[4, 5])
        assert lat.non_heads == (0, 1, 2, 3)
        t = lat.embed([0, 3])
        assert bt.format_tuple(t, 6) == "100101"

    def test_top_and_bottom(self):
        lat = BodyLattice(6, head=4, all_heads=[4, 5])
        assert bt.format_tuple(lat.top(), 6) == "111101"
        assert bt.format_tuple(lat.bottom(), 6) == "000001"

    def test_distinguishing_tuple_matches_def_34(self):
        """Fig. 5 marks 100101 and 001101 for x5's two bodies."""
        lat = BodyLattice(6, head=4, all_heads=[4, 5])
        assert bt.format_tuple(lat.distinguishing_tuple([0, 3]), 6) == "100101"
        assert bt.format_tuple(lat.distinguishing_tuple([2, 3]), 6) == "001101"

    def test_head_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            BodyLattice(4, head=7, all_heads=[7])

    def test_head_never_in_other_heads(self):
        # callers pass the full head list including the head itself
        lat = BodyLattice(4, head=1, all_heads=[1, 2])
        assert 1 not in lat.other_heads
