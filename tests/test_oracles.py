"""Unit tests for membership oracles, wrappers and adversaries."""

from __future__ import annotations

import random

import pytest

from repro.core.generators import random_qhorn1, uni_alias_query
from repro.core.parser import parse_query
from repro.core.tuples import Question
from repro.oracle import (
    CachingOracle,
    CandidateEliminationAdversary,
    CountingOracle,
    ExhaustedReplayError,
    FunctionOracle,
    HumanOracle,
    MembershipOracle,
    NoisyOracle,
    QueryOracle,
    RecordingOracle,
    ReplayOracle,
    max_elimination,
)


class TestQueryOracle:
    def test_labels_match_target(self):
        oracle = QueryOracle(parse_query("∃x1x2"))
        assert oracle.ask(Question.from_strings("11"))
        assert not oracle.ask(Question.from_strings("10", "01"))

    def test_rejects_wrong_width(self):
        oracle = QueryOracle(parse_query("∃x1x2"))
        with pytest.raises(ValueError):
            oracle.ask(Question.from_strings("111"))

    def test_satisfies_protocol(self):
        assert isinstance(QueryOracle(parse_query("∃x1")), MembershipOracle)


class TestFunctionOracle:
    def test_wraps_callable(self):
        oracle = FunctionOracle(2, lambda q: len(q) > 1)
        assert oracle.ask(Question.from_strings("10", "01"))
        assert not oracle.ask(Question.from_strings("11"))


class TestCountingOracle:
    def test_counts_questions_and_tuples(self):
        oracle = CountingOracle(QueryOracle(parse_query("∃x1x2")))
        oracle.ask(Question.from_strings("11"))
        oracle.ask(Question.from_strings("10", "01"))
        assert oracle.questions_asked == 2
        assert oracle.stats.tuples == 3
        assert oracle.stats.max_tuples == 2
        assert oracle.stats.answers == 1
        assert oracle.stats.non_answers == 1
        assert oracle.stats.mean_tuples == pytest.approx(1.5)
        assert oracle.stats.tuples_histogram == {1: 1, 2: 1}

    def test_reset(self):
        oracle = CountingOracle(QueryOracle(parse_query("∃x1")))
        oracle.ask(Question.from_strings("1"))
        oracle.reset()
        assert oracle.questions_asked == 0

    def test_empty_stats_mean(self):
        oracle = CountingOracle(QueryOracle(parse_query("∃x1")))
        assert oracle.stats.mean_tuples == 0.0


class TestCachingOracle:
    def test_caches_both_labels(self):
        inner = CountingOracle(QueryOracle(parse_query("∃x1x2")))
        cached = CachingOracle(inner)
        q_yes, q_no = Question.from_strings("11"), Question.from_strings("10")
        assert cached.ask(q_yes) and cached.ask(q_yes)
        assert not cached.ask(q_no) and not cached.ask(q_no)
        assert inner.questions_asked == 2
        assert cached.stats.hits == 2
        assert cached.stats.misses == 2
        assert cached.stats.questions == 4
        assert cached.stats.hit_rate == pytest.approx(0.5)
        assert len(cached) == 2 and q_yes in cached

    def test_lru_eviction(self):
        cached = CachingOracle(QueryOracle(parse_query("∃x1")), maxsize=2)
        q1 = Question.of(1, [0])
        q2 = Question.of(1, [1])
        q3 = Question.of(1, [0, 1])
        cached.ask(q1)
        cached.ask(q2)
        cached.ask(q3)  # evicts q1 (least recently asked)
        assert cached.stats.evictions == 1
        assert q1 not in cached and q2 in cached and q3 in cached
        cached.ask(q1)  # a miss again
        assert cached.stats.misses == 4

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            CachingOracle(QueryOracle(parse_query("∃x1")), maxsize=0)

    def test_satisfies_protocol(self):
        assert isinstance(
            CachingOracle(QueryOracle(parse_query("∃x1"))), MembershipOracle
        )

    def test_cold_learner_counts_match_oracle_observed(self):
        """Question counts reported through the learner's CountingOracle
        equal the caching oracle's observed totals on a cache-cold run,
        and the inner oracle answers exactly the misses."""
        from repro.learning import Qhorn1Learner

        target = random_qhorn1(8, random.Random(3))
        inner = CountingOracle(QueryOracle(target))
        cached = CachingOracle(inner)
        counting = CountingOracle(cached)
        Qhorn1Learner(counting).learn()
        assert counting.questions_asked == cached.stats.questions
        assert inner.questions_asked == cached.stats.misses
        assert cached.stats.misses > 0

    def test_warm_rerun_drops_oracle_calls(self):
        """Re-running the (deterministic) learner against a warm cache asks
        the same questions but reaches the inner oracle zero more times."""
        from repro.learning import Qhorn1Learner

        target = random_qhorn1(8, random.Random(3))
        inner = CountingOracle(QueryOracle(target))
        cached = CachingOracle(inner)
        first = Qhorn1Learner(CountingOracle(cached)).learn()
        cold_misses = cached.stats.misses
        warm_counting = CountingOracle(cached)
        second = Qhorn1Learner(warm_counting).learn()
        assert cached.stats.misses == cold_misses  # no new oracle work
        assert cached.stats.hits >= warm_counting.questions_asked
        assert second.query == first.query

    def test_clear_and_reset_stats(self):
        cached = CachingOracle(QueryOracle(parse_query("∃x1")))
        q = Question.from_strings("1")
        cached.ask(q)
        cached.reset_stats()
        assert cached.stats.questions == 0
        assert cached.stats.resident_histogram == {1: 1}
        cached.clear()
        assert len(cached) == 0
        cached.ask(q)
        assert cached.stats.misses == 1


class _BatchSpy:
    """Inner oracle that records how questions arrive (calls + batches)."""

    def __init__(self, inner):
        self.inner = inner
        self.n = inner.n
        self.ask_calls = 0
        self.batches: list[list[Question]] = []

    def ask(self, q):
        self.ask_calls += 1
        return self.inner.ask(q)

    def ask_many(self, questions):
        self.batches.append(list(questions))
        return self.inner.ask_many(questions)


class TestCachingOracleBatching:
    def test_batch_hits_misses_exact_with_duplicates_and_cached(self):
        """A batch mixing already-cached questions, fresh questions and
        duplicates of fresh questions produces exactly the sequential
        hit/miss tallies: first occurrence of an uncached question is the
        only miss, duplicates and pre-cached entries are hits."""
        target = parse_query("∃x1x2")
        spy = _BatchSpy(QueryOracle(target))
        cached = CachingOracle(spy)
        q_old = Question.from_strings("11")
        q_new1 = Question.from_strings("10")
        q_new2 = Question.from_strings("01", "10")
        cached.ask(q_old)  # pre-cache

        batch = [q_old, q_new1, q_new1, q_old, q_new2, q_new1]
        responses = cached.ask_many(batch)

        assert responses == [target.evaluate(q) for q in batch]
        assert cached.stats.misses == 3  # q_old (pre-batch), q_new1, q_new2
        assert cached.stats.hits == 4  # q_old ×2, q_new1 duplicates ×2
        assert cached.stats.questions == 7
        # The inner oracle saw exactly one batch with only the two misses.
        assert spy.batches == [[q_new1, q_new2]]
        assert spy.ask_calls == 1  # only the pre-cache ask

    def test_batch_eviction_reforwards_duplicates(self):
        """With a tiny LRU, a duplicate whose first occurrence was evicted
        mid-batch is re-forwarded, exactly like the sequential loop."""
        target = parse_query("∃x1")
        spy = _BatchSpy(QueryOracle(target))
        cached = CachingOracle(spy, maxsize=1)
        q1, q2 = Question.of(1, [1]), Question.of(1, [0])

        responses = cached.ask_many([q1, q2, q1])

        assert responses == [True, False, True]
        assert cached.stats.misses == 3  # q1, q2 (evicts q1), q1 again
        assert cached.stats.hits == 0
        assert cached.stats.evictions == 2
        assert spy.batches == [[q1, q2, q1]]

    def test_batch_matches_fresh_sequential_run_state(self):
        """Final cache contents, order and stats equal a sequential run."""
        target = parse_query("∀x1→x2 ∃x3")
        rng = random.Random(5)
        questions = [
            Question.of(3, [rng.randrange(8) for _ in range(rng.randint(1, 3))])
            for _ in range(40)
        ]
        questions = [rng.choice(questions) for _ in range(120)]
        sequential = CachingOracle(QueryOracle(target), maxsize=8)
        batched = CachingOracle(QueryOracle(target), maxsize=8)
        expected = [sequential.ask(q) for q in questions]
        assert batched.ask_many(questions) == expected
        assert batched.stats.hits == sequential.stats.hits
        assert batched.stats.misses == sequential.stats.misses
        assert batched.stats.evictions == sequential.stats.evictions
        assert batched._cache == sequential._cache
        assert list(batched._cache) == list(sequential._cache)  # LRU order

    def test_empty_batch_is_free(self):
        cached = CachingOracle(QueryOracle(parse_query("∃x1")))
        assert cached.ask_many([]) == []
        assert cached.stats.questions == 0


class TestCountingOracleBatching:
    def test_round_stats_separate_batched_from_sequential(self):
        oracle = CountingOracle(QueryOracle(parse_query("∃x1x2")))
        q = Question.from_strings("11")
        oracle.ask(q)
        oracle.ask_many([q, q, q])
        assert oracle.questions_asked == 4
        assert oracle.stats.rounds == 2
        assert oracle.stats.batched_questions == 3
        assert oracle.stats.largest_batch == 3
        assert oracle.stats.mean_batch == pytest.approx(2.0)


class TestQueryOracleBatching:
    def test_ask_many_dedups_but_answers_pointwise(self):
        target = parse_query("∀x1→x2")
        oracle = QueryOracle(target)
        a = Question.from_strings("11")
        b = Question.from_strings("10")
        assert oracle.ask_many([a, b, a, a, b]) == [
            True,
            False,
            True,
            True,
            False,
        ]

    def test_ask_many_rejects_wrong_width(self):
        oracle = QueryOracle(parse_query("∃x1x2"))
        with pytest.raises(ValueError):
            oracle.ask_many([Question.from_strings("111")])


class TestRecordingOracle:
    def test_transcript_order_and_content(self):
        oracle = RecordingOracle(QueryOracle(parse_query("∃x1")))
        q1, q2 = Question.from_strings("1"), Question.from_strings("0")
        oracle.ask(q1)
        oracle.ask(q2)
        assert [q for q, _ in oracle.transcript] == [q1, q2]
        assert oracle.responses() == [True, False]


class TestNoisyOracle:
    def test_zero_noise_is_faithful(self):
        target = parse_query("∃x1x2")
        noisy = NoisyOracle(QueryOracle(target), 0.0, random.Random(1))
        q = Question.from_strings("11")
        assert noisy.ask(q) == target.evaluate(q)
        assert noisy.first_error() is None

    def test_full_noise_always_flips(self):
        target = parse_query("∃x1x2")
        noisy = NoisyOracle(QueryOracle(target), 1.0, random.Random(1))
        q = Question.from_strings("11")
        assert noisy.ask(q) != target.evaluate(q)
        assert noisy.first_error() == 0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            NoisyOracle(QueryOracle(parse_query("∃x1")), 1.5, random.Random(1))


class TestReplayOracle:
    def test_replays_prefix_then_live(self):
        live = QueryOracle(parse_query("∃x1"))
        replay = ReplayOracle([False, False], live)
        q_yes = Question.from_strings("1")
        assert replay.ask(q_yes) is False
        assert replay.ask(q_yes) is False
        assert replay.ask(q_yes) is True  # live now

    def test_exhausted_without_live_raises(self):
        replay = ReplayOracle([True], live=None, n=1)
        q = Question.from_strings("1")
        assert replay.ask(q)
        with pytest.raises(ExhaustedReplayError):
            replay.ask(q)

    def test_needs_live_or_n(self):
        with pytest.raises(ValueError):
            ReplayOracle([True], live=None)


class TestHumanOracle:
    def test_reads_labels(self):
        answers = iter(["y", "junk", "n"])
        printed: list[str] = []
        oracle = HumanOracle(
            2, input_fn=lambda _: next(answers), output_fn=printed.append
        )
        assert oracle.ask(Question.from_strings("11")) is True
        assert oracle.ask(Question.from_strings("10")) is False
        assert oracle.asked == 2
        assert any("membership question" in line for line in printed)


class TestAdversary:
    def test_majority_answers_keep_candidates(self):
        candidates = [
            uni_alias_query(3, alias)
            for alias in ([], [0, 1], [0, 2], [1, 2], [0, 1, 2])
        ]
        adv = CandidateEliminationAdversary(candidates)
        # the {1^n, pattern} question eliminates at most one candidate
        q = Question.from_strings("111", "011")
        adv.ask(q)
        assert adv.remaining >= len(candidates) - 1

    def test_answers_consistent_with_some_candidate(self):
        candidates = [parse_query("∃x1", n=2), parse_query("∃x2", n=2)]
        adv = CandidateEliminationAdversary(candidates)
        response = adv.ask(Question.from_strings("10"))
        assert any(
            c.evaluate(Question.from_strings("10")) == response
            for c in adv.candidates
        )

    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            CandidateEliminationAdversary([])

    def test_requires_common_n(self):
        with pytest.raises(ValueError):
            CandidateEliminationAdversary(
                [parse_query("∃x1"), parse_query("∃x1x2")]
            )

    def test_max_elimination_theorem21_family(self):
        """Every question over all n=2 objects eliminates at most one
        Uni∧Alias candidate — the counting core of Theorem 2.1."""
        from itertools import chain, combinations

        n = 2
        candidates = [
            uni_alias_query(n, list(alias))
            for alias in chain.from_iterable(
                combinations(range(n), r) for r in range(n + 1)
            )
        ]
        universe = list(range(1 << n))
        questions = []
        for bits in range(1, 1 << len(universe)):
            tuples = [t for i, t in enumerate(universe) if bits & (1 << i)]
            questions.append(Question.of(n, tuples))
        assert max_elimination(candidates, questions) <= 1


class _ChunkSpy:
    """Records the size of every ``ask_many`` batch it receives."""

    def __init__(self, target):
        self.inner = QueryOracle(target)
        self.n = self.inner.n
        self.batch_sizes: list[int] = []

    def ask(self, question):
        return self.inner.ask(question)

    def ask_many(self, questions):
        self.batch_sizes.append(len(questions))
        return self.inner.ask_many(questions)


class _AskOnlySpy:
    """An ask-only oracle (no ``ask_many``) counting its calls."""

    def __init__(self, target):
        self._inner = QueryOracle(target)
        self.n = self._inner.n
        self.calls = 0

    def ask(self, question):
        self.calls += 1
        return self._inner.ask(question)


class TestAskAllChunking:
    def _questions(self, count, n=3, seed=9):
        rng = random.Random(seed)
        return [
            Question.of(
                n, [rng.randrange(1 << n) for _ in range(rng.randint(1, 3))]
            )
            for _ in range(count)
        ]

    def test_large_batches_split_into_bounded_chunks(self):
        from repro.oracle import ask_all

        target = parse_query("∃x1x2", n=3)
        spy = _ChunkSpy(target)
        questions = self._questions(25)
        answers = ask_all(spy, questions, chunk_size=10)
        assert answers == QueryOracle(target).ask_many(questions)
        assert spy.batch_sizes == [10, 10, 5]

    def test_chunked_equals_unchunked(self):
        from repro.oracle import ask_all

        target = parse_query("∀x1 ∃x2x3")
        questions = self._questions(41)
        reference = ask_all(_ChunkSpy(target), questions, chunk_size=None)
        for size in (1, 7, 41, 1000):
            assert ask_all(_ChunkSpy(target), questions, chunk_size=size) == (
                reference
            )

    def test_default_chunk_bounds_single_call(self):
        from repro.oracle import ASK_ALL_CHUNK_SIZE, ask_all

        target = parse_query("∃x1", n=2)
        spy = _ChunkSpy(target)
        count = ASK_ALL_CHUNK_SIZE + 17
        questions = [Question.of(2, [3])] * count
        assert ask_all(spy, questions) == [True] * count
        assert spy.batch_sizes == [ASK_ALL_CHUNK_SIZE, 17]

    def test_ask_only_oracle_streams_without_materializing(self):
        from repro.oracle import ask_all

        target = parse_query("∃x1x2", n=3)
        spy = _AskOnlySpy(target)
        questions = self._questions(12)
        answers = ask_all(spy, iter(questions), chunk_size=4)
        assert answers == QueryOracle(target).ask_many(questions)
        assert spy.calls == 12

    def test_rejects_nonpositive_chunk(self):
        from repro.oracle import ask_all

        with pytest.raises(ValueError):
            ask_all(_ChunkSpy(parse_query("∃x1")), [], chunk_size=0)

    def test_empty_batch(self):
        from repro.oracle import ask_all

        spy = _ChunkSpy(parse_query("∃x1"))
        assert ask_all(spy, []) == []
        assert spy.batch_sizes == []

    def test_chunks_count_as_rounds(self):
        """A > chunk-size batch is genuinely several transport calls, and
        the round statistics say so."""
        from repro.oracle import ask_all

        oracle = CountingOracle(QueryOracle(parse_query("∃x1", n=2)))
        ask_all(oracle, [Question.of(2, [3])] * 10, chunk_size=4)
        assert oracle.stats.rounds == 3
        assert oracle.questions_asked == 10


class TestSqlQueryOracle:
    def _pairs(self, count=300, seed=77):
        from repro.oracle import SqlQueryOracle

        rng = random.Random(seed)
        for _ in range(count):
            n = rng.randint(1, 5)
            yield rng, n

    def test_agrees_with_query_oracle(self):
        from repro.oracle import SqlQueryOracle

        rng = random.Random(41)
        for _ in range(60):
            n = rng.randint(1, 5)
            target = random_qhorn1(n, rng)
            questions = [
                Question.of(
                    n,
                    [rng.randrange(1 << n) for _ in range(rng.randint(0, 4))],
                )
                for _ in range(25)
            ]
            with SqlQueryOracle(target) as sql_oracle:
                assert sql_oracle.ask_many(questions) == QueryOracle(
                    target
                ).ask_many(questions), target.shorthand()

    def test_single_ask_and_duplicates(self):
        from repro.oracle import SqlQueryOracle

        target = parse_query("∀x1 ∃x2x3")
        with SqlQueryOracle(target) as oracle:
            q_yes = Question.from_strings("111")
            q_no = Question.from_strings("011")
            assert oracle.ask(q_yes) is True
            assert oracle.ask(q_no) is False
            assert oracle.ask_many([q_yes, q_no, q_yes, q_yes]) == [
                True,
                False,
                True,
                True,
            ]

    def test_rejects_wrong_width(self):
        from repro.oracle import SqlQueryOracle

        with SqlQueryOracle(parse_query("∃x1x2")) as oracle:
            with pytest.raises(ValueError):
                oracle.ask(Question.from_strings("111"))

    def test_satisfies_protocol_and_drives_learning(self):
        from repro.learning import RolePreservingLearner
        from repro.oracle import SqlQueryOracle

        target = parse_query("∀x1→x2 ∃x3")
        with SqlQueryOracle(target) as oracle:
            assert isinstance(oracle, MembershipOracle)
            result = RolePreservingLearner(CountingOracle(oracle)).learn()
        from repro.core.normalize import canonicalize

        assert canonicalize(result.query) == canonicalize(target)

    def test_empty_question_and_empty_batch(self):
        from repro.oracle import SqlQueryOracle

        relaxed = parse_query("∀x1", n=2, require_guarantees=False)
        with SqlQueryOracle(relaxed) as oracle:
            assert oracle.ask_many([]) == []
            empty = Question.of(2, [])
            assert oracle.ask(empty) is QueryOracle(relaxed).ask(empty)


class TestSqlQueryOraclePooled:
    def test_pooled_agrees_with_query_oracle(self):
        from repro.oracle import SqlQueryOracle

        rng = random.Random(19)
        target = random_qhorn1(3, rng)
        questions = [
            Question.of(3, [rng.randrange(8) for _ in range(rng.randint(0, 3))])
            for _ in range(40)
        ]
        oracle = SqlQueryOracle.pooled(target, pool_size=2)
        try:
            assert oracle.ask_many(questions) == QueryOracle(target).ask_many(
                questions
            )
            assert oracle.pool.checkouts >= 1
        finally:
            oracle.close()

    def test_pooled_close_closes_owned_pool(self):
        from repro.oracle import SqlQueryOracle

        oracle = SqlQueryOracle.pooled(parse_query("∃x1"))
        pool = oracle.pool
        oracle.close()
        with pytest.raises(RuntimeError):
            pool.acquire()

    def test_pool_conflicts_with_uri(self):
        from repro.data.backends.dbapi import (
            PooledConnectionSource,
            sqlite_connector,
        )
        from repro.oracle import SqlQueryOracle

        pool = PooledConnectionSource(sqlite_connector(":memory:"))
        try:
            with pytest.raises(ValueError, match="pool="):
                SqlQueryOracle(
                    parse_query("∃x1"), uri="file:x?mode=memory", pool=pool
                )
        finally:
            pool.close()

    def test_for_backend_shares_pool_and_coexists(self):
        """The §2j integration: oracle batches and relation evaluation
        share one pool and one database without clobbering each other."""
        from repro.data.backends import DbApiBackend
        from repro.data.chocolate import random_store, storefront_vocabulary
        from repro.oracle import SqlQueryOracle

        store = random_store(25, random.Random(7))
        vocab = storefront_vocabulary()
        target = parse_query("∀x1 ∃x2x3", n=4)
        backend = DbApiBackend(store, vocab, pool_size=2)
        try:
            before = [o.key for o in backend.execute(target)]
            oracle = SqlQueryOracle.for_backend(target, backend)
            assert oracle.pool is backend.pool
            rng = random.Random(3)
            questions = [
                Question.of(4, [rng.randrange(16) for _ in range(2)])
                for _ in range(20)
            ]
            assert oracle.ask_many(questions) == QueryOracle(
                target
            ).ask_many(questions)
            # The oracle's scratch tables are question_-prefixed: the
            # backend's loaded relation still answers identically.
            assert [o.key for o in backend.execute(target)] == before
            oracle.close()  # shared pool stays the backend's to close
            assert [o.key for o in backend.execute(target)] == before
        finally:
            backend.close()

    def test_stale_statement_replays_once_and_counts(self):
        import sqlite3 as _sqlite3

        from repro.oracle import SqlQueryOracle

        oracle = SqlQueryOracle.pooled(parse_query("∃x1x2"))
        try:
            calls = []

            def work(connection):
                calls.append(connection)
                if len(calls) == 1:
                    raise _sqlite3.OperationalError("synthetic stale handle")
                return "answered"

            assert oracle._run(work) == "answered"
            assert len(calls) == 2
            assert calls[1] is not calls[0]
            assert oracle.pool.stale_retries == 1
            # The oracle still answers after the synthetic failure.
            assert oracle.ask(Question.of(2, [3])) is True
        finally:
            oracle.close()
