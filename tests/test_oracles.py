"""Unit tests for membership oracles, wrappers and adversaries."""

from __future__ import annotations

import random

import pytest

from repro.core.generators import uni_alias_query
from repro.core.parser import parse_query
from repro.core.tuples import Question
from repro.oracle import (
    CandidateEliminationAdversary,
    CountingOracle,
    ExhaustedReplayError,
    FunctionOracle,
    HumanOracle,
    MembershipOracle,
    NoisyOracle,
    QueryOracle,
    RecordingOracle,
    ReplayOracle,
    max_elimination,
)


class TestQueryOracle:
    def test_labels_match_target(self):
        oracle = QueryOracle(parse_query("∃x1x2"))
        assert oracle.ask(Question.from_strings("11"))
        assert not oracle.ask(Question.from_strings("10", "01"))

    def test_rejects_wrong_width(self):
        oracle = QueryOracle(parse_query("∃x1x2"))
        with pytest.raises(ValueError):
            oracle.ask(Question.from_strings("111"))

    def test_satisfies_protocol(self):
        assert isinstance(QueryOracle(parse_query("∃x1")), MembershipOracle)


class TestFunctionOracle:
    def test_wraps_callable(self):
        oracle = FunctionOracle(2, lambda q: len(q) > 1)
        assert oracle.ask(Question.from_strings("10", "01"))
        assert not oracle.ask(Question.from_strings("11"))


class TestCountingOracle:
    def test_counts_questions_and_tuples(self):
        oracle = CountingOracle(QueryOracle(parse_query("∃x1x2")))
        oracle.ask(Question.from_strings("11"))
        oracle.ask(Question.from_strings("10", "01"))
        assert oracle.questions_asked == 2
        assert oracle.stats.tuples == 3
        assert oracle.stats.max_tuples == 2
        assert oracle.stats.answers == 1
        assert oracle.stats.non_answers == 1
        assert oracle.stats.mean_tuples == pytest.approx(1.5)
        assert oracle.stats.tuples_histogram == {1: 1, 2: 1}

    def test_reset(self):
        oracle = CountingOracle(QueryOracle(parse_query("∃x1")))
        oracle.ask(Question.from_strings("1"))
        oracle.reset()
        assert oracle.questions_asked == 0

    def test_empty_stats_mean(self):
        oracle = CountingOracle(QueryOracle(parse_query("∃x1")))
        assert oracle.stats.mean_tuples == 0.0


class TestRecordingOracle:
    def test_transcript_order_and_content(self):
        oracle = RecordingOracle(QueryOracle(parse_query("∃x1")))
        q1, q2 = Question.from_strings("1"), Question.from_strings("0")
        oracle.ask(q1)
        oracle.ask(q2)
        assert [q for q, _ in oracle.transcript] == [q1, q2]
        assert oracle.responses() == [True, False]


class TestNoisyOracle:
    def test_zero_noise_is_faithful(self):
        target = parse_query("∃x1x2")
        noisy = NoisyOracle(QueryOracle(target), 0.0, random.Random(1))
        q = Question.from_strings("11")
        assert noisy.ask(q) == target.evaluate(q)
        assert noisy.first_error() is None

    def test_full_noise_always_flips(self):
        target = parse_query("∃x1x2")
        noisy = NoisyOracle(QueryOracle(target), 1.0, random.Random(1))
        q = Question.from_strings("11")
        assert noisy.ask(q) != target.evaluate(q)
        assert noisy.first_error() == 0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            NoisyOracle(QueryOracle(parse_query("∃x1")), 1.5, random.Random(1))


class TestReplayOracle:
    def test_replays_prefix_then_live(self):
        live = QueryOracle(parse_query("∃x1"))
        replay = ReplayOracle([False, False], live)
        q_yes = Question.from_strings("1")
        assert replay.ask(q_yes) is False
        assert replay.ask(q_yes) is False
        assert replay.ask(q_yes) is True  # live now

    def test_exhausted_without_live_raises(self):
        replay = ReplayOracle([True], live=None, n=1)
        q = Question.from_strings("1")
        assert replay.ask(q)
        with pytest.raises(ExhaustedReplayError):
            replay.ask(q)

    def test_needs_live_or_n(self):
        with pytest.raises(ValueError):
            ReplayOracle([True], live=None)


class TestHumanOracle:
    def test_reads_labels(self):
        answers = iter(["y", "junk", "n"])
        printed: list[str] = []
        oracle = HumanOracle(
            2, input_fn=lambda _: next(answers), output_fn=printed.append
        )
        assert oracle.ask(Question.from_strings("11")) is True
        assert oracle.ask(Question.from_strings("10")) is False
        assert oracle.asked == 2
        assert any("membership question" in line for line in printed)


class TestAdversary:
    def test_majority_answers_keep_candidates(self):
        candidates = [
            uni_alias_query(3, alias)
            for alias in ([], [0, 1], [0, 2], [1, 2], [0, 1, 2])
        ]
        adv = CandidateEliminationAdversary(candidates)
        # the {1^n, pattern} question eliminates at most one candidate
        q = Question.from_strings("111", "011")
        adv.ask(q)
        assert adv.remaining >= len(candidates) - 1

    def test_answers_consistent_with_some_candidate(self):
        candidates = [parse_query("∃x1", n=2), parse_query("∃x2", n=2)]
        adv = CandidateEliminationAdversary(candidates)
        response = adv.ask(Question.from_strings("10"))
        assert any(
            c.evaluate(Question.from_strings("10")) == response
            for c in adv.candidates
        )

    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            CandidateEliminationAdversary([])

    def test_requires_common_n(self):
        with pytest.raises(ValueError):
            CandidateEliminationAdversary(
                [parse_query("∃x1"), parse_query("∃x1x2")]
            )

    def test_max_elimination_theorem21_family(self):
        """Every question over all n=2 objects eliminates at most one
        Uni∧Alias candidate — the counting core of Theorem 2.1."""
        from itertools import chain, combinations

        n = 2
        candidates = [
            uni_alias_query(n, list(alias))
            for alias in chain.from_iterable(
                combinations(range(n), r) for r in range(n + 1)
            )
        ]
        universe = list(range(1 << n))
        questions = []
        for bits in range(1, 1 << len(universe)):
            tuples = [t for i, t in enumerate(universe) if bits & (1 << i)]
            questions.append(Question.of(n, tuples))
        assert max_elimination(candidates, questions) <= 1
