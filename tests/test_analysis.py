"""Tests for the analysis utilities: fitting, information bounds, tables."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    MODELS,
    bell_number,
    best_model,
    empirical_exponent,
    existential_bound_bits,
    existential_bound_closed_form,
    fit_model,
    hamming,
    profile_distance,
    qhorn1_lower_bound_bits,
    qhorn1_upper_bound_bits,
    render_kv,
    render_table,
    revision_distance,
    unrestricted_query_bits,
)
from repro.core.parser import parse_query


class TestFitting:
    def test_fit_recovers_linear(self):
        ns = [4, 8, 16, 32, 64]
        ys = [3 * n + 7 for n in ns]
        fit = fit_model(ns, ys, "n")
        assert fit.a == pytest.approx(3.0)
        assert fit.b == pytest.approx(7.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_fit_recovers_nlogn(self):
        ns = [4, 8, 16, 32, 64, 128]
        ys = [2.5 * n * math.log2(n) + 1 for n in ns]
        fit = fit_model(ns, ys, "n log n")
        assert fit.a == pytest.approx(2.5, rel=1e-6)
        assert fit.r_squared > 0.9999

    def test_best_model_prefers_truth(self):
        ns = [4, 8, 16, 32, 64, 128]
        nlogn = [n * math.log2(n) for n in ns]
        assert best_model(ns, nlogn).model == "n log n"
        quad = [n * n for n in ns]
        assert best_model(ns, quad).model == "n^2"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            fit_model([1, 2], [1, 2], "n!")

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_model([1], [1], "n")

    def test_empirical_exponent(self):
        ns = [4, 8, 16, 32, 64]
        assert empirical_exponent(ns, [n**2 for n in ns]) == pytest.approx(2.0)
        assert empirical_exponent(ns, [n for n in ns]) == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_model([2, 4, 8], [4, 8, 16], "n")
        assert fit.predict(16) == pytest.approx(32.0)
        assert "R²" in fit.describe()

    def test_model_catalogue(self):
        assert {"n", "n log n", "n^2", "2^n"} <= set(MODELS)


class TestInformationBounds:
    def test_bell_numbers(self):
        # OEIS A000110
        assert [bell_number(i) for i in range(8)] == [
            1, 1, 2, 5, 15, 52, 203, 877,
        ]

    def test_bell_rejects_negative(self):
        with pytest.raises(ValueError):
            bell_number(-1)

    def test_qhorn1_bounds_sandwich(self):
        """2.1.3: lg B_n <= lg |qhorn-1| <= 2n + lg B_n, both Θ(n lg n)."""
        for n in (4, 8, 16, 32):
            lo = qhorn1_lower_bound_bits(n)
            hi = qhorn1_upper_bound_bits(n)
            assert lo < hi
            # both are Θ(n lg n): ratio to n lg n stays bounded
            ratio = lo / (n * math.log2(n))
            assert 0.2 < ratio < 2.0

    def test_unrestricted_is_doubly_exponential(self):
        assert unrestricted_query_bits(3) == 8
        assert unrestricted_query_bits(10) == 1024

    def test_existential_bound_exact_vs_closed_form(self):
        """Thm 3.9: lg C(C(n,n/2), k) >= nk/2 - k lg k."""
        for n, k in [(8, 2), (10, 4), (12, 6)]:
            exact = existential_bound_bits(n, k)
            relaxed = existential_bound_closed_form(n, k)
            assert exact >= relaxed

    def test_existential_bound_edge_cases(self):
        assert existential_bound_closed_form(10, 0) == 0.0
        with pytest.raises(ValueError):
            existential_bound_bits(4, 100)


class TestRevisionDistance:
    def test_zero_iff_equivalent(self):
        a = parse_query("∀x1→x3 ∀x1x2→x3 ∃x1")
        b = parse_query("∀x1→x3 ∃x1x2x3")
        assert revision_distance(a, b) == 0

    def test_symmetric(self):
        a = parse_query("∀x1x2→x3 ∃x4", n=4)
        b = parse_query("∀x1→x3 ∃x4", n=4)
        assert revision_distance(a, b) == revision_distance(b, a) > 0

    def test_small_edit_small_distance(self):
        a = parse_query("∃x1x2x3", n=3)
        b = parse_query("∃x1x2", n=3)
        assert revision_distance(a, b) == 1

    def test_mismatched_n_rejected(self):
        with pytest.raises(ValueError):
            revision_distance(parse_query("∃x1"), parse_query("∃x1", n=2))

    def test_hamming(self):
        assert hamming(0b1010, 0b0110) == 2
        assert hamming(5, 5) == 0

    def test_profile_distance_padding(self):
        assert profile_distance(frozenset({0b11}), frozenset(), 4) == 4
        assert profile_distance(frozenset(), frozenset(), 4) == 0


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(
            ["n", "questions"], [[8, 41], [128, 1000]], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("n")
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_render_table_floats(self):
        text = render_table(["v"], [[3.14159]])
        assert "3.142" in text

    def test_render_kv(self):
        text = render_kv([("alpha", 1), ("beta", 2.5)], title="stats")
        assert "alpha" in text and "2.500" in text
