"""Tests for query verbalization and the experiment runner."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_sweep
from repro.core.expressions import ExistentialConjunction, UniversalHorn
from repro.core.parser import parse_query
from repro.core.query import QhornQuery
from repro.interactive.verbalize import verbalize, verbalize_expression

NAMES = ["dark", "sugar-free", "nutty", "filled"]


class TestVerbalizeExpression:
    def test_bodyless_universal(self):
        u = UniversalHorn(head=0)
        assert (
            verbalize_expression(u, NAMES, noun="chocolate")
            == "every chocolate is dark"
        )

    def test_universal_with_body(self):
        u = UniversalHorn(head=2, body=frozenset({0, 1}))
        text = verbalize_expression(u, NAMES, noun="chocolate")
        assert text == (
            "every chocolate that is dark and sugar-free is also nutty"
        )

    def test_conjunction(self):
        e = ExistentialConjunction({1, 2, 3})
        text = verbalize_expression(e, NAMES)
        assert text == "at least one tuple is sugar-free, nutty and filled"

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            verbalize_expression("∃x1", NAMES)


class TestVerbalizeQuery:
    def test_intro_query(self):
        q = parse_query("∀x1 ∃x1x2x3", n=4)
        text = verbalize(q, NAMES, noun="chocolate", group_noun="box")
        assert text.startswith("a box where ")
        assert "every chocolate is dark" in text
        assert "at least one chocolate is dark, sugar-free and nutty" in text

    def test_default_names(self):
        q = parse_query("∃x1x2")
        assert "p1 and p2" in verbalize(q)

    def test_empty_query(self):
        q = QhornQuery(n=2)
        assert verbalize(q, group_noun="box") == "any box at all"

    def test_wrong_name_count_rejected(self):
        with pytest.raises(ValueError):
            verbalize(parse_query("∃x1x2"), names=["only-one"])


class TestRunSweep:
    def test_deterministic_cells(self):
        a = run_sweep("s", [1, 2], lambda p, rng: p * rng.random(), seeds=5)
        b = run_sweep("s", [1, 2], lambda p, rng: p * rng.random(), seeds=5)
        assert a.means() == b.means()

    def test_aggregates(self):
        result = run_sweep(
            "constant", [3], lambda p, rng: float(p), seeds=4
        )
        (m,) = result.measurements
        assert m.mean == m.minimum == m.maximum == 3.0
        assert m.stdev == 0.0
        assert m.samples == 4

    def test_table_renders(self):
        result = run_sweep(
            "demo", [1, 2, 4], lambda p, rng: p * 10.0, seeds=2,
            parameter_name="n",
        )
        text = result.table()
        assert text.splitlines()[0] == "demo"
        assert "n" in text

    def test_single_seed_no_stdev_crash(self):
        result = run_sweep("one", [1], lambda p, rng: 5.0, seeds=1)
        assert result.measurements[0].stdev == 0.0

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            run_sweep("bad", [1], lambda p, rng: 0.0, seeds=0)

    def test_learning_sweep_integration(self):
        """The runner drives a real learning sweep end to end."""
        from repro.core.generators import random_qhorn1
        from repro.learning import Qhorn1Learner
        from repro.oracle import CountingOracle, QueryOracle

        def questions(n, rng):
            target = random_qhorn1(n, rng)
            oracle = CountingOracle(QueryOracle(target))
            Qhorn1Learner(oracle).learn()
            return oracle.questions_asked

        result = run_sweep(
            "qhorn-1 questions", [4, 8, 16], questions, seeds=3,
            parameter_name="n",
        )
        assert result.means()[0] < result.means()[-1]


class TestRunSweepCacheDir:
    """The opt-in PersistentCachingOracle threading (ROADMAP item)."""

    @staticmethod
    def _measure(forwarded):
        from repro.core.query import QhornQuery
        from repro.core.tuples import Question
        from repro.oracle import CountingOracle, QueryOracle

        target = QhornQuery.build(
            4, universals=[((0,), 1)], existentials=[(2, 3)]
        )

        def measure(p, rng, cache):
            inner = CountingOracle(QueryOracle(target))
            oracle = cache(inner)
            questions = [
                Question.of(4, [rng.randrange(16) for _ in range(2)])
                for _ in range(p * 5)
            ]
            answers = oracle.ask_many(questions)
            forwarded.append(inner.questions_asked)
            return float(sum(answers))

        return measure

    def test_second_sweep_reuses_answers_on_disk(self, tmp_path):
        forwarded: list[int] = []
        measure = self._measure(forwarded)
        first = run_sweep(
            "cache sweep", [2, 4], measure, seeds=3, cache_dir=tmp_path
        )
        cold_questions = sum(forwarded)
        assert cold_questions > 0
        # One store per (parameter, repeat, wrap) cell.
        assert (tmp_path / "cache-sweep-p0-r0-o0.sqlite").exists()
        assert len(list(tmp_path.glob("cache-sweep-*.sqlite"))) == 6

        forwarded.clear()
        second = run_sweep(
            "cache sweep", [2, 4], measure, seeds=3, cache_dir=tmp_path
        )
        # Deterministic sweeps re-ask only cached questions: nothing
        # reaches the inner oracle, and every cell agrees exactly.
        assert sum(forwarded) == 0
        assert second.means() == first.means()

    def test_cached_and_uncached_sweeps_agree(self, tmp_path):
        forwarded: list[int] = []
        measure = self._measure(forwarded)
        cached = run_sweep(
            "agree sweep", [3], measure, seeds=4, cache_dir=tmp_path
        )
        identity_cache = run_sweep(
            "agree sweep",
            [3],
            lambda p, rng: measure(p, rng, lambda oracle: oracle),
            seeds=4,
        )
        assert cached.means() == identity_cache.means()

    def test_without_cache_dir_measure_keeps_two_arguments(self):
        # The classic two-argument signature is untouched (opt-in only).
        result = run_sweep("plain", [1], lambda p, rng: 1.0, seeds=2)
        assert result.means() == [1.0]

    def test_per_cell_target_isolation(self, tmp_path):
        """A different hidden target per cell must never see another
        cell's cached answers (per-cell stores, not one shared file)."""
        from repro.core.generators import random_qhorn1
        from repro.core.tuples import Question
        from repro.oracle import QueryOracle

        def measure(p, rng, cache):
            target = random_qhorn1(4, rng)  # distinct target per cell
            oracle = cache(QueryOracle(target))
            questions = [
                Question.of(4, [rng.randrange(16)]) for _ in range(10)
            ]
            return float(sum(oracle.ask_many(questions)))

        cached = run_sweep(
            "targets", [1], measure, seeds=4, cache_dir=tmp_path
        )
        uncached = run_sweep(
            "targets",
            [1],
            lambda p, rng: measure(p, rng, lambda oracle: oracle),
            seeds=4,
        )
        assert cached.means() == uncached.means()
        # And the cached sweep stays honest on a warm re-run.
        rerun = run_sweep(
            "targets", [1], measure, seeds=4, cache_dir=tmp_path
        )
        assert rerun.means() == uncached.means()
