"""Hypothesis strategies for qhorn queries, questions and lattice tuples."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.core.generators import random_qhorn1, random_role_preserving
from repro.core.query import QhornQuery
from repro.core.tuples import Question


@st.composite
def boolean_tuples(draw, n: int | None = None) -> tuple[int, int]:
    """(n, mask) pairs with n in 1..10."""
    if n is None:
        n = draw(st.integers(min_value=1, max_value=10))
    mask = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    return n, mask


@st.composite
def questions(draw, n: int | None = None) -> Question:
    if n is None:
        n = draw(st.integers(min_value=1, max_value=8))
    size = draw(st.integers(min_value=0, max_value=6))
    tuples = [
        draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        for _ in range(size)
    ]
    return Question.of(n, tuples)


@st.composite
def qhorn1_queries(draw, max_n: int = 12) -> QhornQuery:
    """Random qhorn-1 queries via the seeded generator (uniform seeds)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    use_all = draw(st.booleans())
    return random_qhorn1(n, random.Random(seed), use_all_variables=use_all)


@st.composite
def role_preserving_queries(
    draw, max_n: int = 9, max_theta: int = 3
) -> QhornQuery:
    n = draw(st.integers(min_value=2, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    theta = draw(st.integers(min_value=1, max_value=max_theta))
    return random_role_preserving(n, random.Random(seed), theta=theta)


@st.composite
def tiny_role_preserving_pairs(draw) -> tuple[QhornQuery, QhornQuery]:
    """Pairs over the same small n, for brute-force comparisons."""
    n = draw(st.integers(min_value=2, max_value=3))
    s1 = draw(st.integers(min_value=0, max_value=2**32 - 1))
    s2 = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return (
        random_role_preserving(n, random.Random(s1), theta=2),
        random_role_preserving(n, random.Random(s2), theta=2),
    )
