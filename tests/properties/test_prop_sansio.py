"""Differential properties: sans-io step protocol vs the pull path.

The step-protocol contract (DESIGN.md §2e) demands that driving a learner
through ``start()``/``feed()`` is observationally identical to the
historical pull path for *any* way of answering the rounds:

* ``learn()`` (the pull entry point, now ``drive(self, self.oracle)``)
  and a manual ``LearnerProtocol`` loop answering each round with the
  same oracle stack produce the same learned query, the same transcript
  (questions and responses, positionally), and the same wrapper
  statistics — counting stats, cache residency, seeded noise flips;
* the asyncio driver over :class:`~repro.oracle.aio.AsyncOracle` passes
  the same differential check (chunk-reassembly semantics are shared);
* a session parked with ``snapshot()`` at *any* round and resumed through
  a fresh learner converges to the same pending round and the same final
  query — the transcript really is the session state.

The suite sweeps ≥ 1000 seeded (learner, target, stack) cases across all
six protocol learners, so the agreement count demanded by the acceptance
criteria is explicit, plus hypothesis properties for the snapshot
round-trip.
"""

from __future__ import annotations

import asyncio
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generators import random_qhorn1, random_role_preserving
from repro.core.normalize import canonicalize
from repro.interactive import LearningSession, SessionSnapshot
from repro.learning import (
    ExpressionLearner,
    NaiveQhorn1Learner,
    PacLearner,
    Qhorn1Learner,
    QueryReviser,
    RolePreservingLearner,
    random_object_sampler,
)
from repro.oracle import (
    AsyncOracle,
    CachingOracle,
    CountingExpressionOracle,
    CountingOracle,
    ExpressionOracle,
    NoisyOracle,
    QueryOracle,
    RecordingOracle,
)
from repro.protocol import Finished, LearnerProtocol, Round, answer_round
from repro.protocol.aio import answer_round_async
from repro.verification import Verifier

CASES_TARGET = 1000


# ----------------------------------------------------------------------
# Case construction
# ----------------------------------------------------------------------


def _stack(kind: str, target, seed: int):
    """A freshly constructed, identically seeded oracle stack."""
    base = QueryOracle(target)
    if kind == "plain":
        return CountingOracle(base)
    if kind == "caching":
        return CountingOracle(CachingOracle(base))
    if kind == "noisy":
        return CountingOracle(NoisyOracle(base, 0.15, random.Random(seed)))
    if kind == "recording":
        return RecordingOracle(CachingOracle(base, maxsize=4))
    raise AssertionError(kind)


STACKS = ("plain", "caching", "noisy", "recording")


def _observe(oracle):
    """Everything observable about a stack, for exact comparison."""
    out = {}
    if isinstance(oracle, CountingOracle):
        out["stats"] = dict(vars(oracle.stats))
        inner = oracle.inner
    else:
        out["transcript"] = list(oracle.transcript)
        inner = oracle.inner
    if isinstance(inner, CachingOracle):
        out["cache"] = (dict(vars(inner.stats)), list(inner._cache.items()))
        inner = inner.inner
    if isinstance(inner, NoisyOracle):
        out["noise"] = (list(inner.given), list(inner.truth))
    return out


def _learner_case(kind: str, n: int, rng: random.Random):
    """(factory, target, uses_membership_oracle) for one learner kind."""
    if kind == "qhorn1":
        target = random_qhorn1(n, rng)
        return (lambda o: Qhorn1Learner(o)), target
    if kind == "qhorn1-noshortcut":
        target = random_qhorn1(n, rng)
        return (
            lambda o: Qhorn1Learner(o, use_shared_body_shortcut=False)
        ), target
    if kind == "naive":
        target = random_qhorn1(n, rng)
        return (lambda o: NaiveQhorn1Learner(o)), target
    if kind == "role-preserving":
        target = random_role_preserving(n, rng, theta=2)
        return (lambda o: RolePreservingLearner(o)), target
    if kind == "role-linear":
        target = random_role_preserving(n, rng, theta=2)
        return (lambda o: RolePreservingLearner(o, prune="linear")), target
    if kind == "reviser":
        target = random_role_preserving(n, rng, theta=2)
        given = random_role_preserving(n, random.Random(rng.randrange(2**32)), theta=2)
        return (lambda o: QueryReviser(given, o)), target
    if kind == "verifier":
        target = random_role_preserving(n, rng, theta=2)
        given = random_role_preserving(n, random.Random(rng.randrange(2**32)), theta=2)
        verifier = Verifier(given)
        return (lambda o: _VerifierLearner(verifier, o)), target
    if kind == "pac":
        target = random_role_preserving(max(2, n - 2), rng, theta=1)
        sampler = random_object_sampler(target.n)
        seed = rng.randrange(2**32)
        return (
            lambda o: PacLearner(
                o, [target], sampler, m=12, rng=random.Random(seed)
            )
        ), target
    raise AssertionError(kind)


class _VerifierLearner:
    """Adapts the verifier to the learner driving shape for this suite."""

    def __init__(self, verifier: Verifier, oracle) -> None:
        self.verifier = verifier
        self.oracle = oracle
        self.n = oracle.n

    def steps(self):
        return self.verifier.steps(stop_at_first=False)

    def learn(self):
        return self.verifier.run(self.oracle)


LEARNERS = (
    "qhorn1",
    "qhorn1-noshortcut",
    "naive",
    "role-preserving",
    "role-linear",
    "reviser",
    "verifier",
    "pac",
)


def _result_key(kind: str, result):
    if kind == "verifier":
        return (
            result.verified,
            result.questions_asked,
            [(d.item, d.user_response) for d in result.disagreements],
        )
    if kind == "pac":
        return (result.query, result.samples_used, result.consistent_hypotheses)
    return getattr(result, "query", result)


def _drive_manual(factory, oracle):
    """Drive steps() by hand through LearnerProtocol + answer_round."""
    learner = factory(oracle)
    protocol = LearnerProtocol(learner.steps())
    event = protocol.start()
    rounds = []
    while isinstance(event, Round):
        rounds.append(event)
        event = protocol.feed(answer_round(oracle, event))
    return event.result, rounds


# ----------------------------------------------------------------------
# The ≥1000-case seeded sweep
# ----------------------------------------------------------------------


def _outcome(kind, run):
    """Normalize a drive to a comparable outcome: a result key, or the
    failure a noise-corrupted dialogue provoked (the pull path raises the
    same way, and so must every driver)."""
    try:
        return ("ok", _result_key(kind, run()))
    except (ValueError, RuntimeError) as error:
        return ("error", type(error).__name__, str(error))


def test_seeded_sweep_sync_async_manual_equivalence():
    """≥1000 cases: pull path == manual protocol == asyncio driver,
    down to wrapper statistics, cache residency, noise draws — and
    identical failures when noise drives a learner off the rails."""
    cases = 0
    loop = asyncio.new_event_loop()
    try:
        seed = 0
        while cases < CASES_TARGET:
            for learner_kind in LEARNERS:
                for stack_kind in STACKS:
                    seed += 1
                    rng = random.Random(seed * 7919)
                    n = rng.randrange(2, 6)
                    factory, target = _learner_case(learner_kind, n, rng)

                    o_pull = _stack(stack_kind, target, seed)
                    key = _outcome(
                        learner_kind, lambda: factory(o_pull).learn()
                    )

                    o_manual = _stack(stack_kind, target, seed)
                    key_manual = _outcome(
                        learner_kind,
                        lambda: _drive_manual(factory, o_manual)[0],
                    )

                    o_async = _stack(stack_kind, target, seed)
                    key_async = _outcome(
                        learner_kind,
                        lambda: loop.run_until_complete(
                            _drive_async(factory, o_async)
                        ),
                    )

                    assert key_manual == key
                    assert key_async == key
                    obs = _observe(o_pull)
                    assert _observe(o_manual) == obs
                    assert _observe(o_async) == obs
                    cases += 1
    finally:
        loop.close()
    assert cases >= CASES_TARGET


async def _drive_async(factory, oracle):
    from repro.protocol import LearnerProtocol

    learner = factory(oracle)
    protocol = LearnerProtocol(learner.steps())
    event = protocol.start()
    wrapped = AsyncOracle(oracle)
    while isinstance(event, Round):
        event = protocol.feed(await answer_round_async(wrapped, event))
    return event.result


def test_seeded_sweep_expression_learner():
    """The expression learner speaks ExpressionQuestion rounds through the
    same protocol; pull, manual and async paths agree with the counting
    wrapper's tally."""
    loop = asyncio.new_event_loop()
    try:
        for seed in range(120):
            rng = random.Random(seed * 104729)
            target = random_role_preserving(rng.randrange(2, 6), rng, theta=2)

            o_pull = CountingExpressionOracle(ExpressionOracle(target))
            r_pull = ExpressionLearner(o_pull).learn()

            o_manual = CountingExpressionOracle(ExpressionOracle(target))
            r_manual, rounds = _drive_manual(
                lambda o: ExpressionLearner(o), o_manual
            )

            o_async = CountingExpressionOracle(ExpressionOracle(target))
            r_async = loop.run_until_complete(
                _drive_async_expression(o_async)
            )

            assert r_manual.query == r_pull.query
            assert r_async.query == r_pull.query
            assert r_manual.questions_asked == r_pull.questions_asked
            assert o_manual.questions_asked == o_pull.questions_asked
            assert o_async.questions_asked == o_pull.questions_asked
            assert len(rounds) == r_pull.questions_asked  # one bit per round
            assert canonicalize(r_pull.query) == canonicalize(target)
    finally:
        loop.close()


async def _drive_async_expression(oracle):
    learner = ExpressionLearner(oracle)
    protocol = LearnerProtocol(learner.steps())
    event = protocol.start()
    while isinstance(event, Round):
        event = protocol.feed(await answer_round_async(oracle, event))
    return event.result


# ----------------------------------------------------------------------
# Snapshot / resume round-trips
# ----------------------------------------------------------------------


def _run_with_park(factory, target, n, park_at: int):
    """Drive a session, parking+resuming at round ``park_at`` (0 = never)."""
    oracle = QueryOracle(target)
    session = LearningSession(factory, n=n)
    event = session.step()
    rounds = 0
    while isinstance(event, Round):
        rounds += 1
        if rounds == park_at:
            snapshot = SessionSnapshot.from_dict(session.snapshot().to_dict())
            session = LearningSession(factory, n=n)
            resumed = session.resume(snapshot)
            assert isinstance(resumed, Round)
            assert list(resumed.questions) == snapshot.pending
            event = resumed
        event = session.feed(answer_round(oracle, event))
    return session.result, rounds


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    learner_kind=st.sampled_from(
        ["qhorn1", "naive", "role-preserving", "reviser"]
    ),
    park_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_snapshot_resume_mid_session(seed, learner_kind, park_fraction):
    """Parking at any round and resuming through the serialized snapshot
    reaches the same final query and transcript as the uninterrupted run."""
    rng = random.Random(seed)
    n = rng.randrange(2, 6)
    factory, target = _learner_case(learner_kind, n, rng)

    uninterrupted, total_rounds = _run_with_park(factory, target, n, park_at=0)
    park_at = max(1, round(park_fraction * total_rounds))
    parked, _ = _run_with_park(factory, target, n, park_at=park_at)

    assert parked.query == uninterrupted.query
    assert parked.transcript.responses() == uninterrupted.transcript.responses()
    assert [e.question for e in parked.transcript] == [
        e.question for e in uninterrupted.transcript
    ]


def test_snapshot_resume_after_finish():
    """A finished session's snapshot replays to Finished with the same query."""
    target = random_qhorn1(4, random.Random(11))
    oracle = QueryOracle(target)
    session = LearningSession(lambda o: Qhorn1Learner(o), n=4)
    event = session.step()
    while isinstance(event, Round):
        event = session.feed(answer_round(oracle, event))
    snapshot = session.snapshot()
    assert snapshot.pending is None

    fresh = LearningSession(lambda o: Qhorn1Learner(o), n=4)
    resumed = fresh.resume(snapshot)
    assert isinstance(resumed, Finished)
    assert fresh.result.query == session.result.query
