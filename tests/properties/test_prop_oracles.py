"""Differential properties: batched ``ask_many`` vs sequential ``ask``.

The batched-oracle contract (DESIGN.md §2b) demands strict sequential
equivalence for every oracle and wrapper: on identical starting state,
``ask_many(qs)`` returns exactly ``[ask(q) for q in qs]`` — pointwise,
for shuffled and duplicated question lists, with identical side effects
(cache stats and residency, counting stats, transcripts, seeded noise
flips, replay positions).  This suite checks the contract two ways:

* hypothesis properties over random question lists and wrapper stacks;
* a seeded exhaustive sweep of ≥ 1000 (oracle stack, question list)
  cases, so the agreement count demanded by the acceptance criteria is
  explicit.

Each case builds two *independent* copies of the same oracle stack from
the same seeds, drives one sequentially and one in batches, and compares
responses plus all observable state.
"""

from __future__ import annotations

import random
from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.core import tuples as bt
from repro.core.generators import random_qhorn1, random_role_preserving
from repro.core.normalize import canonicalize
from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.oracle import (
    CachingOracle,
    CandidateEliminationAdversary,
    CountingOracle,
    FunctionOracle,
    NoisyOracle,
    QueryOracle,
    RecordingOracle,
    ReplayOracle,
    ask_all,
)

MAX_N = 6


def random_query(rng: random.Random, n: int) -> QhornQuery:
    """A general qhorn query (same shape space as the engine suite)."""
    universals = []
    for _ in range(rng.randrange(0, 4)):
        head = rng.randrange(n)
        others = [v for v in range(n) if v != head]
        body = rng.sample(others, rng.randrange(0, min(3, len(others)) + 1))
        universals.append((body, head))
    existentials = [
        rng.sample(range(n), rng.randrange(1, min(3, n) + 1))
        for _ in range(rng.randrange(0, 3))
    ]
    return QhornQuery.build(
        n,
        universals=universals,
        existentials=existentials,
        require_guarantees=rng.random() < 0.5,
    )


def random_questions(rng: random.Random, n: int, count: int) -> list[Question]:
    """A question list with deliberate duplication and shuffling."""
    distinct = max(1, count // 2)
    pool = [
        Question.of(
            n, [rng.randrange(1 << n) for _ in range(rng.randrange(1, 5))]
        )
        for _ in range(distinct)
    ]
    questions = [rng.choice(pool) for _ in range(count)]
    rng.shuffle(questions)
    return questions


# ----------------------------------------------------------------------
# Stack builders: each returns a fresh, identically seeded oracle
# ----------------------------------------------------------------------


def _build_stack(kind: str, rng_seed: int, n: int, target: QhornQuery):
    """One of the wrapper configurations under test, freshly constructed."""
    base = QueryOracle(target)
    if kind == "query":
        return base
    if kind == "function":
        return FunctionOracle(n, target.evaluate)
    if kind == "counting":
        return CountingOracle(base)
    if kind == "recording":
        return RecordingOracle(base)
    if kind == "caching":
        return CachingOracle(base)
    if kind == "caching-tiny":
        # A tiny LRU forces evictions *inside* a batch, covering the
        # re-forwarded-duplicate path.
        return CachingOracle(base, maxsize=2)
    if kind == "noisy":
        return NoisyOracle(base, 0.3, random.Random(rng_seed))
    if kind == "replay":
        prefix_rng = random.Random(rng_seed)
        prefix = [prefix_rng.random() < 0.5 for _ in range(5)]
        return ReplayOracle(prefix, base)
    if kind == "stacked":
        return CountingOracle(
            CachingOracle(
                NoisyOracle(base, 0.2, random.Random(rng_seed)), maxsize=3
            )
        )
    if kind == "adversary":
        gen = random.Random(rng_seed)
        return CandidateEliminationAdversary(
            [random_query(gen, n) for _ in range(4)]
        )
    raise AssertionError(kind)


KINDS = (
    "query",
    "function",
    "counting",
    "recording",
    "caching",
    "caching-tiny",
    "noisy",
    "replay",
    "stacked",
    "adversary",
)


def _observable_state(kind: str, oracle) -> tuple:
    """Everything the contract says must match a sequential run."""
    if kind == "counting":
        s = oracle.stats
        return (s.questions, s.tuples, s.answers, s.tuples_histogram)
    if kind == "recording":
        return tuple(oracle.transcript)
    if kind in ("caching", "caching-tiny"):
        s = oracle.stats
        return (
            s.hits,
            s.misses,
            s.evictions,
            dict(s.resident_histogram),
            list(oracle._cache.items()),
        )
    if kind == "noisy":
        return (tuple(oracle.given), tuple(oracle.truth))
    if kind == "replay":
        return (oracle.position,)
    if kind == "stacked":
        inner = oracle.inner
        return (
            oracle.stats.questions,
            inner.stats.hits,
            inner.stats.misses,
            inner.stats.evictions,
            tuple(inner.inner.given),
        )
    if kind == "adversary":
        return (oracle.questions_asked, tuple(oracle.candidates))
    return ()


def assert_batch_equals_sequential(
    kind: str, seed: int, n: int, questions: list[Question]
) -> None:
    rng = random.Random(seed)
    target = random_query(rng, n)
    sequential = _build_stack(kind, seed, n, target)
    batched = _build_stack(kind, seed, n, target)

    expected = [sequential.ask(q) for q in questions]
    got = batched.ask_many(questions)

    assert got == expected
    assert _observable_state(kind, batched) == _observable_state(
        kind, sequential
    )


# ----------------------------------------------------------------------
# Hypothesis properties
# ----------------------------------------------------------------------


@st.composite
def oracle_cases(draw):
    kind = draw(st.sampled_from(KINDS))
    n = draw(st.integers(min_value=1, max_value=MAX_N))
    count = draw(st.integers(min_value=0, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return kind, n, count, seed


@given(oracle_cases())
def test_ask_many_agrees_with_sequential_ask(case):
    kind, n, count, seed = case
    questions = random_questions(random.Random(seed ^ 0xA5A5), n, count)
    assert_batch_equals_sequential(kind, seed, n, questions)


@given(oracle_cases())
def test_chunked_batches_agree_with_one_batch(case):
    """Splitting a question list into arbitrary consecutive chunks and
    asking each chunk through ``ask_many`` equals one big batch (and hence
    the sequential loop) — batching boundaries are unobservable."""
    kind, n, count, seed = case
    rng = random.Random(seed ^ 0x5A5A)
    questions = random_questions(rng, n, count)
    target = random_query(random.Random(seed), n)
    whole = _build_stack(kind, seed, n, target)
    chunked = _build_stack(kind, seed, n, target)

    expected = whole.ask_many(questions)
    got: list[bool] = []
    i = 0
    while i < len(questions):
        step = rng.randint(1, 5)
        got.extend(chunked.ask_many(questions[i : i + step]))
        i += step
    assert got == expected
    assert _observable_state(kind, chunked) == _observable_state(kind, whole)


@given(oracle_cases())
def test_ask_all_falls_back_for_ask_only_oracles(case):
    """`ask_all` must preserve exact sequential semantics for user oracles
    that only implement ``ask`` — including stateful, order-dependent
    ones, modeled here by an oracle that flips every third response."""
    _, n, count, seed = case
    questions = random_questions(random.Random(seed), n, count)
    target = random_query(random.Random(seed), n)

    class Moody:
        def __init__(self) -> None:
            self.n = n
            self.calls = 0

        def ask(self, q: Question) -> bool:
            self.calls += 1
            truthful = target.evaluate(q)
            return not truthful if self.calls % 3 == 0 else truthful

    reference, via_helper = Moody(), Moody()
    expected = [reference.ask(q) for q in questions]
    assert ask_all(via_helper, questions) == expected
    assert via_helper.calls == reference.calls


# ----------------------------------------------------------------------
# Seeded exhaustive sweep (the acceptance criterion's ≥ 1000 cases)
# ----------------------------------------------------------------------


def test_differential_thousand_cases():
    rng = random.Random(20130624)
    cases = 0
    for i in range(110):
        for kind in KINDS:
            n = rng.randrange(1, MAX_N + 1)
            count = rng.randrange(0, 24)
            seed = rng.randrange(2**32)
            questions = random_questions(random.Random(seed), n, count)
            assert_batch_equals_sequential(kind, seed, n, questions)
            cases += 1
    assert cases >= 1000


# ----------------------------------------------------------------------
# Learner / verifier differential: batched path ≡ sequential-ask path
# ----------------------------------------------------------------------


class AskOnly:
    """Strips the batch protocol off an oracle, forcing every batch
    emitted by a learner through the sequential :func:`ask_all` fallback
    — the "sequential ask" side of the acceptance criterion."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.n = inner.n

    def ask(self, question: Question) -> bool:
        return self.inner.ask(question)


def _run_learner(make_learner, target: QhornQuery, batched: bool):
    counting = CountingOracle(QueryOracle(target))
    oracle = counting if batched else AskOnly(counting)
    result = make_learner(oracle).learn()
    return result.query, counting.stats


def test_learners_identical_through_batched_and_sequential_paths():
    """Identical learned queries, question counts and question multisets
    whether the oracle speaks the batch protocol or only sequential
    ``ask`` (question *order* may differ: batched FindAll walks its
    recursion tree level by level)."""
    from repro.learning import Qhorn1Learner, RolePreservingLearner
    from repro.learning.baselines import NaiveQhorn1Learner

    for seed in range(12):
        rng = random.Random(900 + seed)
        q1_target = random_qhorn1(7, rng)
        rp_target = random_role_preserving(5, rng)
        for make, target in (
            (Qhorn1Learner, q1_target),
            (NaiveQhorn1Learner, q1_target),
            (RolePreservingLearner, rp_target),
        ):
            batched_query, batched_stats = _run_learner(make, target, True)
            seq_query, seq_stats = _run_learner(make, target, False)
            assert canonicalize(batched_query) == canonicalize(seq_query)
            assert canonicalize(batched_query) == canonicalize(target)
            assert batched_stats.questions == seq_stats.questions
            assert batched_stats.tuples_histogram == seq_stats.tuples_histogram
            assert batched_stats.rounds < seq_stats.rounds  # batching is real


def test_reviser_identical_through_both_paths():
    from repro.learning.revision import QueryReviser

    for seed in range(8):
        rng = random.Random(1700 + seed)
        intended = random_role_preserving(5, rng)
        given = random_role_preserving(5, rng)
        results = []
        for batched in (True, False):
            counting = CountingOracle(QueryOracle(intended))
            oracle = counting if batched else AskOnly(counting)
            out = QueryReviser(given, oracle).revise()
            results.append((canonicalize(out.query), counting.stats.questions))
        assert results[0] == results[1]
        assert results[0][0] == canonicalize(intended)


def test_verifier_identical_through_both_paths():
    from repro.verification import Verifier, build_verification_set

    for seed in range(10):
        rng = random.Random(2600 + seed)
        given = random_role_preserving(5, rng)
        intended = random_role_preserving(5, rng)
        # The verification set itself is deterministic in the given query.
        set_a = build_verification_set(given)
        set_b = build_verification_set(given)
        assert [
            (q.kind, q.question, q.expected) for q in set_a.questions
        ] == [(q.kind, q.question, q.expected) for q in set_b.questions]
        outcomes = []
        for batched in (True, False):
            counting = CountingOracle(QueryOracle(intended))
            oracle = counting if batched else AskOnly(counting)
            out = Verifier(given).run(oracle)
            outcomes.append(
                (
                    out.verified,
                    out.questions_asked,
                    [(d.item.kind, d.item.question) for d in out.disagreements],
                    counting.stats.questions,
                )
            )
        assert outcomes[0] == outcomes[1]


def test_verification_set_question_multiset_stable():
    """`build_verification_set` feeds the batched Verifier; its questions
    must not depend on evaluation-path side effects (compile caches etc.).
    Compare a fresh construction after compiled evaluation ran."""
    for seed in range(6):
        rng = random.Random(3100 + seed)
        query = random_role_preserving(5, rng)
        before = Counter(
            (q.kind, q.question) for q in build_verification_set_of(query)
        )
        QueryOracle(query).ask_many(
            [q.question for q in build_verification_set_of(query)]
        )
        after = Counter(
            (q.kind, q.question) for q in build_verification_set_of(query)
        )
        assert before == after


def build_verification_set_of(query):
    from repro.verification import build_verification_set

    return build_verification_set(query).questions


def test_replay_exhaustion_raises_identically():
    """Past-prefix batches without a live oracle raise in both modes."""
    import pytest

    from repro.oracle import ExhaustedReplayError

    q = Question.of(2, [bt.all_true(2)])
    sequential = ReplayOracle([True, False], live=None, n=2)
    batched = ReplayOracle([True, False], live=None, n=2)
    assert [sequential.ask(q), sequential.ask(q)] == batched.ask_many([q, q])
    with pytest.raises(ExhaustedReplayError):
        sequential.ask(q)
    with pytest.raises(ExhaustedReplayError):
        batched.ask_many([q])
