"""Property-based tests of the paper's question-semantics claims.

§3.1's algorithms rest on precise claims about what each question shape
reveals; these tests check the claims themselves against random queries,
not just the learners built on them.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalize import canonicalize
from repro.learning.questions import (
    existential_independence_question,
    universal_dependence_question,
    universal_head_question,
)

from tests.properties.strategies import (
    qhorn1_queries,
    role_preserving_queries,
)


@given(role_preserving_queries(), st.data())
@settings(max_examples=100, deadline=None)
def test_universal_head_question_claim(query, data):
    """§3.1.1: {1^n, only-v-false} is a non-answer iff v heads a universal
    expression — for every role-preserving query, not just qhorn-1."""
    v = data.draw(st.integers(min_value=0, max_value=query.n - 1))
    is_head = v in {u.head for u in canonicalize(query).universals}
    response = query.evaluate(universal_head_question(query.n, v))
    assert response == (not is_head)


@given(qhorn1_queries(max_n=10), st.data())
@settings(max_examples=100, deadline=None)
def test_universal_dependence_question_claim(query, data):
    """Def. 3.1: for a universal head h, the dependence question on (h, V)
    is an answer iff h's body intersects V."""
    canon = canonicalize(query)
    heads = sorted({u.head for u in canon.universals})
    if not heads:
        return
    h = data.draw(st.sampled_from(heads))
    body = next(u.body for u in canon.universals if u.head == h)
    others = [v for v in range(query.n) if v != h and v not in heads]
    if not others:
        return
    vs = data.draw(
        st.lists(st.sampled_from(others), min_size=1, max_size=len(others),
                 unique=True)
    )
    response = query.evaluate(
        universal_dependence_question(query.n, h, vs)
    )
    assert response == bool(body & set(vs))


@given(qhorn1_queries(max_n=10), st.data())
@settings(max_examples=100, deadline=None)
def test_existential_independence_question_claim(query, data):
    """Def. 3.2 for singletons: x and y 'depend' (non-answer) iff some
    conjunction of the normalized query contains both."""
    canon = canonicalize(query)
    heads = {u.head for u in canon.universals}
    existential_vars = [v for v in range(query.n) if v not in heads]
    if len(existential_vars) < 2:
        return
    x = data.draw(st.sampled_from(existential_vars))
    y = data.draw(
        st.sampled_from([v for v in existential_vars if v != x])
    )
    response = query.evaluate(
        existential_independence_question(query.n, [x], [y])
    )
    co_occur = any(
        x in c and y in c for c in canon.conjunctions
    )
    assert response == (not co_occur)


@given(role_preserving_queries())
@settings(max_examples=60, deadline=None)
def test_verification_questions_never_violate_universals(query):
    """Every tuple of every verification question is Horn-compliant with
    the given query's dominant universal expressions (§4.1's footnote)."""
    from repro.lattice.boolean_lattice import violates_universals
    from repro.verification import build_verification_set

    canon = canonicalize(query)
    vs = build_verification_set(query)
    for item in vs.questions:
        if item.kind in ("N2",):
            continue  # N2's distinguishing tuple violates by design
        for t in item.question.tuples:
            if item.kind == "N1" or item.kind.startswith("A"):
                assert not violates_universals(
                    t, canon.universals
                ), (item.kind, item.provenance)
