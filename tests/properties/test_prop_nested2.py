"""Property-based tests for two-level nested quantification (§6)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nested2 import Nested2Query, NestedExpression, Quantifier

A, E = Quantifier.FORALL, Quantifier.EXISTS


@st.composite
def nested_expressions(draw, n: int = 3) -> NestedExpression:
    outer = draw(st.sampled_from([A, E]))
    inner = draw(st.sampled_from([A, E]))
    vars_ = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=1,
            max_size=n,
            unique=True,
        )
    )
    use_head = draw(st.booleans())
    if use_head:
        head, *body = vars_
        return NestedExpression(
            outer=outer, inner=inner, body=frozenset(body), head=head
        )
    return NestedExpression(outer=outer, inner=inner, body=frozenset(vars_))


@st.composite
def nested_objects(draw, n: int = 3):
    n_subs = draw(st.integers(min_value=0, max_value=4))
    subs = []
    for _ in range(n_subs):
        size = draw(st.integers(min_value=0, max_value=4))
        subs.append(
            frozenset(
                draw(st.integers(min_value=0, max_value=(1 << n) - 1))
                for _ in range(size)
            )
        )
    return frozenset(subs)


@given(nested_expressions(), nested_objects())
@settings(max_examples=120, deadline=None)
def test_outer_forall_antimonotone_in_subobjects(expr, obj):
    """Removing a sub-object can never break an outer-∀ expression."""
    if expr.outer is not Quantifier.FORALL or not obj:
        return
    q = Nested2Query(3, {expr})
    if q.evaluate(obj):
        smaller = frozenset(list(obj)[1:])
        assert q.evaluate(smaller)


@given(nested_expressions(), nested_objects(), nested_objects())
@settings(max_examples=120, deadline=None)
def test_outer_exists_monotone_in_subobjects(expr, obj, extra):
    """Adding sub-objects can never break an outer-∃ expression."""
    if expr.outer is not Quantifier.EXISTS:
        return
    q = Nested2Query(3, {expr})
    if q.evaluate(obj):
        assert q.evaluate(obj | extra)


@given(nested_objects())
@settings(max_examples=60, deadline=None)
def test_conjunction_of_expressions_is_intersection(obj):
    e1 = NestedExpression(outer=A, inner=E, body=frozenset({0}))
    e2 = NestedExpression(outer=E, inner=A, body=frozenset({1}))
    both = Nested2Query(3, {e1, e2})
    assert both.evaluate(obj) == (
        Nested2Query(3, {e1}).evaluate(obj)
        and Nested2Query(3, {e2}).evaluate(obj)
    )


@given(nested_expressions())
@settings(max_examples=60, deadline=None)
def test_full_object_satisfies_everything(expr):
    """The object {all sub-objects = {1^n}} satisfies any expression."""
    q = Nested2Query(3, {expr})
    top = frozenset({frozenset({0b111})})
    assert q.evaluate(top)


@given(nested_expressions())
@settings(max_examples=60, deadline=None)
def test_str_never_crashes(expr):
    assert str(expr)
