"""Property-based tests: exact identification is the headline invariant."""

from __future__ import annotations

import math

from hypothesis import given, settings

from repro.core.normalize import canonicalize
from repro.learning import (
    NaiveQhorn1Learner,
    Qhorn1Learner,
    RolePreservingLearner,
)
from repro.oracle import CountingOracle, QueryOracle

from tests.properties.strategies import qhorn1_queries, role_preserving_queries


@given(qhorn1_queries())
@settings(max_examples=80, deadline=None)
def test_qhorn1_learner_exact(target):
    """Theorem 3.1 (exactness half): the learner always terminates with a
    query canonically equal to the target."""
    result = Qhorn1Learner(QueryOracle(target)).learn()
    assert canonicalize(result.query) == canonicalize(target)


@given(qhorn1_queries(max_n=10))
@settings(max_examples=50, deadline=None)
def test_qhorn1_learner_question_bound(target):
    """Theorem 3.1 (complexity half) with an explicit constant."""
    oracle = CountingOracle(QueryOracle(target))
    Qhorn1Learner(oracle).learn()
    n = target.n
    assert oracle.questions_asked <= 12 * n * max(1, math.log2(max(n, 2))) + 12


@given(role_preserving_queries())
@settings(max_examples=60, deadline=None)
def test_role_preserving_learner_exact(target):
    """Theorems 3.5 + 3.8 (exactness): lattice learner identifies the
    target's canonical form."""
    result = RolePreservingLearner(QueryOracle(target)).learn()
    assert canonicalize(result.query) == canonicalize(target)


@given(qhorn1_queries(max_n=7))
@settings(max_examples=30, deadline=None)
def test_learners_agree_on_qhorn1_targets(target):
    """qhorn-1 ⊂ role-preserving: both learners and the naive baseline must
    produce the same canonical query."""
    fast = Qhorn1Learner(QueryOracle(target)).learn()
    naive = NaiveQhorn1Learner(QueryOracle(target)).learn()
    lattice = RolePreservingLearner(QueryOracle(target)).learn()
    assert (
        canonicalize(fast.query)
        == canonicalize(naive.query)
        == canonicalize(lattice.query)
    )


@given(role_preserving_queries(max_n=7))
@settings(max_examples=40, deadline=None)
def test_learned_output_is_normalized(target):
    """The lattice learner emits dominant expressions only — asking it to
    learn its own output changes nothing."""
    first = RolePreservingLearner(QueryOracle(target)).learn()
    second = RolePreservingLearner(QueryOracle(first.query)).learn()
    assert canonicalize(first.query) == canonicalize(second.query)


@given(qhorn1_queries(max_n=10))
@settings(max_examples=40, deadline=None)
def test_question_width_stays_polynomial(target):
    """§2.1.2's interactivity requirement: tuples per question <= n."""
    oracle = CountingOracle(QueryOracle(target))
    Qhorn1Learner(oracle).learn()
    assert oracle.stats.max_tuples <= max(target.n, 2)
