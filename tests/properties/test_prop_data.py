"""Property-based tests: data-domain abstraction/synthesis round trips."""

from __future__ import annotations


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuples import Question
from repro.data.propositions import (
    Between,
    BoolIs,
    Equals,
    GreaterThan,
    LessThan,
    Vocabulary,
)
from repro.data.schema import Attribute, FlatSchema

SCHEMA = FlatSchema(
    "T",
    (
        Attribute.boolean("b1"),
        Attribute.boolean("b2"),
        Attribute.integer("i1"),
        Attribute.real("f1"),
        Attribute.category("c1", ("red", "green", "blue")),
    ),
)


@st.composite
def vocabularies(draw) -> Vocabulary:
    """Random non-interfering vocabularies over SCHEMA.

    Propositions over distinct attributes never interfere; numeric ones on
    the same attribute are drawn with disjoint-friendly thresholds and the
    interference checker re-validates on construction.
    """
    pool = [
        BoolIs("b1"),
        BoolIs("b2", value=draw(st.booleans())),
        Equals("c1", draw(st.sampled_from(["red", "green", "blue"]))),
        LessThan("i1", draw(st.integers(min_value=-5, max_value=5))),
        GreaterThan("f1", draw(st.floats(min_value=-2, max_value=2,
                                         allow_nan=False))),
        Between("i1", 100, 200),
    ]
    size = draw(st.integers(min_value=1, max_value=4))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(pool) - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    # one proposition per attribute keeps independence guaranteed
    chosen, seen_attrs = [], set()
    for i in indices:
        p = pool[i]
        if p.attribute in seen_attrs:
            continue
        seen_attrs.add(p.attribute)
        chosen.append(p)
    return Vocabulary(SCHEMA, chosen)


@given(vocabularies(), st.integers(min_value=0, max_value=2**4 - 1))
@settings(max_examples=80, deadline=None)
def test_synthesis_roundtrip(vocab, bits):
    bits &= (1 << vocab.n) - 1
    row = vocab.synthesize_row(bits)
    SCHEMA.validate_row(row)
    assert vocab.boolean_tuple(row) == bits


@given(vocabularies(), st.lists(st.integers(min_value=0), max_size=5))
@settings(max_examples=60, deadline=None)
def test_object_synthesis_roundtrip(vocab, raw):
    masks = [r & ((1 << vocab.n) - 1) for r in raw]
    q = Question.of(vocab.n, masks)
    rows = vocab.synthesize_object(q)
    assert vocab.abstract_object(rows) == q.tuples


@given(vocabularies())
@settings(max_examples=40, deadline=None)
def test_no_interference_reported(vocab):
    assert vocab.check_interference() == []


@given(vocabularies())
@settings(max_examples=40, deadline=None)
def test_legend_mentions_every_variable(vocab):
    legend = vocab.legend()
    for i in range(vocab.n):
        assert f"x{i + 1}:" in legend
