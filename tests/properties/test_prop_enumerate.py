"""Bounded-exhaustive conformance: the acceptance-criteria sweep.

Where the other property suites sample random (query, relation) pairs,
this one *proves by cases* at small bounds (DESIGN.md §2j):

* the full conformance matrix — learner × oracle transport × driver ×
  parallelism, and every evaluation backend — produces **zero
  divergences** over the complete enumerated space at ``n ≤ 2``;
* Theorem 3.1's question bound (at the constants pinned by the learning
  suite: ``12·n·lg n + 12``) holds on **every** enumerated instance,
  not just sampled ones — and the exhaustive maxima are pinned exactly,
  so any learner regression that asks even one extra question fails;
* the enumerated query space itself is a true semantic transversal:
  every qhorn-1 behaviour at ``n ≤ 2`` appears exactly once.
"""

from __future__ import annotations

import io

import pytest

from repro.core.normalize import brute_force_equivalent, enumerate_objects
from repro.core.query import QhornQuery
from repro.enumerate.differ import (
    MatrixSpec,
    check_learners,
    theorem_31_bound,
)
from repro.enumerate.runner import RunConfig, run
from repro.enumerate.space import enumerate_queries, query_signature

SERIAL_FULL = RunConfig(
    max_props=2,
    max_objects=2,
    matrix="parallel=serial",
    parallel=0,
)


class TestExhaustiveConformance:
    def test_zero_divergences_across_the_serial_matrix(self):
        """Every (query, store) pair × every serial matrix leg agrees."""
        result = run(SERIAL_FULL, io.StringIO())
        assert result.ok, [d.detail for d in result.divergences]
        assert result.queries == 13
        assert result.stores == 93  # 15 at n=1 + 78 at n=2
        assert result.pairs == 888
        assert result.learner_runs == 13 * 3 * 3 * 2
        assert result.backend_checks > 0

    def test_zero_divergences_with_worker_pool_legs(self):
        """The parallel legs (ParallelOracle dispatch, pool-built
        sharded backend) agree bit-identically too — n=1 bounds keep
        the process fan-out cheap."""
        config = RunConfig(max_props=1, max_objects=1, parallel=2)
        result = run(config, io.StringIO())
        assert result.ok, [d.detail for d in result.divergences]
        assert result.learner_runs == 2 * 3 * 3 * 2 * 2  # ×2 parallel axis


class TestTheorem31Exhaustive:
    def test_bound_holds_on_every_instance(self):
        matrix = MatrixSpec.parse(
            "learners=qhorn1;oracles=direct;drivers=pull;parallel=serial"
        )
        for entry in enumerate_queries(2):
            report, divergences = check_learners(entry, matrix)
            assert divergences == []
            assert report["questions"]["qhorn1"] <= theorem_31_bound(entry.n)

    def test_exhaustive_maxima_pinned_exactly(self):
        """The worst case over the WHOLE bounded space, by n — a
        one-question learner regression moves these."""
        matrix = MatrixSpec.parse(
            "learners=qhorn1;oracles=direct;drivers=pull;parallel=serial"
        )
        worst: dict[int, int] = {}
        for entry in enumerate_queries(2):
            report, _ = check_learners(entry, matrix)
            n = entry.n
            worst[n] = max(worst.get(n, 0), report["questions"]["qhorn1"])
        assert worst == {1: 2, 2: 5}
        assert worst[2] <= theorem_31_bound(2) == 36.0


class TestTransversal:
    def test_every_qhorn1_behaviour_appears_exactly_once(self):
        """Completeness + soundness of the semantic dedup at n=2: the
        enumerated signatures equal the signature set of ALL qhorn-1
        queries of ≤ 2 expressions, with no repeats."""
        from itertools import combinations

        from repro.enumerate.space import expression_universe

        entries = [e for e in enumerate_queries(2) if e.n == 2]
        enumerated = {e.signature for e in entries}
        assert len(enumerated) == len(entries)  # no repeats

        universe = expression_universe(2)
        exhaustive = set()
        for size in (1, 2):
            for subset in combinations(universe, size):
                from repro.core.expressions import UniversalHorn

                query = QhornQuery(
                    n=2,
                    universals=frozenset(
                        e for e in subset if isinstance(e, UniversalHorn)
                    ),
                    existentials=frozenset(
                        e for e in subset if not isinstance(e, UniversalHorn)
                    ),
                )
                if query.is_qhorn1():
                    exhaustive.add(query_signature(query))
        assert enumerated == exhaustive

    @pytest.mark.parametrize("n", [1, 2])
    def test_signature_is_sound_for_equivalence(self, n):
        entries = list(e for e in enumerate_queries(n) if e.n == n)
        objects = list(enumerate_objects(n, include_empty=True))
        for a in entries:
            for b in entries:
                same = a.signature == b.signature
                assert same == brute_force_equivalent(a.query, b.query)
                if not same:
                    compiled_a = a.query.compile()
                    compiled_b = b.query.compile()
                    assert any(
                        compiled_a.evaluate(o) != compiled_b.evaluate(o)
                        for o in objects
                    )
