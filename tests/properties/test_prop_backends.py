"""Differential properties: the evaluation backends are answer-identical.

The :class:`~repro.data.backends.EvaluationBackend` contract (DESIGN.md
§2c) demands that ``bitmask``, ``sharded``, ``numpy``, ``sql`` and
``dbapi`` return
exactly the answers of the per-object reference path on identical state,
for every qhorn query.  The SQL leg is the strongest form of the check:
it evaluates propositions over *real rows* in SQLite while the bitmask
legs evaluate vocabulary abstractions in-process, so agreement exercises
the whole ``proposition_to_sql`` / ``Proposition.holds`` correspondence
too.  The ``numpy`` leg pins the packed-bit kernel (DESIGN.md §2g) —
including its word-boundary packing, exercised explicitly at 63/64/65
objects below — against the same reference.

Two layers, mirroring ``test_prop_engine.py``:

* hypothesis properties over random relations/queries (sharding forced to
  multiple shards so block boundaries are genuinely crossed);
* a seeded exhaustive sweep of ≥ 1000 random (query, relation) cases
  comparing all backends and the SQL-backed batch oracle, so the
  agreement count demanded by the acceptance criteria is explicit.
"""

from __future__ import annotations

import random

from hypothesis import given, settings

from repro.data import QueryEngine, create_backend
from repro.oracle import QueryOracle, SqlQueryOracle
from repro.core.tuples import Question
from tests.properties.test_prop_engine import (
    bool_vocabulary,
    engine_cases,
    random_query,
    relation_from_masks,
)

BACKEND_NAMES = ("bitmask", "sharded", "numpy", "sql", "dbapi")


def _backends(relation, vocab, rng):
    """One instance of every backend; sharded gets a tiny shard size so
    even 2-object relations span multiple shards, and runs once per
    kernel so the packed per-shard kernel is differentially pinned too.
    The dbapi leg runs on its default private shared-memory database, so
    the pooled/dialect path is differentially pinned alongside ``sql``."""
    shard_size = rng.randint(1, 3)
    return [
        create_backend("bitmask", relation, vocab),
        create_backend("sharded", relation, vocab, shard_size=shard_size),
        create_backend(
            "sharded", relation, vocab, shard_size=shard_size, kernel="numpy"
        ),
        create_backend("numpy", relation, vocab),
        create_backend("sql", relation, vocab),
        create_backend("dbapi", relation, vocab, pool_size=2),
    ]


# ----------------------------------------------------------------------
# Hypothesis properties
# ----------------------------------------------------------------------


@given(engine_cases())
@settings(max_examples=60, deadline=None)
def test_backends_agree_on_execute_and_labels(case):
    n, mask_sets, seed = case
    rng = random.Random(seed)
    query = random_query(rng, n)
    relation = relation_from_masks(n, mask_sets)
    vocab = bool_vocabulary(n)
    engine = QueryEngine(relation, vocab)
    expected_keys = [o.key for o in engine.execute(query)]
    expected_labels = [engine.matches(query, o) for o in relation]
    for backend in _backends(relation, vocab, rng):
        assert [o.key for o in backend.execute(query)] == expected_keys
        assert backend.matches_many(query) == expected_labels


@given(engine_cases())
@settings(max_examples=25, deadline=None)
def test_backends_agree_after_mutation(case):
    """The version/refresh contract: an insert is visible to every backend."""
    n, mask_sets, seed = case
    rng = random.Random(seed)
    query = random_query(rng, n)
    relation = relation_from_masks(n, mask_sets)
    vocab = bool_vocabulary(n)
    backends = _backends(relation, vocab, rng)
    for backend in backends:
        backend.matches_many(query)  # build pre-mutation state
    relation.add_object(
        "late", rows=[{f"b{v + 1}": True for v in range(n)}]
    )
    engine = QueryEngine(relation, vocab, backend="bitmask")
    expected = [engine.matches(query, o) for o in relation]
    for backend in backends:
        assert backend.is_stale
        assert backend.matches_many(query) == expected


# ----------------------------------------------------------------------
# Seeded exhaustive sweep (the acceptance criterion's ≥ 1000 cases)
# ----------------------------------------------------------------------


def test_differential_thousand_cases_across_backends():
    rng = random.Random(20130624)  # PODS 2013 + 1: the backends sweep
    cases = 0
    for _ in range(1100):
        n = rng.randrange(1, 7)
        mask_sets = [
            frozenset(
                rng.randrange(1 << n) for _ in range(rng.randrange(0, 5))
            )
            for _ in range(rng.randrange(0, 7))
        ]
        query = random_query(rng, n)
        relation = relation_from_masks(n, mask_sets)
        vocab = bool_vocabulary(n)
        engine = QueryEngine(relation, vocab)
        expected_keys = [o.key for o in engine.execute(query)]
        expected_labels = [engine.matches(query, o) for o in relation]
        for backend in _backends(relation, vocab, rng):
            assert [o.key for o in backend.execute(query)] == expected_keys, (
                backend.name,
                query.shorthand(),
            )
            assert backend.matches_many(query) == expected_labels, (
                backend.name,
                query.shorthand(),
            )
        cases += 1
    assert cases >= 1000


# ----------------------------------------------------------------------
# Packed-bit boundaries and degenerate shapes (the numpy kernel's edges)
# ----------------------------------------------------------------------


def test_backends_agree_at_word_packing_boundaries():
    """63/64/65 objects straddle the packed kernel's uint64 word edge:
    the trailing partial word, an exactly-full word, and a second word —
    where a wrong trailing mask would leak phantom objects through NOT."""
    rng = random.Random(6364)
    n = 4
    vocab = bool_vocabulary(n)
    for count in (63, 64, 65, 127, 128, 129):
        mask_sets = [
            frozenset(
                rng.randrange(1 << n) for _ in range(rng.randrange(0, 4))
            )
            for _ in range(count)
        ]
        relation = relation_from_masks(n, mask_sets)
        engine = QueryEngine(relation, vocab)
        for _ in range(12):
            query = random_query(rng, n)
            expected_bits = engine.backend.matching_bits(query)
            expected_labels = [engine.matches(query, o) for o in relation]
            assert len(expected_labels) == count
            for backend in _backends(relation, vocab, rng):
                assert backend.matching_bits(query) == expected_bits, (
                    backend.name, count, query.shorthand(),
                )
                assert backend.matches_many(query) == expected_labels, (
                    backend.name, count, query.shorthand(),
                )


def test_backends_agree_on_empty_and_all_false_relations():
    """Degenerate shapes: no objects at all, objects with no rows, and
    relations where every row abstracts to the all-false tuple (mask 0
    everywhere — every broadcast body-compare selects it, no head ever
    witnesses)."""
    rng = random.Random(65)
    n = 3
    vocab = bool_vocabulary(n)
    shapes = {
        "empty relation": [],
        "row-less objects": [frozenset(), frozenset()],
        "all-false rows": [frozenset({0}) for _ in range(70)],
        "all-false plus row-less": [frozenset({0}), frozenset()] * 5,
    }
    for label, mask_sets in shapes.items():
        relation = relation_from_masks(n, mask_sets)
        engine = QueryEngine(relation, vocab)
        for _ in range(20):
            query = random_query(rng, n)
            expected = [engine.matches(query, o) for o in relation]
            for backend in _backends(relation, vocab, rng):
                assert backend.matches_many(query) == expected, (
                    backend.name, label, query.shorthand(),
                )


def test_dbapi_file_backed_store_agrees(tmp_path):
    """The dbapi backend over a *file-backed* SQLite URI answers exactly
    like ``bitmask`` — the acceptance-criteria path of DESIGN.md §2i.
    The same file is reused across cases (tables drop and reload), so
    stale on-disk state from a previous case would be caught too."""
    rng = random.Random(9213)
    uri = f"file:{tmp_path}/prop-store.sqlite"
    checked = 0
    for _ in range(40):
        n = rng.randrange(1, 6)
        mask_sets = [
            frozenset(
                rng.randrange(1 << n) for _ in range(rng.randrange(0, 5))
            )
            for _ in range(rng.randrange(0, 8))
        ]
        relation = relation_from_masks(n, mask_sets)
        vocab = bool_vocabulary(n)
        bitmask = create_backend("bitmask", relation, vocab)
        with create_backend("dbapi", relation, vocab, uri=uri) as dbapi:
            for _ in range(5):
                query = random_query(rng, n)
                assert dbapi.matching_bits(query) == (
                    bitmask.matching_bits(query)
                ), query.shorthand()
                assert dbapi.matches_many(query) == (
                    bitmask.matches_many(query)
                ), query.shorthand()
                checked += 1
    assert checked == 200


def test_sql_oracle_thousand_question_agreement():
    """The SQL-backed batch oracle labels exactly like the in-process
    ground-truth oracle, over ≥ 1000 random questions."""
    rng = random.Random(1304)
    labelled = 0
    for _ in range(40):
        n = rng.randrange(1, 6)
        target = random_query(rng, n)
        questions = [
            Question.of(
                n, [rng.randrange(1 << n) for _ in range(rng.randrange(0, 4))]
            )
            for _ in range(30)
        ]
        reference = QueryOracle(target)
        with SqlQueryOracle(target) as sql_oracle:
            assert sql_oracle.ask_many(questions) == reference.ask_many(
                questions
            ), target.shorthand()
        labelled += len(questions)
    assert labelled >= 1000
