"""Property-based tests: normalization soundness and Proposition 4.1."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.normalize import (
    brute_force_equivalent,
    canonicalize,
    dominant_conjunctions,
    dominant_universals,
    normalize,
    r3_closure,
)

from tests.properties.strategies import (
    qhorn1_queries,
    questions,
    role_preserving_queries,
    tiny_role_preserving_pairs,
)


@given(role_preserving_queries(max_n=4))
@settings(max_examples=60, deadline=None)
def test_normalization_preserves_semantics(query):
    """normalize(q) classifies every object exactly like q (brute force)."""
    assert brute_force_equivalent(query, normalize(query))


@given(role_preserving_queries())
@settings(max_examples=60, deadline=None)
def test_canonicalize_idempotent(query):
    canon = canonicalize(query)
    assert canonicalize(canon.as_query()) == canon


@given(role_preserving_queries())
@settings(max_examples=60, deadline=None)
def test_dominant_universals_form_antichain_per_head(query):
    dom = dominant_universals(query)
    for a in dom:
        for b in dom:
            if a != b and a.head == b.head:
                assert not a.body < b.body
                assert not b.body < a.body


@given(role_preserving_queries())
@settings(max_examples=60, deadline=None)
def test_dominant_conjunctions_form_antichain(query):
    dom = dominant_conjunctions(query)
    for a in dom:
        for b in dom:
            if a != b:
                assert not a < b


@given(role_preserving_queries())
@settings(max_examples=60, deadline=None)
def test_conjunctions_are_r3_closed(query):
    canon = canonicalize(query)
    for c in canon.conjunctions:
        assert r3_closure(c, canon.universals) == c


@given(tiny_role_preserving_pairs())
@settings(max_examples=80, deadline=None)
def test_proposition_41(pair):
    """Canonical equality == semantic equality for role-preserving qhorn."""
    a, b = pair
    assert (canonicalize(a) == canonicalize(b)) == brute_force_equivalent(a, b)


@given(qhorn1_queries(max_n=4), questions(n=4))
@settings(max_examples=80, deadline=None)
def test_normalized_query_agrees_on_random_questions(query, question):
    if query.n != question.n:
        return
    assert query.evaluate(question) == normalize(query).evaluate(question)


@given(role_preserving_queries())
@settings(max_examples=40, deadline=None)
def test_all_true_always_answer(query):
    assert query.evaluate(query.all_true_question())


@given(role_preserving_queries())
@settings(max_examples=40, deadline=None)
def test_canonical_size_never_larger_than_pool(query):
    """Dominance only removes conjunctions, never invents them."""
    from repro.core.normalize import conjunction_pool

    canon = canonicalize(query)
    assert canon.conjunctions <= conjunction_pool(query)
