"""Property-based tests: bitmask tuples and lattice invariants."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core import tuples as bt
from repro.lattice import children, downset, level, parents, upset

from tests.properties.strategies import boolean_tuples


@given(boolean_tuples())
def test_format_parse_roundtrip(pair):
    n, t = pair
    assert bt.parse_tuple(bt.format_tuple(t, n)) == t


@given(boolean_tuples())
def test_true_false_sets_partition(pair):
    n, t = pair
    ts, fs = bt.true_set(t), bt.false_set(t, n)
    assert ts | fs == set(range(n))
    assert not ts & fs


@given(boolean_tuples())
def test_with_false_then_true_restores(pair):
    n, t = pair
    vs = list(bt.true_set(t))
    assert bt.with_true(bt.with_false(t, vs), vs) == t


@given(boolean_tuples(), boolean_tuples())
def test_is_subset_antisymmetry(p1, p2):
    _, a = p1
    _, b = p2
    if bt.is_subset(a, b) and bt.is_subset(b, a):
        assert a == b


@given(boolean_tuples())
def test_children_are_one_level_down(pair):
    n, t = pair
    for c in children(t, n):
        assert level(c, n) == level(t, n) + 1
        assert bt.is_subset(c, t)


@given(boolean_tuples())
def test_parents_are_one_level_up(pair):
    n, t = pair
    for p in parents(t, n):
        assert level(p, n) == level(t, n) - 1
        assert bt.is_subset(t, p)


@given(boolean_tuples())
@settings(max_examples=40)
def test_downset_upset_duality(pair):
    n, t = pair
    if n > 6:
        return  # keep set sizes small
    for d in downset(t, n):
        assert t in set(upset(d, n))


@given(boolean_tuples())
@settings(max_examples=40)
def test_upset_downset_sizes_multiply(pair):
    n, t = pair
    if n > 6:
        return
    k = bt.popcount(t)
    assert len(set(downset(t, n))) == 2**k
    assert len(set(upset(t, n))) == 2 ** (n - k)


@given(boolean_tuples())
def test_popcount_matches_true_set(pair):
    _, t = pair
    assert bt.popcount(t) == len(bt.true_set(t))
