"""Property-based tests for the extension modules (revision, serialize,
SQL compilation, expression questions)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalize import canonicalize
from repro.core.serialize import (
    query_from_dict,
    query_from_json,
    query_to_dict,
    query_to_json,
)
from repro.learning import revise_query
from repro.learning.expression_learner import ExpressionLearner
from repro.oracle import QueryOracle
from repro.oracle.expression import ExpressionOracle

from tests.properties.strategies import (
    qhorn1_queries,
    role_preserving_queries,
)


@given(qhorn1_queries())
@settings(max_examples=60, deadline=None)
def test_serialize_roundtrip_preserves_structure(query):
    again = query_from_dict(query_to_dict(query))
    assert again.universals == query.universals
    assert again.existentials == query.existentials
    assert again.n == query.n


@given(role_preserving_queries())
@settings(max_examples=40, deadline=None)
def test_serialize_json_roundtrip_semantics(query):
    assert canonicalize(query_from_json(query_to_json(query))) == (
        canonicalize(query)
    )


@given(role_preserving_queries(max_n=7), role_preserving_queries(max_n=7))
@settings(max_examples=40, deadline=None)
def test_revision_always_lands_on_intent(given_q, intended):
    if given_q.n != intended.n:
        return
    result = revise_query(given_q, QueryOracle(intended))
    assert canonicalize(result.query) == canonicalize(intended)


@given(role_preserving_queries(max_n=7))
@settings(max_examples=40, deadline=None)
def test_revision_of_self_never_changes(query):
    result = revise_query(query, QueryOracle(query))
    assert not result.changed
    assert canonicalize(result.query) == canonicalize(query)


@given(role_preserving_queries(max_n=7))
@settings(max_examples=40, deadline=None)
def test_expression_learner_matches_membership_learner(target):
    from repro.learning import RolePreservingLearner

    via_expr = ExpressionLearner(ExpressionOracle(target)).learn().query
    via_member = RolePreservingLearner(QueryOracle(target)).learn().query
    assert canonicalize(via_expr) == canonicalize(via_member)


@given(role_preserving_queries(max_n=5), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_sql_engine_agrees_with_memory_engine(query, seed):
    from repro.data import QueryEngine
    from repro.data.propositions import BoolIs, Vocabulary
    from repro.data.schema import Attribute, FlatSchema, NestedSchema
    from repro.data.relation import NestedRelation
    from repro.data.sql import SqliteEngine

    n = query.n
    schema = FlatSchema(
        "T", tuple(Attribute.boolean(f"p{i}") for i in range(n))
    )
    vocab = Vocabulary(schema, [BoolIs(f"p{i}") for i in range(n)])
    relation = NestedRelation(NestedSchema("O", embedded=schema))
    rng = random.Random(seed)
    for i in range(12):
        rows = [
            {f"p{j}": rng.random() < 0.5 for j in range(n)}
            for _ in range(rng.randint(1, 4))
        ]
        relation.add_object(f"o{i}", rows=rows)
    memory = QueryEngine(relation, vocab)
    with SqliteEngine(relation, vocab) as db:
        assert db.execute(query) == sorted(
            o.key for o in memory.execute(query)
        )
