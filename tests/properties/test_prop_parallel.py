"""Differential properties: process-parallel evaluation is unobservable.

The parallel subsystem (DESIGN.md §2d) promises that moving work into
worker processes changes *nothing* observable:

* the sharded backend's pool mode returns exactly the serial backends'
  answers on identical relation state, for every qhorn query (shard
  striping across workers, worker-side label extraction and the
  re-ship/retry path included);
* ``ParallelOracle`` returns exactly the sequential answers for every
  batch, and the stateful wrappers stacked on top — ``CountingOracle``
  statistics, seeded ``NoisyOracle`` flips — stay **bit-identical**,
  because chunk answers are reassembled in submission order.

Layers mirror the other differential suites: hypothesis properties over
random relations/queries plus a seeded exhaustive sweep of ≥ 1000 cases
(the acceptance-criteria count, split across both halves of the
contract).  All cases share one module-scoped two-worker pool, so the
sweep exercises state displacement between cases too.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.core.tuples import Question
from repro.data import create_backend
from repro.oracle import CountingOracle, NoisyOracle, ParallelOracle, QueryOracle
from repro.parallel import ShardWorkerPool
from tests.properties.test_prop_engine import (
    bool_vocabulary,
    engine_cases,
    random_query,
    relation_from_masks,
)

SEEDED_BACKEND_CASES = 600
SEEDED_ORACLE_CASES = 600


@pytest.fixture(scope="module")
def pool():
    with ShardWorkerPool(2) as p:
        yield p


def _random_questions(rng: random.Random, n: int) -> list[Question]:
    count = rng.randint(1, 40)
    return [
        Question.of(
            n, [rng.randrange(1 << n) for _ in range(rng.randint(1, 4))]
        )
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# Hypothesis properties
# ----------------------------------------------------------------------


@given(engine_cases())
@settings(max_examples=40, deadline=None)
def test_pool_backend_agrees_with_serial(pool, case):
    n, mask_sets, seed = case
    rng = random.Random(seed)
    query = random_query(rng, n)
    relation = relation_from_masks(n, mask_sets)
    vocab = bool_vocabulary(n)
    serial = create_backend("bitmask", relation, vocab)
    parallel = create_backend(
        "sharded",
        relation,
        vocab,
        shard_size=rng.randint(1, 3),
        pool=pool,
    )
    assert parallel.matching_bits(query) == serial.matching_bits(query)
    assert parallel.matches_many(query) == serial.matches_many(query)


@given(engine_cases())
@settings(max_examples=25, deadline=None)
def test_parallel_oracle_answers_sequentially(pool, case):
    n, _mask_sets, seed = case
    rng = random.Random(seed)
    target = random_query(rng, n)
    questions = _random_questions(rng, n)
    sequential = [QueryOracle(target).ask(q) for q in questions]
    oracle = ParallelOracle(
        QueryOracle(target), pool=pool, chunk_size=rng.randint(1, 5)
    )
    assert oracle.ask_many(questions) == sequential
    oracle.close()


# ----------------------------------------------------------------------
# Seeded exhaustive sweeps (the acceptance-criteria ≥ 1000 cases)
# ----------------------------------------------------------------------


def test_seeded_backend_sweep(pool):
    """600 seeded (relation, query) cases: pool answers == serial answers."""
    agreements = 0
    for case in range(SEEDED_BACKEND_CASES):
        rng = random.Random(24_000 + case)
        n = rng.randint(1, 5)
        vocab = bool_vocabulary(n)
        mask_sets = [
            frozenset(
                rng.randrange(1 << n) for _ in range(rng.randint(0, 4))
            )
            for _ in range(rng.randint(0, 8))
        ]
        relation = relation_from_masks(n, mask_sets)
        query = random_query(rng, n)
        serial = create_backend("bitmask", relation, vocab)
        parallel = create_backend(
            "sharded",
            relation,
            vocab,
            shard_size=rng.randint(1, 4),
            pool=pool,
        )
        assert parallel.matches_many(query) == serial.matches_many(query), (
            f"case {case}: pool labels diverge from serial"
        )
        assert parallel.matching_bits(query) == serial.matching_bits(query), (
            f"case {case}: pool bits diverge from serial"
        )
        agreements += 1
    assert agreements == SEEDED_BACKEND_CASES


def test_seeded_oracle_sweep(pool):
    """600 seeded question batches: answers, counting statistics and
    seeded noise flips are bit-identical with and without dispatch."""
    agreements = 0
    for case in range(SEEDED_ORACLE_CASES):
        rng = random.Random(25_000 + case)
        n = rng.randint(1, 5)
        target = random_query(rng, n)
        questions = _random_questions(rng, n)
        noise_seed = rng.randrange(1 << 30)

        sequential = CountingOracle(
            NoisyOracle(QueryOracle(target), 0.25, random.Random(noise_seed))
        )
        sequential_answers = [sequential.ask(q) for q in questions]

        inner = ParallelOracle(
            QueryOracle(target), pool=pool, chunk_size=rng.randint(1, 5)
        )
        parallel = CountingOracle(
            NoisyOracle(inner, 0.25, random.Random(noise_seed))
        )
        parallel_answers = parallel.ask_many(questions)
        inner.close()

        assert parallel_answers == sequential_answers, (
            f"case {case}: noisy answers diverge"
        )
        assert parallel.inner.given == sequential.inner.given, (
            f"case {case}: flip pattern diverges"
        )
        assert parallel.inner.truth == sequential.inner.truth, (
            f"case {case}: true labels diverge"
        )
        stats, reference = parallel.stats, sequential.stats
        assert (
            stats.questions,
            stats.tuples,
            stats.answers,
            stats.non_answers,
            stats.tuples_histogram,
        ) == (
            reference.questions,
            reference.tuples,
            reference.answers,
            reference.non_answers,
            reference.tuples_histogram,
        ), f"case {case}: counting statistics diverge"
        agreements += 1
    assert agreements == SEEDED_ORACLE_CASES
