"""Differential properties: batch bitmask evaluation vs the seed path.

The batch subsystem (``CompiledQuery``, ``RelationIndex``,
``QueryEngine.execute_batch`` / ``matches_many``) must agree *exactly*
with the seed per-object reference path (``QhornQuery.evaluate`` over
``Vocabulary.abstract_object``) on every (query, relation) pair — that is
the batch-evaluation contract of DESIGN.md §2.  This suite checks it two
ways:

* hypothesis properties over random vocabularies, relations and general
  qhorn queries (universal, existential, bodyless, relaxed-guarantee and
  empty-object shapes all reachable);
* a seeded exhaustive sweep of ≥ 1000 random (query, relation) cases, so
  the agreement count demanded by the acceptance criteria is explicit.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import QhornQuery
from repro.data import (
    BoolIs,
    NestedRelation,
    QueryEngine,
    RelationIndex,
    Vocabulary,
)
from repro.data.schema import Attribute, FlatSchema, NestedSchema

MAX_N = 6

# ----------------------------------------------------------------------
# Builders: Boolean vocabularies and relations from raw mask sets
# ----------------------------------------------------------------------

_VOCABS: dict[int, Vocabulary] = {}
_SCHEMAS: dict[int, NestedSchema] = {}


def bool_vocabulary(n: int) -> Vocabulary:
    """``n`` independent BoolIs propositions over ``n`` boolean attributes
    (interference-free by construction); cached per ``n``."""
    if n not in _VOCABS:
        schema = FlatSchema(
            name=f"bools{n}",
            attributes=tuple(Attribute.boolean(f"b{i + 1}") for i in range(n)),
        )
        _VOCABS[n] = Vocabulary(
            schema, [BoolIs(f"b{i + 1}") for i in range(n)]
        )
        _SCHEMAS[n] = NestedSchema(name=f"objs{n}", embedded=schema)
    return _VOCABS[n]


def relation_from_masks(
    n: int, mask_sets: list[frozenset[int]]
) -> NestedRelation:
    """A nested relation whose object abstractions are exactly ``mask_sets``
    (one row per mask; empty sets give empty objects)."""
    bool_vocabulary(n)
    relation = NestedRelation(_SCHEMAS[n])
    for i, masks in enumerate(mask_sets):
        relation.add_object(
            f"obj-{i}",
            rows=[
                {f"b{v + 1}": bool(m >> v & 1) for v in range(n)}
                for m in sorted(masks)
            ],
        )
    return relation


def random_query(rng: random.Random, n: int) -> QhornQuery:
    """A general (not necessarily qhorn-1) query: random universal Horn
    expressions, random existential conjunctions, random guarantee mode."""
    universals = []
    for _ in range(rng.randrange(0, 4)):
        head = rng.randrange(n)
        others = [v for v in range(n) if v != head]
        body = rng.sample(others, rng.randrange(0, min(3, len(others)) + 1))
        universals.append((body, head))
    existentials = [
        rng.sample(range(n), rng.randrange(1, min(3, n) + 1))
        for _ in range(rng.randrange(0, 3))
    ]
    return QhornQuery.build(
        n,
        universals=universals,
        existentials=existentials,
        require_guarantees=rng.random() < 0.5,
    )


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------


@st.composite
def engine_cases(draw):
    n = draw(st.integers(min_value=1, max_value=MAX_N))
    n_objects = draw(st.integers(min_value=0, max_value=6))
    mask_sets = [
        draw(
            st.frozensets(
                st.integers(min_value=0, max_value=(1 << n) - 1), max_size=5
            )
        )
        for _ in range(n_objects)
    ]
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return n, mask_sets, seed


# ----------------------------------------------------------------------
# Hypothesis properties
# ----------------------------------------------------------------------


@given(engine_cases())
def test_batch_execute_agrees_with_per_object(case):
    n, mask_sets, seed = case
    query = random_query(random.Random(seed), n)
    relation = relation_from_masks(n, mask_sets)
    engine = QueryEngine(relation, bool_vocabulary(n))
    per_object = [o.key for o in engine.execute(query)]
    batch = [o.key for o in engine.execute_batch(query)]
    assert batch == per_object


@given(engine_cases())
def test_matches_many_agrees_with_matches(case):
    n, mask_sets, seed = case
    query = random_query(random.Random(seed), n)
    relation = relation_from_masks(n, mask_sets)
    engine = QueryEngine(relation, bool_vocabulary(n))
    labels = engine.matches_many(query)
    assert labels == [engine.matches(query, o) for o in relation]
    # Explicit object lists, including a foreign (non-indexed) object.
    objs = relation.objects
    foreign = relation_from_masks(n, [frozenset([0])]).objects[0]
    labels2 = engine.matches_many(query, objs + [foreign])
    assert labels2[:-1] == labels
    assert labels2[-1] == engine.matches(query, foreign)


@given(engine_cases())
def test_compiled_query_agrees_with_reference_evaluate(case):
    n, mask_sets, seed = case
    query = random_query(random.Random(seed), n)
    compiled = query.compile()
    for masks in mask_sets:
        assert compiled.evaluate(masks) == query.evaluate(masks)


@given(engine_cases())
def test_explain_satisfaction_matches_evaluation(case):
    """`explain()` coherence, including the ``require_guarantees`` witness
    edge cases: the conjunction of per-expression satisfaction equals the
    object's classification on both paths."""
    n, mask_sets, seed = case
    query = random_query(random.Random(seed), n)
    relation = relation_from_masks(n, mask_sets)
    engine = QueryEngine(relation, bool_vocabulary(n))
    labels = engine.matches_many(query)
    for obj, label in zip(relation, labels):
        reports = engine.explain(query, obj)
        assert all(r.satisfied for r in reports) == label
        if query.require_guarantees:
            for r in reports:
                if r.detail == "guarantee clause has no witness tuple":
                    assert not r.satisfied


@given(engine_cases())
@settings(max_examples=25)
def test_index_refresh_after_insert(case):
    n, mask_sets, seed = case
    query = random_query(random.Random(seed), n)
    relation = relation_from_masks(n, mask_sets)
    engine = QueryEngine(relation, bool_vocabulary(n))
    engine.execute_batch(query)  # build the index before mutating
    relation.add_object(
        "late",
        rows=[{f"b{v + 1}": True for v in range(n)}],  # 1^n answers any query
    )
    assert engine.index.is_stale
    batch = [o.key for o in engine.execute_batch(query)]
    assert batch == [o.key for o in engine.execute(query)]
    assert "late" in batch


# ----------------------------------------------------------------------
# Seeded exhaustive sweep (the acceptance criterion's ≥ 1000 cases)
# ----------------------------------------------------------------------


def test_differential_thousand_cases():
    rng = random.Random(20130623)  # PODS 2013
    cases = 0
    for _ in range(1200):
        n = rng.randrange(1, MAX_N + 1)
        mask_sets = [
            frozenset(
                rng.randrange(1 << n) for _ in range(rng.randrange(0, 5))
            )
            for _ in range(rng.randrange(0, 7))
        ]
        query = random_query(rng, n)
        relation = relation_from_masks(n, mask_sets)
        engine = QueryEngine(relation, bool_vocabulary(n))
        per_object = [o.key for o in engine.execute(query)]
        assert [o.key for o in engine.execute_batch(query)] == per_object
        assert engine.matches_many(query) == [
            engine.matches(query, o) for o in relation
        ]
        compiled = query.compile()
        for masks in mask_sets:
            assert compiled.evaluate(masks) == query.evaluate(masks)
        cases += 1
    assert cases >= 1000


def test_standalone_index_matches_engine():
    rng = random.Random(7)
    n = 4
    mask_sets = [
        frozenset(rng.randrange(1 << n) for _ in range(rng.randrange(0, 4)))
        for _ in range(10)
    ]
    relation = relation_from_masks(n, mask_sets)
    vocab = bool_vocabulary(n)
    index = RelationIndex(relation, vocab)
    shared = QueryEngine(
        relation, vocab, backend="bitmask", backend_options={"index": index}
    )
    for _ in range(20):
        query = random_query(rng, n)
        assert [o.key for o in index.execute(query)] == [
            o.key for o in shared.execute(query)
        ]
    assert index.distinct_masks <= 1 << n
