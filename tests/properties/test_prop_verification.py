"""Property-based tests: verification soundness and completeness (Thm 4.2)."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.normalize import canonicalize
from repro.oracle import QueryOracle
from repro.verification import build_verification_set, verify_query

from tests.properties.strategies import (
    role_preserving_queries,
    tiny_role_preserving_pairs,
)


@given(role_preserving_queries())
@settings(max_examples=80, deadline=None)
def test_labels_are_the_querys_own(query):
    """Internal soundness of Fig. 6: each expected label equals the given
    query's evaluation of its own question."""
    vs = build_verification_set(query)
    for item in vs.questions:
        assert query.evaluate(item.question) == item.expected


@given(role_preserving_queries())
@settings(max_examples=60, deadline=None)
def test_self_verification_passes(query):
    assert verify_query(query, QueryOracle(query)).verified


@given(tiny_role_preserving_pairs())
@settings(max_examples=80, deadline=None)
def test_verification_decides_equivalence(pair):
    """Theorem 4.2 as a decision procedure: the verification set passes iff
    the two queries are semantically equal."""
    given_q, intended = pair
    outcome = verify_query(given_q, QueryOracle(intended))
    assert outcome.verified == (
        canonicalize(given_q) == canonicalize(intended)
    )


@given(role_preserving_queries(max_n=8))
@settings(max_examples=60, deadline=None)
def test_question_count_linear_in_k(query):
    """§4: the verification set stays O(k) for the normalized query."""
    canon = canonicalize(query)
    k = len(canon.universals) + len(canon.conjunctions)
    vs = build_verification_set(query)
    assert vs.size <= 4 * k + 2


@given(role_preserving_queries(max_n=8))
@settings(max_examples=40, deadline=None)
def test_verification_set_deterministic(query):
    a = build_verification_set(query)
    b = build_verification_set(query)
    assert [(q.kind, q.question) for q in a.questions] == [
        (q.kind, q.question) for q in b.questions
    ]
