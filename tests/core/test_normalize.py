"""Unit tests for equivalence rules R1–R3 and canonical forms (§2.1.1, §4.1)."""

from __future__ import annotations

import random

import pytest

from repro.core import tuples as bt
from repro.core.expressions import UniversalHorn
from repro.core.generators import paper_running_query, random_role_preserving
from repro.core.normalize import (
    brute_force_equivalent,
    canonicalize,
    conjunction_pool,
    dominant_conjunctions,
    dominant_universals,
    distinguishing_profile,
    enumerate_objects,
    equivalent,
    existential_distinguishing_tuple,
    find_separating_object,
    normalize,
    r3_closure,
    universal_distinguishing_tuple,
)
from repro.core.parser import parse_query


class TestRuleR1:
    def test_dominated_conjunctions_removed(self):
        # ∃x1x2x3 ∃x1x2 ∃x2x3 ≡ ∃x1x2x3 (the paper's R1 example)
        a = parse_query("∃x1x2x3 ∃x1x2 ∃x2x3")
        b = parse_query("∃x1x2x3")
        assert canonicalize(a) == canonicalize(b)
        assert brute_force_equivalent(a, b)


class TestRuleR2:
    def test_dominated_universal_leaves_guarantee(self):
        # ∀x1x2x3→h ∀x1x2→h ∀x1→h ≡ ∀x1→h ∃x1x2x3h (paper's R2 example)
        a = parse_query("∀x1x2x3→x4 ∀x1x2→x4 ∀x1→x4")
        b = parse_query("∃x1x2x3x4 ∀x1→x4")
        assert canonicalize(a) == canonicalize(b)
        assert brute_force_equivalent(a, b)

    def test_dominant_universals_are_minimal_bodies(self):
        q = parse_query("∀x1x2→x3 ∀x1→x3")
        assert dominant_universals(q) == {
            UniversalHorn(head=2, body=frozenset({0}))
        }


class TestRuleR3:
    def test_closure_adds_implied_heads(self):
        # ∀x1→h ∃x1x3 ≡ ∀x1→h ∃x1x3h (paper's R3 example)
        a = parse_query("∀x1→x2 ∃x1x3")
        b = parse_query("∀x1→x2 ∃x1x2x3")
        assert canonicalize(a) == canonicalize(b)
        assert brute_force_equivalent(a, b)

    def test_closure_fixpoint_for_chains(self):
        # General qhorn: closure iterates through head-as-body chains.
        us = [
            UniversalHorn(head=1, body=frozenset({0})),
            UniversalHorn(head=2, body=frozenset({1})),
        ]
        assert r3_closure({0}, us) == {0, 1, 2}

    def test_closure_with_bodyless_head(self):
        us = [UniversalHorn(head=3)]
        assert r3_closure({0}, us) == {0, 3}


class TestConjunctionPool:
    def test_guarantees_of_dominated_expressions_survive(self):
        q = parse_query("∀x1→x4 ∀x1x2x3→x4")
        pool = conjunction_pool(q)
        assert frozenset({0, 1, 2, 3}) in pool  # closure of x1x2x3x4

    def test_pool_respects_guarantee_relaxation(self):
        q = parse_query("∀x1→x2", require_guarantees=False)
        assert conjunction_pool(q) == frozenset()

    def test_dominant_conjunctions_antichain(self):
        q = parse_query("∃x1 ∃x1x2 ∃x3")
        dom = dominant_conjunctions(q)
        assert dom == {frozenset({0, 1}), frozenset({2})}


class TestCanonicalForm:
    def test_paper_normalized_running_query(self):
        """§3.2.2: the running query normalizes to five dominant
        conjunctions (guarantee of ∀x1x4→x5 included)."""
        canon = canonicalize(paper_running_query())
        expected = {
            frozenset({0, 1, 2, 5}),  # ∃x1x2x3x6
            frozenset({1, 2, 3, 4}),  # ∃x2x3x4x5
            frozenset({0, 1, 4, 5}),  # ∃x1x2x5x6
            frozenset({1, 2, 4, 5}),  # ∃x2x3x5x6
            frozenset({0, 3, 4}),     # ∃x1x4x5 (guarantee)
        }
        assert canon.conjunctions == expected
        assert len(canon.universals) == 3

    def test_as_query_is_equivalent(self):
        q = paper_running_query()
        assert equivalent(q, canonicalize(q).as_query())

    def test_normalize_idempotent(self):
        q = paper_running_query()
        once = normalize(q)
        twice = normalize(once)
        assert canonicalize(once) == canonicalize(twice)

    def test_equivalent_requires_role_preserving(self):
        cyc = parse_query("∀x1→x2 ∀x2→x1")
        with pytest.raises(ValueError):
            equivalent(cyc, cyc)

    def test_different_n_not_equivalent(self):
        assert not equivalent(parse_query("∃x1"), parse_query("∃x1", n=2))


class TestDistinguishingTuples:
    def test_existential_tuple_closes_under_r3(self):
        us = [UniversalHorn(head=2, body=frozenset({0}))]
        t = existential_distinguishing_tuple({0, 1}, us)
        assert bt.true_set(t) == {0, 1, 2}

    def test_universal_tuple_matches_paper(self):
        """§4.1.2: ∀x1x4→x5 in the running query ⇒ 100101."""
        q = paper_running_query()
        heads = {u.head for u in q.universals}
        u = UniversalHorn(head=4, body=frozenset({0, 3}))
        t = universal_distinguishing_tuple(u, heads)
        assert bt.format_tuple(t, 6) == "100101"

    def test_profile_matches_paper_a1(self):
        """§4.2 A1: the five dominant existential distinguishing tuples."""
        uni, exi = distinguishing_profile(paper_running_query())
        expected = {
            bt.parse_tuple(s)
            for s in ("111001", "011110", "110011", "011011", "100110")
        }
        assert exi == expected
        assert uni == {
            bt.parse_tuple(s) for s in ("100101", "001101", "110010")
        }


class TestBruteForce:
    def test_enumerate_objects_count(self):
        assert sum(1 for _ in enumerate_objects(2)) == 2**4 - 1
        assert sum(1 for _ in enumerate_objects(2, include_empty=True)) == 2**4

    def test_enumerate_objects_guard(self):
        with pytest.raises(ValueError):
            list(enumerate_objects(5))

    def test_find_separating_object(self):
        a = parse_query("∃x1", n=2)
        b = parse_query("∃x2", n=2)
        obj = find_separating_object(a, b)
        assert obj is not None
        assert a.evaluate(obj) != b.evaluate(obj)

    def test_sampling_path_finds_difference(self):
        a = parse_query("∃x1x2x3x4x5", n=5)
        b = parse_query("∃x1x2x3x4", n=5)
        assert not brute_force_equivalent(a, b, samples=50)

    def test_canonical_equality_matches_brute_force_small_n(self, rng):
        """Proposition 4.1 on random role-preserving pairs, n <= 3."""
        queries = [
            random_role_preserving(3, rng, theta=2) for _ in range(40)
        ]
        checked = 0
        for i in range(0, len(queries) - 1, 2):
            a, b = queries[i], queries[i + 1]
            canon_eq = canonicalize(a) == canonicalize(b)
            truth_eq = brute_force_equivalent(a, b)
            assert canon_eq == truth_eq, (a.shorthand(), b.shorthand())
            checked += 1
        assert checked >= 15
