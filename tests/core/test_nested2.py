"""Tests for two-level nested quantification (§6 future work)."""

from __future__ import annotations

import pytest

from repro.core import tuples as bt
from repro.core.nested2 import (
    Nested2Query,
    NestedExpression,
    Quantifier,
    brute_force_equivalent2,
    count_distinct_objects,
    enumerate_nested_objects,
)

A, E = Quantifier.FORALL, Quantifier.EXISTS


def expr(outer, inner, body=(), head=None):
    return NestedExpression(
        outer=outer, inner=inner, body=frozenset(body), head=head
    )


def obj(*subs):
    return frozenset(frozenset(bt.parse_tuple(t) for t in sub) for sub in subs)


class TestExpressionSemantics:
    def test_forall_exists_conjunction(self):
        # ∀s ∃t (x1x2): every sub-object has a tuple with both true.
        q = Nested2Query(2, {expr(A, E, body=[0, 1])})
        assert q.evaluate(obj(("11", "00"), ("11",)))
        assert not q.evaluate(obj(("11",), ("10", "01")))
        assert q.evaluate(obj())  # vacuous outer ∀

    def test_exists_forall_conjunction(self):
        # ∃s ∀t (x1): some sub-object is entirely x1-true (and non-empty).
        q = Nested2Query(2, {expr(E, A, body=[0])})
        assert q.evaluate(obj(("10", "11"), ("01",)))
        assert not q.evaluate(obj(("10", "01"),))
        # an empty sub-object is not a witness (guarantee-style semantics)
        assert not q.evaluate(obj(()))

    def test_forall_forall_horn(self):
        # ∀s ∀t (x1 → x2)
        q = Nested2Query(2, {expr(A, A, body=[0], head=1)})
        assert q.evaluate(obj(("11", "01"), ("00",)))
        assert not q.evaluate(obj(("11",), ("10",)))

    def test_exists_exists_horn_needs_witness(self):
        # ∃s ∃t (x1 → x2) ≡ its guarantee ∃s ∃t (x1 ∧ x2)
        q = Nested2Query(2, {expr(E, E, body=[0], head=1)})
        assert q.evaluate(obj(("11",)))
        assert not q.evaluate(obj(("01", "00"),))

    def test_bodyless_head(self):
        q = Nested2Query(1, {expr(A, A, head=0)})
        assert q.evaluate(obj(("1", "1")))
        assert not q.evaluate(obj(("1", "0")))

    def test_conjunction_of_expressions(self):
        q = Nested2Query(
            2, {expr(A, E, body=[0]), expr(E, A, body=[1])}
        )
        good = obj(("10", "01"), ("11", "01"))
        # every sub-object has an x1-tuple? sub2 has 11 ✓ sub1 has 10 ✓
        # some sub-object is all-x2? sub2: 11, 01 ✓
        assert q.evaluate(good)

    def test_validation(self):
        with pytest.raises(ValueError):
            NestedExpression(outer=A, inner=A)  # no body, no head
        with pytest.raises(ValueError):
            NestedExpression(outer=A, inner=A, body=frozenset({0}), head=0)
        with pytest.raises(ValueError):
            Nested2Query(1, {expr(A, A, body=[3])})

    def test_str_rendering(self):
        e = expr(A, E, body=[0, 1])
        assert str(e) == "∀s ∃t x1x2"
        assert "→x2" in str(expr(A, A, body=[0], head=1))


class TestEnumeration:
    def test_counts(self):
        # n=1: 2 tuples, 4 sub-objects, 2^4 = 16 objects
        objs = list(enumerate_nested_objects(1))
        assert len(objs) == 16

    def test_cap(self):
        objs = list(enumerate_nested_objects(1, max_subs=1))
        assert len(objs) == 1 + 4  # empty object + singletons

    def test_guard(self):
        with pytest.raises(ValueError):
            list(enumerate_nested_objects(3))

    def test_doubly_exponential_count(self):
        assert count_distinct_objects(1) == 4
        assert count_distinct_objects(2) == 16
        assert count_distinct_objects(3) == 256


class TestEquivalence:
    def test_equivalent_rewrites(self):
        # ∃s ∃t (x1→x2) is its guarantee ∃s ∃t (x1 ∧ x2)
        a = Nested2Query(2, {expr(E, E, body=[0], head=1)})
        b = Nested2Query(2, {expr(E, E, body=[0, 1])})
        assert brute_force_equivalent2(a, b)

    def test_inequivalent_quantifier_orders(self):
        # ∀s ∃t (x1) differs from ∃s ∀t (x1)
        a = Nested2Query(1, {expr(A, E, body=[0])})
        b = Nested2Query(1, {expr(E, A, body=[0])})
        assert not brute_force_equivalent2(a, b)

    def test_different_n_not_equivalent(self):
        a = Nested2Query(1, {expr(A, E, body=[0])})
        b = Nested2Query(2, {expr(A, E, body=[0])})
        assert not brute_force_equivalent2(a, b)
