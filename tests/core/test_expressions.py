"""Unit tests for universal Horn expressions and existential conjunctions."""

from __future__ import annotations

import pytest

from repro.core.expressions import (
    ExistentialConjunction,
    UniversalHorn,
    var_name,
    var_names,
)
from repro.core.tuples import Question, parse_tuple


class TestVarNames:
    def test_one_based_display(self):
        assert var_name(0) == "x1"
        assert var_name(11) == "x12"

    def test_var_names_sorted(self):
        assert var_names({2, 0}) == "x1x3"


class TestUniversalHorn:
    def test_str_matches_paper_shorthand(self):
        u = UniversalHorn(head=2, body=frozenset({0, 1}))
        assert str(u) == "∀x1x2→x3"

    def test_bodyless_str(self):
        assert str(UniversalHorn(head=3)) == "∀x4"

    def test_head_in_body_rejected(self):
        with pytest.raises(ValueError):
            UniversalHorn(head=0, body=frozenset({0, 1}))

    def test_negative_variable_rejected(self):
        with pytest.raises(ValueError):
            UniversalHorn(head=-1)

    def test_violated_by_body_true_head_false(self):
        u = UniversalHorn(head=2, body=frozenset({0, 1}))
        assert u.violated_by(parse_tuple("110"))
        assert not u.violated_by(parse_tuple("111"))
        assert not u.violated_by(parse_tuple("100"))  # body incomplete
        assert not u.violated_by(parse_tuple("000"))

    def test_bodyless_violated_whenever_head_false(self):
        u = UniversalHorn(head=0)
        assert u.violated_by(parse_tuple("011"))
        assert not u.violated_by(parse_tuple("100"))

    def test_holds_universally_over_question(self):
        u = UniversalHorn(head=2, body=frozenset({0, 1}))
        assert u.holds_universally(Question.from_strings("111", "001"))
        assert not u.holds_universally(Question.from_strings("111", "110"))

    def test_guarantee_clause(self):
        u = UniversalHorn(head=2, body=frozenset({0, 1}))
        assert u.guarantee().variables == {0, 1, 2}

    def test_dominance_rule_r2(self):
        small = UniversalHorn(head=3, body=frozenset({0}))
        big = UniversalHorn(head=3, body=frozenset({0, 1}))
        other_head = UniversalHorn(head=2, body=frozenset({0}))
        assert small.dominates(big)
        assert not big.dominates(small)
        assert small.dominates(small)
        assert not small.dominates(other_head)


class TestExistentialConjunction:
    def test_str(self):
        assert str(ExistentialConjunction({0, 2})) == "∃x1x3"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ExistentialConjunction(frozenset())

    def test_satisfied_by(self):
        e = ExistentialConjunction({0, 2})
        assert e.satisfied_by(parse_tuple("101"))
        assert e.satisfied_by(parse_tuple("111"))
        assert not e.satisfied_by(parse_tuple("100"))

    def test_holds_on_question(self):
        e = ExistentialConjunction({0, 1})
        assert e.holds_on(Question.from_strings("110", "001"))
        assert not e.holds_on(Question.from_strings("100", "010"))

    def test_dominance_rule_r1(self):
        big = ExistentialConjunction({0, 1, 2})
        small = ExistentialConjunction({0, 1})
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_hashable_and_equal(self):
        assert ExistentialConjunction({0, 1}) == ExistentialConjunction([1, 0])
