"""Unit tests for qhorn query semantics (§2.1)."""

from __future__ import annotations

import pytest

from repro.core.parser import parse_query
from repro.core.query import QhornQuery
from repro.core.tuples import Question


def q(text: str, n: int | None = None, **kw) -> QhornQuery:
    return parse_query(text, n=n, **kw)


class TestEvaluation:
    def test_paper_query_1(self):
        """§2: ∀c(p1) ∧ ∃c(p2 ∧ p3) on the Fig. 1 boxes."""
        query = q("∀x1 ∃x2x3")
        global_ground = Question.from_strings("111", "000", "110")
        europes_finest = Question.from_strings("100", "110")
        # Global Ground has a white chocolate (x1 false) -> non-answer.
        assert not query.evaluate(global_ground)
        # Europe's Finest is all dark but has no filled Madagascar one.
        assert not query.evaluate(europes_finest)
        # All-dark box with a filled Madagascar chocolate -> answer.
        assert query.evaluate(Question.from_strings("111", "110"))

    def test_universal_violation_rejects(self):
        query = q("∀x1x2→x3")
        assert not query.evaluate(Question.from_strings("110", "111"))

    def test_universal_with_guarantee(self):
        query = q("∀x1x2→x3")
        # ∀ holds vacuously but the guarantee clause ∃x1x2x3 has no witness.
        assert not query.evaluate(Question.from_strings("100", "010"))
        assert query.evaluate(Question.from_strings("111", "010"))

    def test_guarantee_relaxation_footnote_1(self):
        relaxed = q("∀x1x2→x3", require_guarantees=False)
        assert relaxed.evaluate(Question.from_strings("100", "010"))
        assert relaxed.evaluate(Question.of(3, []))  # the empty object

    def test_empty_object_is_non_answer_with_guarantees(self):
        assert not q("∀x1").evaluate(Question.of(1, []))
        assert not q("∃x1").evaluate(Question.of(1, []))

    def test_existential_conjunction_needs_single_witness(self):
        query = q("∃x1x2")
        # Both variables true somewhere but never together: non-answer.
        assert not query.evaluate(Question.from_strings("10", "01"))
        assert query.evaluate(Question.from_strings("11"))

    def test_all_true_object_satisfies_every_query(self):
        for text in ("∀x1", "∃x1x2", "∀x1x2→x3 ∃x2", "∀x1 ∀x2 ∀x3"):
            query = q(text, n=3)
            assert query.evaluate(query.all_true_question())

    def test_callable_sugar(self):
        query = q("∃x1")
        assert query(Question.from_strings("1"))

    def test_accepts_raw_iterable_of_masks(self):
        query = q("∃x1x2")
        assert query.evaluate({0b11})

    def test_theorem_21_instance(self):
        """Uni({x1,x3,x5}) ∧ Alias({x2,x4,x6}): only {1^6} and
        {1^6, 101010} are answers (§2, Thm 2.1)."""
        from repro.core.generators import uni_alias_query

        query = uni_alias_query(6, alias_vars=[1, 3, 5])
        assert query.evaluate(Question.from_strings("111111"))
        assert query.evaluate(Question.from_strings("111111", "101010"))
        # one alias variable diverging breaks the alias cycle
        assert not query.evaluate(Question.from_strings("111111", "101011"))
        assert not query.evaluate(Question.from_strings("111111", "100010"))
        # dropping the all-true tuple loses the Uni guarantees
        assert not query.evaluate(Question.from_strings("101010"))


class TestValidation:
    def test_variable_out_of_range(self):
        with pytest.raises(ValueError):
            QhornQuery.build(2, universals=[((0,), 5)])

    def test_n_must_be_positive(self):
        with pytest.raises(ValueError):
            QhornQuery(n=0)


class TestStructuralMeasures:
    def test_size_counts_expressions(self):
        query = q("∀x1x2→x3 ∀x4 ∃x5")
        assert query.size == 3

    def test_causal_density_counts_non_dominated_bodies(self):
        query = q("∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6")
        assert query.causal_density == 2

    def test_causal_density_ignores_dominated(self):
        query = q("∀x1→x3 ∀x1x2→x3")
        assert query.causal_density == 1

    def test_causal_density_zero_without_universals(self):
        assert q("∃x1x2").causal_density == 0

    def test_variable_sets(self):
        query = q("∀x1x2→x3 ∃x4")
        assert query.variables == {0, 1, 2, 3}
        assert query.head_variables == {2}
        assert query.universal_body_variables == {0, 1}


class TestClassMembership:
    def test_paper_role_preserving_example(self):
        query = q("∀x1x4→x5 ∀x3x4→x5 ∀x2x4→x6 ∃x1x2x3 ∃x1x2x5x6")
        assert query.is_role_preserving()

    def test_paper_non_role_preserving_example(self):
        query = q("∀x1x4→x5 ∀x2x3x5→x6")
        assert not query.is_role_preserving()

    def test_alias_queries_not_role_preserving(self):
        from repro.core.generators import uni_alias_query

        assert not uni_alias_query(4, [0, 1]).is_role_preserving()

    def test_qhorn1_fig2_example(self):
        # Fig. 2: ∀x1x2→x4, ∃x1x2→x5, ∃x3→x6 (existential Horn as conj).
        query = QhornQuery.build(
            6,
            universals=[((0, 1), 3)],
            existentials=[(0, 1, 4), (2, 5)],
        )
        assert query.is_qhorn1()
        assert query.is_role_preserving()

    def test_qhorn1_rejects_overlapping_bodies(self):
        query = q("∀x1x2→x3 ∀x2x4→x5")
        assert not query.is_qhorn1()

    def test_qhorn1_rejects_repeated_head(self):
        query = q("∀x1→x3 ∀x2→x3")
        assert not query.is_qhorn1()

    def test_qhorn1_accepts_shared_universal_existential_body(self):
        # ∀x1→x2 ∃x1x3 is ∃x1→x3 sharing body {x1}: valid qhorn-1 (Fig. 2).
        assert q("∀x1→x2 ∃x1x3").is_qhorn1()

    def test_qhorn1_rejects_variable_in_two_roles(self):
        # x2 sits inside the universal body {x1,x2} and in a conjunction
        # that is not body+fresh-head: a variable repetition.
        query = q("∀x1x2→x3 ∃x2x4")
        assert not query.is_qhorn1()

    def test_qhorn1_accepts_shared_body_multiple_heads(self):
        query = QhornQuery.build(
            4, universals=[((0, 1), 2)], existentials=[(0, 1, 3)]
        )
        assert query.is_qhorn1()

    def test_role_preserving_superset_of_qhorn1(self):
        query = q("∀x1x2→x3 ∀x1x4→x3 ∃x3x5")  # repetition allowed
        assert query.is_role_preserving()
        assert not query.is_qhorn1()


class TestPresentation:
    def test_shorthand_roundtrips_through_parser(self):
        query = q("∀x1x2→x3 ∀x4 ∃x5x6")
        again = parse_query(query.shorthand())
        assert again.universals == query.universals
        assert again.existentials == query.existentials

    def test_with_helpers(self):
        query = q("∃x1", n=2)
        assert (
            q("∃x1 ∀x2").universals == query.with_universal([], 1).universals
        )
        assert len(query.with_existential([1]).existentials) == 2
