"""Tests for JSON serialization of queries and questions."""

from __future__ import annotations

import json

import pytest

from repro.core.generators import paper_running_query, random_qhorn1
from repro.core.normalize import canonicalize
from repro.core.parser import parse_query
from repro.core.serialize import (
    query_from_dict,
    query_from_json,
    query_to_dict,
    query_to_json,
    question_from_dict,
    question_to_dict,
)
from repro.core.tuples import Question


class TestQueryRoundTrip:
    def test_paper_query(self):
        q = paper_running_query()
        again = query_from_json(query_to_json(q))
        assert canonicalize(again) == canonicalize(q)
        assert again.n == q.n

    def test_random_queries(self, rng):
        for _ in range(40):
            q = random_qhorn1(rng.randint(1, 10), rng)
            again = query_from_dict(query_to_dict(q))
            assert again.universals == q.universals
            assert again.existentials == q.existentials

    def test_wire_format_is_one_based(self):
        q = parse_query("∀x1→x2")
        data = query_to_dict(q)
        assert data["universals"] == [{"body": [1], "head": 2}]

    def test_shorthand_included_for_humans(self):
        data = query_to_dict(parse_query("∃x1x2"))
        assert data["shorthand"] == "∃x1x2"

    def test_guarantee_flag_preserved(self):
        q = parse_query("∀x1", require_guarantees=False)
        assert not query_from_dict(query_to_dict(q)).require_guarantees

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            query_from_dict({"format": "qhorn-query-v999", "n": 1})

    def test_json_is_stable(self):
        q = paper_running_query()
        assert query_to_json(q) == query_to_json(q)
        json.loads(query_to_json(q))  # valid JSON


class TestQuestionRoundTrip:
    def test_roundtrip(self):
        q = Question.from_strings("1011", "0100")
        again = question_from_dict(question_to_dict(q))
        assert again == q

    def test_wire_uses_paper_strings(self):
        q = Question.from_strings("10")
        assert question_to_dict(q)["tuples"] == ["10"]

    def test_empty_question(self):
        q = Question.of(3, [])
        assert question_from_dict(question_to_dict(q)) == q
