"""Unit tests for the Boolean tuple and question primitives."""

from __future__ import annotations

import pytest

from repro.core import tuples as bt
from repro.core.tuples import Question


class TestBitmaskHelpers:
    def test_all_true_has_n_bits(self):
        assert bt.all_true(1) == 0b1
        assert bt.all_true(4) == 0b1111
        assert bt.popcount(bt.all_true(17)) == 17

    def test_all_true_rejects_bad_n(self):
        with pytest.raises(ValueError):
            bt.all_true(0)
        with pytest.raises(ValueError):
            bt.all_true(bt.MAX_VARIABLES + 1)

    def test_mask_of_and_variables_of_roundtrip(self):
        vs = [0, 3, 5]
        assert sorted(bt.variables_of(bt.mask_of(vs))) == vs

    def test_mask_of_empty(self):
        assert bt.mask_of([]) == 0
        assert list(bt.variables_of(0)) == []

    def test_true_and_false_sets_partition(self):
        t = bt.parse_tuple("1011")
        assert bt.true_set(t) == {0, 2, 3}
        assert bt.false_set(t, 4) == {1}

    def test_with_false_clears_bits(self):
        t = bt.all_true(5)
        assert bt.true_set(bt.with_false(t, [1, 3])) == {0, 2, 4}

    def test_with_true_sets_bits(self):
        assert bt.true_set(bt.with_true(0, [2])) == {2}

    def test_with_false_idempotent(self):
        t = bt.with_false(bt.all_true(4), [2])
        assert bt.with_false(t, [2]) == t

    def test_is_subset(self):
        assert bt.is_subset(0b0010, 0b0110)
        assert not bt.is_subset(0b1010, 0b0110)
        assert bt.is_subset(0, 0b1)


class TestPaperStringConvention:
    """The paper writes tuples with x1 leftmost, e.g. 101010 in Thm 2.1."""

    def test_parse_x1_is_leftmost(self):
        t = bt.parse_tuple("100")
        assert bt.true_set(t) == {0}

    def test_format_roundtrip(self):
        for s in ("1011", "0000", "1111", "0101"):
            assert bt.format_tuple(bt.parse_tuple(s), 4) == s

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            bt.parse_tuple("10x1")


class TestQuestion:
    def test_from_strings(self):
        q = Question.from_strings("111", "011")
        assert q.n == 3
        assert q.size == 2

    def test_from_strings_rejects_ragged(self):
        with pytest.raises(ValueError):
            Question.from_strings("111", "01")

    def test_from_strings_requires_rows(self):
        with pytest.raises(ValueError):
            Question.from_strings()

    def test_out_of_range_tuple_rejected(self):
        with pytest.raises(ValueError):
            Question.of(2, [0b100])

    def test_duplicates_collapse(self):
        q = Question.of(3, [0b111, 0b111, 0b001])
        assert q.size == 2

    def test_sorted_tuples_by_popcount_descending(self):
        q = Question.from_strings("100", "111", "110")
        pops = [bt.popcount(t) for t in q.sorted_tuples()]
        assert pops == sorted(pops, reverse=True)

    def test_format_uses_paper_rows(self):
        q = Question.from_strings("110", "100")
        assert q.format().splitlines() == ["110", "100"]

    def test_container_protocol(self):
        q = Question.from_strings("10", "01")
        assert len(q) == 2
        assert bt.parse_tuple("10") in q
        assert set(q) == q.tuples

    def test_hashable_for_memoization(self):
        a = Question.from_strings("10", "01")
        b = Question.of(2, [0b01, 0b10])
        assert a == b and hash(a) == hash(b)

    def test_empty_question_allowed(self):
        # The footnote-1 relaxation needs the empty object to be askable.
        q = Question.of(3, [])
        assert q.size == 0
