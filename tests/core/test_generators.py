"""Unit tests for query generators and exhaustive enumeration."""

from __future__ import annotations

import random

import pytest

from repro.core.generators import (
    enumerate_role_preserving,
    head_pair_query,
    paper_running_query,
    random_general_qhorn,
    random_partition,
    random_qhorn1,
    random_role_preserving,
    theta_body_query,
    uni_alias_query,
)
from repro.core.normalize import canonicalize
from repro.core.tuples import Question


class TestRandomPartition:
    def test_partition_covers_items(self, rng):
        items = list(range(20))
        parts = random_partition(items, rng)
        flat = sorted(v for p in parts for v in p)
        assert flat == items

    def test_max_part_respected(self, rng):
        for _ in range(20):
            parts = random_partition(list(range(15)), rng, max_part=3)
            assert all(len(p) <= 3 for p in parts)


class TestRandomQhorn1:
    def test_generated_queries_are_qhorn1(self, rng):
        for _ in range(50):
            q = random_qhorn1(rng.randint(1, 12), rng)
            assert q.is_qhorn1(), q.shorthand()

    def test_uses_all_variables_by_default(self, rng):
        for _ in range(20):
            n = rng.randint(2, 10)
            q = random_qhorn1(n, rng)
            assert q.variables == set(range(n))

    def test_can_leave_variables_unused(self, rng):
        sizes = [
            len(random_qhorn1(10, rng, use_all_variables=False).variables)
            for _ in range(40)
        ]
        assert min(sizes) < 10

    def test_deterministic_given_seed(self):
        a = random_qhorn1(8, random.Random(9))
        b = random_qhorn1(8, random.Random(9))
        assert canonicalize(a) == canonicalize(b)


class TestRandomRolePreserving:
    def test_generated_queries_are_role_preserving(self, rng):
        for _ in range(50):
            q = random_role_preserving(rng.randint(2, 10), rng, theta=3)
            assert q.is_role_preserving(), q.shorthand()

    def test_theta_bound_respected(self, rng):
        for _ in range(30):
            q = random_role_preserving(rng.randint(4, 10), rng, theta=2)
            assert q.causal_density <= 2

    def test_rejects_tiny_n(self, rng):
        with pytest.raises(ValueError):
            random_role_preserving(1, rng)


class TestRandomGeneralQhorn:
    def test_generates_some_non_role_preserving(self, rng):
        found = any(
            not random_general_qhorn(5, rng).is_role_preserving()
            for _ in range(60)
        )
        assert found


class TestLowerBoundFamilies:
    def test_uni_alias_semantics(self):
        q = uni_alias_query(4, alias_vars=[1, 3])
        assert q.evaluate(Question.from_strings("1111"))
        assert q.evaluate(Question.from_strings("1111", "1010"))
        assert not q.evaluate(Question.from_strings("1111", "1000"))

    def test_uni_alias_empty_alias_is_pure_uni(self):
        q = uni_alias_query(3, alias_vars=[])
        assert len(q.universals) == 3
        assert q.evaluate(Question.from_strings("111"))
        assert not q.evaluate(Question.from_strings("110"))

    def test_uni_alias_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            uni_alias_query(3, alias_vars=[5])

    def test_head_pair_query_structure(self):
        q = head_pair_query(5, 1, 3)
        assert len(q.existentials) == 2
        confs = {frozenset(e.variables) for e in q.existentials}
        assert frozenset({0, 2, 4, 1}) in confs
        assert frozenset({0, 2, 4, 3}) in confs

    def test_head_pair_rejects_equal_heads(self):
        with pytest.raises(ValueError):
            head_pair_query(5, 2, 2)

    def test_theta_body_paper_instance(self):
        """The paper's n=12, θ=4 example instance of Thm 3.6."""
        q = theta_body_query(12, 4)
        assert len(q.universals) == 4
        sizes = sorted(len(u.body) for u in q.universals)
        assert sizes == [4, 4, 4, 9]
        assert q.causal_density == 4  # all four bodies incomparable
        assert q.is_role_preserving()

    def test_theta_body_validation(self):
        with pytest.raises(ValueError):
            theta_body_query(10, 4)  # 10 % 3 != 0
        with pytest.raises(ValueError):
            theta_body_query(10, 1)


class TestEnumeration:
    def test_two_variable_count_is_stable(self):
        queries = enumerate_role_preserving(2)
        # 11 semantically distinct non-trivial role-preserving queries on
        # two variables (Fig. 7 lists 7 of them up to variable symmetry).
        assert len(queries) == 11
        forms = {canonicalize(q) for q in queries}
        assert len(forms) == len(queries)

    def test_trivial_query_flag(self):
        with_trivial = enumerate_role_preserving(2, include_trivial=True)
        assert len(with_trivial) == 12

    def test_all_enumerated_are_role_preserving(self):
        for q in enumerate_role_preserving(2):
            assert q.is_role_preserving()

    def test_pairwise_semantically_distinct_n2(self):
        from repro.core.normalize import brute_force_equivalent

        queries = enumerate_role_preserving(2)
        for i, a in enumerate(queries):
            for b in queries[i + 1 :]:
                assert not brute_force_equivalent(a, b)

    def test_three_variable_enumeration_runs(self):
        queries = enumerate_role_preserving(3)
        # 82 semantically distinct non-trivial role-preserving queries on
        # three variables (stable under the canonical-form dedup).
        assert len(queries) == 82
        forms = {canonicalize(q) for q in queries}
        assert len(forms) == len(queries)

    def test_n_too_large_rejected(self):
        with pytest.raises(ValueError):
            enumerate_role_preserving(4)


class TestPaperRunningQuery:
    def test_shape(self):
        q = paper_running_query()
        assert q.n == 6
        assert len(q.universals) == 3
        assert len(q.existentials) == 4
        assert q.is_role_preserving()
        assert q.causal_density == 2
