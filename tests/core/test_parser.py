"""Unit tests for the query shorthand parser."""

from __future__ import annotations

import pytest

from repro.core.expressions import ExistentialConjunction, UniversalHorn
from repro.core.parser import ParseError, parse_query


class TestBasicForms:
    def test_paper_shorthand(self):
        q = parse_query("∀x1x2→x3 ∀x4 ∃x5")
        assert UniversalHorn(head=2, body=frozenset({0, 1})) in q.universals
        assert UniversalHorn(head=3) in q.universals
        assert ExistentialConjunction({4}) in q.existentials
        assert q.n == 5

    def test_ascii_arrow_variants(self):
        for text in ("A x1 x2 -> x3", "forall x1x2 => x3", "∀x1x2→x3"):
            q = parse_query(text)
            assert q.universals == {
                UniversalHorn(head=2, body=frozenset({0, 1}))
            }

    def test_ascii_existential(self):
        q = parse_query("E x1 x2")
        assert q.existentials == {ExistentialConjunction({0, 1})}

    def test_exists_keyword(self):
        q = parse_query("exists x2 x3")
        assert q.existentials == {ExistentialConjunction({1, 2})}

    def test_existential_horn_rewritten_to_guarantee(self):
        # ∃x1x2→x3 is its guarantee conjunction ∃x1x2x3 (§2.1.4)
        q = parse_query("∃x1x2→x3")
        assert q.existentials == {ExistentialConjunction({0, 1, 2})}
        assert not q.universals

    def test_bare_universal_multiple_vars_splits(self):
        q = parse_query("∀x1x2")
        assert q.universals == {UniversalHorn(head=0), UniversalHorn(head=1)}

    def test_separators_tolerated(self):
        q = parse_query("∀x1→x2 ∧ ∃x3; ∃x4 & ∀x5")
        assert q.size == 4


class TestNAndErrors:
    def test_explicit_n_pads_variables(self):
        q = parse_query("∃x1", n=4)
        assert q.n == 4

    def test_n_too_small_rejected(self):
        with pytest.raises(ParseError):
            parse_query("∃x5", n=3)

    def test_default_n_is_max_index(self):
        assert parse_query("∃x7").n == 7

    def test_two_heads_rejected(self):
        with pytest.raises(ParseError):
            parse_query("∀x1→x2 x3")  # trailing garbage after head

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_query("   ")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("select * from boxes")

    def test_x0_rejected(self):
        with pytest.raises(ParseError):
            parse_query("∃x0")

    def test_guarantee_flag_forwarded(self):
        q = parse_query("∀x1", require_guarantees=False)
        assert not q.require_guarantees


class TestRoundTrip:
    def test_shorthand_roundtrip(self):
        texts = [
            "∀x1x2→x3 ∀x4 ∃x5",
            "∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4",
            "∃x1",
        ]
        for text in texts:
            q = parse_query(text)
            q2 = parse_query(q.shorthand())
            assert q.universals == q2.universals
            assert q.existentials == q2.existentials
