"""Tests for the sqlite-backed :class:`PersistentCachingOracle`.

Two contracts: exact statistics parity with the in-memory
``CachingOracle(maxsize=None)`` on identical fresh state, and cross-session
persistence — a reopened cache serves previously answered questions without
touching the inner oracle.
"""

from __future__ import annotations

import random

import pytest

from repro.core.parser import parse_query
from repro.core.tuples import Question
from repro.oracle import CachingOracle, PersistentCachingOracle, QueryOracle


class _CountingInner:
    """Inner oracle tallying every call that reaches it."""

    def __init__(self, target):
        self._oracle = QueryOracle(target)
        self.n = self._oracle.n
        self.asks = 0
        self.batches: list[int] = []

    def ask(self, question):
        self.asks += 1
        return self._oracle.ask(question)

    def ask_many(self, questions):
        self.batches.append(len(questions))
        return self._oracle.ask_many(questions)


def _random_questions(count, n=3, seed=13):
    rng = random.Random(seed)
    return [
        Question.of(n, [rng.randrange(1 << n) for _ in range(rng.randint(0, 3))])
        for _ in range(count)
    ]


TARGET = "∀x1 ∃x2x3"


class TestStatsParity:
    def _drive(self, oracle, questions):
        """A mixed workload: single asks, batches, duplicate-heavy batches."""
        responses = []
        responses.append(oracle.ask(questions[0]))
        responses.extend(oracle.ask_many(questions[:10]))
        responses.extend(oracle.ask_many(questions))
        responses.append(oracle.ask(questions[3]))
        doubled = questions[:6] * 3
        responses.extend(oracle.ask_many(doubled))
        return responses

    def test_exact_parity_with_inmemory_unbounded_cache(self, tmp_path):
        questions = _random_questions(40)
        target = parse_query(TARGET)
        memory = CachingOracle(QueryOracle(target), maxsize=None)
        disk_inner = _CountingInner(target)
        with PersistentCachingOracle(
            disk_inner, tmp_path / "cache.sqlite"
        ) as disk:
            mem_out = self._drive(memory, questions)
            disk_out = self._drive(disk, questions)
            assert disk_out == mem_out
            assert disk.stats.hits == memory.stats.hits
            assert disk.stats.misses == memory.stats.misses
            assert disk.stats.evictions == memory.stats.evictions == 0
            assert (
                disk.stats.resident_histogram
                == memory.stats.resident_histogram
            )
            assert disk.stats.questions == memory.stats.questions
            assert disk.stats.hit_rate == memory.stats.hit_rate
            assert len(disk) == len(memory)

    def test_duplicate_of_uncached_is_hit_from_second_occurrence(self, tmp_path):
        q = Question.from_strings("111")
        inner = _CountingInner(parse_query(TARGET))
        with PersistentCachingOracle(inner, tmp_path / "c.sqlite") as oracle:
            assert oracle.ask_many([q, q, q]) == [True, True, True]
            assert oracle.stats.misses == 1
            assert oracle.stats.hits == 2
            assert inner.batches == [1]


class TestPersistence:
    def test_reopen_serves_answers_without_inner_calls(self, tmp_path):
        path = tmp_path / "session.sqlite"
        questions = _random_questions(30, seed=5)
        target = parse_query(TARGET)

        first_inner = _CountingInner(target)
        with PersistentCachingOracle(first_inner, path) as first:
            answers = first.ask_many(questions)
            distinct = len(set(questions))
            assert first.stats.misses == distinct

        second_inner = _CountingInner(target)
        with PersistentCachingOracle(second_inner, path) as second:
            # Eviction-free load: everything answered before is resident.
            assert len(second) == distinct
            hist = {}
            for q in set(questions):
                hist[q.size] = hist.get(q.size, 0) + 1
            assert second.stats.resident_histogram == hist
            assert second.ask_many(questions) == answers
            assert second.stats.misses == 0
            assert second.stats.hits == len(questions)
            assert second_inner.asks == 0 and second_inner.batches == []

    def test_single_ask_is_durable(self, tmp_path):
        path = tmp_path / "one.sqlite"
        q = Question.from_strings("101", "010")
        target = parse_query(TARGET)
        with PersistentCachingOracle(_CountingInner(target), path) as oracle:
            response = oracle.ask(q)
        reopened_inner = _CountingInner(target)
        with PersistentCachingOracle(reopened_inner, path) as oracle:
            assert oracle.ask(q) is response
            assert reopened_inner.asks == 0

    def test_widths_do_not_cross_contaminate(self, tmp_path):
        path = tmp_path / "mixed.sqlite"
        with PersistentCachingOracle(
            QueryOracle(parse_query("∃x1", n=2)), path
        ) as narrow:
            narrow.ask(Question.of(2, [3]))
        with PersistentCachingOracle(
            QueryOracle(parse_query("∃x1x2x3")), path
        ) as wide:
            assert len(wide) == 0  # only n=3 rows load
            wide.ask(Question.of(3, [7]))
            assert len(wide) == 1
        with PersistentCachingOracle(
            QueryOracle(parse_query("∃x1", n=2)), path
        ) as narrow_again:
            assert len(narrow_again) == 1

    def test_clear_wipes_disk_too(self, tmp_path):
        path = tmp_path / "wipe.sqlite"
        target = parse_query(TARGET)
        q = Question.from_strings("111")
        with PersistentCachingOracle(_CountingInner(target), path) as oracle:
            oracle.ask(q)
            assert q in oracle
            oracle.clear()
            assert q not in oracle and len(oracle) == 0
            assert oracle.stats.misses == 1  # statistics survive clear
        fresh_inner = _CountingInner(target)
        with PersistentCachingOracle(fresh_inner, path) as oracle:
            assert len(oracle) == 0
            oracle.ask(q)
            assert fresh_inner.asks == 1

    def test_reset_stats_keeps_resident(self, tmp_path):
        with PersistentCachingOracle(
            QueryOracle(parse_query(TARGET)), tmp_path / "r.sqlite"
        ) as oracle:
            oracle.ask_many(_random_questions(10, seed=3))
            resident = len(oracle)
            oracle.reset_stats()
            assert oracle.stats.questions == 0
            assert sum(oracle.stats.resident_histogram.values()) == resident


class TestEmptyQuestion:
    def test_empty_tuple_set_round_trips(self, tmp_path):
        """The empty question serializes to an empty tuples string and must
        survive the disk round trip."""
        path = tmp_path / "empty.sqlite"
        relaxed = parse_query("∀x1", n=2, require_guarantees=False)
        empty = Question.of(2, [])
        with PersistentCachingOracle(QueryOracle(relaxed), path) as oracle:
            first = oracle.ask(empty)
        inner = _CountingInner(relaxed)
        with PersistentCachingOracle(inner, path) as oracle:
            assert oracle.ask(empty) is first
            assert inner.asks == 0


class TestWidthValidation:
    def test_wrong_width_rejected_before_touching_disk(self, tmp_path):
        """A wrong-width question must never reach the cache or the disk —
        persisted under this oracle's n it would decode as a *different*
        question next session."""
        path = tmp_path / "width.sqlite"
        inner = _CountingInner(parse_query(TARGET))
        with PersistentCachingOracle(inner, path) as oracle:
            wide = Question.of(5, [31])
            with pytest.raises(ValueError, match="n=5"):
                oracle.ask(wide)
            with pytest.raises(ValueError, match="n=5"):
                oracle.ask_many([Question.of(3, [7]), wide])
            # Atomic batch: nothing recorded, nothing persisted.
            assert len(oracle) == 0
            assert oracle.stats.questions == 0
            assert inner.asks == 0 and inner.batches == []
        with PersistentCachingOracle(
            _CountingInner(parse_query(TARGET)), path
        ) as reopened:
            assert len(reopened) == 0
