"""The sharded backend's worker-pool mode (DESIGN.md §2d).

Covers the integration the pool exists for: ``processes=`` /
``backend_options={"processes": N}`` evaluation agreeing with the
serial backends, the relation-version invalidation broadcast, shared
caller-owned pools with automatic re-ship on displacement, and the
lifecycle contract (close/context manager, crash recovery).
"""

from __future__ import annotations

import random

import pytest

from repro.data import QueryEngine
from repro.data.backends import create_backend
from repro.data.chocolate import (
    intro_query,
    random_store,
    storefront_vocabulary,
)
from repro.data.relation import NestedObject
from repro.parallel import ShardWorkerPool, WorkerCrashError


@pytest.fixture(scope="module")
def vocab():
    return storefront_vocabulary()


@pytest.fixture()
def store(vocab):
    return random_store(400, random.Random(2401))


@pytest.fixture()
def reference(store, vocab):
    return create_backend("bitmask", store, vocab)


def _clone_row(store):
    return dict(store.objects[0].rows[0])


class TestPoolEvaluation:
    def test_agrees_with_reference(self, store, vocab, reference):
        with create_backend(
            "sharded", store, vocab, shard_size=64, processes=2
        ) as backend:
            query = intro_query()
            assert backend.matching_bits(query) == reference.matching_bits(query)
            assert [o.key for o in backend.execute(query)] == [
                o.key for o in reference.execute(query)
            ]
            assert backend.matches_many(query) == reference.matches_many(query)

    def test_explicit_objects_and_foreign_fallback(self, store, vocab):
        with create_backend(
            "sharded", store, vocab, shard_size=64, processes=2
        ) as backend:
            serial = create_backend("sharded", store, vocab, shard_size=64)
            foreign = NestedObject(key="foreign", rows=[_clone_row(store)])
            objects = [store.objects[3], foreign, store.objects[0]]
            query = intro_query()
            assert backend.matches_many(query, objects) == serial.matches_many(
                query, objects
            )

    def test_engine_backend_options_thread_through(self, store, vocab):
        engine = QueryEngine(
            store,
            vocab,
            backend="sharded",
            backend_options={"processes": 2, "shard_size": 64},
        )
        try:
            assert engine.execute_batch(intro_query()) == engine.execute(
                intro_query()
            )
            assert "process pool" in engine.backend.describe() or (
                "2-process" in engine.backend.describe()
            )
        finally:
            engine.backend.close()

    def test_empty_relation(self, vocab):
        from repro.data.relation import NestedRelation
        from repro.data.schema import NestedSchema

        empty = NestedRelation(NestedSchema("empty", vocab.schema))
        with create_backend(
            "sharded", empty, vocab, processes=2
        ) as backend:
            assert backend.execute(intro_query()) == []
            assert backend.matches_many(intro_query()) == []


class TestInvalidationBroadcast:
    def test_insert_reaches_workers(self, store, vocab):
        with create_backend(
            "sharded", store, vocab, shard_size=64, processes=2
        ) as backend:
            query = intro_query()
            before = backend.matches_many(query)
            assert len(before) == len(store)
            store.insert(NestedObject(key="late", rows=[_clone_row(store)]))
            after = backend.matches_many(query)
            assert len(after) == len(store)
            fresh = create_backend("bitmask", store, vocab)
            assert after == fresh.matches_many(query)

    def test_manual_refresh_reships(self, store, vocab):
        with create_backend(
            "sharded",
            store,
            vocab,
            shard_size=64,
            processes=2,
            auto_refresh=False,
        ) as backend:
            query = intro_query()
            backend.matches_many(query)
            shipped_before = backend._shipped_token
            store.insert(NestedObject(key="late", rows=[_clone_row(store)]))
            assert backend.is_stale
            assert backend.refresh() is True
            after = backend.matches_many(query)
            assert backend._shipped_token != shipped_before
            assert after == create_backend(
                "bitmask", store, vocab
            ).matches_many(query)


class TestSharedPool:
    def test_two_backends_displace_and_reship(self, vocab):
        store_a = random_store(300, random.Random(11))
        store_b = random_store(200, random.Random(12))
        query = intro_query()
        expected_a = create_backend("bitmask", store_a, vocab).matches_many(query)
        expected_b = create_backend("bitmask", store_b, vocab).matches_many(query)
        with ShardWorkerPool(2) as pool:
            a = create_backend(
                "sharded", store_a, vocab, shard_size=64, pool=pool
            )
            b = create_backend(
                "sharded", store_b, vocab, shard_size=64, pool=pool
            )
            # Interleaved evaluations: each call displaces the other's
            # worker state, exercising the stale-retry re-ship path.
            assert a.matches_many(query) == expected_a
            assert b.matches_many(query) == expected_b
            assert a.matches_many(query) == expected_a
            assert b.matches_many(query) == expected_b
        assert pool.closed

    def test_backend_close_leaves_injected_pool_open(self, store, vocab):
        with ShardWorkerPool(1) as pool:
            backend = create_backend("sharded", store, vocab, pool=pool)
            backend.matches_many(intro_query())
            backend.close()
            assert not pool.closed
            assert pool.ping() == [None]

    def test_closed_injected_pool_raises(self, store, vocab):
        pool = ShardWorkerPool(1)
        backend = create_backend("sharded", store, vocab, pool=pool)
        pool.close()
        with pytest.raises(RuntimeError, match="injected worker pool"):
            backend.matches_many(intro_query())


class TestLifecycle:
    def test_conflicting_modes_rejected(self, store, vocab):
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(1) as executor:
            with pytest.raises(ValueError, match="at most one"):
                create_backend(
                    "sharded", store, vocab, executor=executor, processes=2
                )

    def test_invalid_process_count_rejected(self, store, vocab):
        with pytest.raises(ValueError, match="processes"):
            create_backend("sharded", store, vocab, processes=-1)

    def test_double_close_is_noop(self, store, vocab):
        backend = create_backend("sharded", store, vocab, processes=1)
        backend.matches_many(intro_query())
        backend.close()
        backend.close()

    def test_closed_backend_rejects_pool_evaluation(self, store, vocab):
        backend = create_backend("sharded", store, vocab, processes=1)
        backend.matches_many(intro_query())
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            backend.matches_many(intro_query())

    def test_crash_recovery_builds_fresh_owned_pool(self, store, vocab):
        backend = create_backend(
            "sharded", store, vocab, shard_size=64, processes=2
        )
        try:
            expected = backend.matches_many(intro_query())
            backend._lease.pool._send(0, ("abort",))
            with pytest.raises(WorkerCrashError):
                backend.matches_many(intro_query())
            # The owned pool is rebuilt and re-shipped on the next call.
            assert backend.matches_many(intro_query()) == expected
        finally:
            backend.close()

    def test_lazy_pool_creation(self, store, vocab):
        backend = create_backend("sharded", store, vocab, processes=2)
        assert backend._lease.pool is None  # no workers until first call
        backend.close()
