"""Unit and failure-path tests for :class:`ShardWorkerPool`.

The satellite contract for the pool's failure modes (ISSUE 4):

* a worker crash mid-batch raises :class:`WorkerCrashError` cleanly (no
  hang, no garbage answers) and breaks the pool;
* ``close()`` twice is a no-op, as is closing an already-crashed pool;
* evaluating against a retired state token raises
  :class:`StaleShardStateError` (the worker-side freshness safety net),
  and the pool stays usable afterwards.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.tuples import Question
from repro.data.backends import create_backend
from repro.data.chocolate import (
    intro_query,
    random_store,
    storefront_vocabulary,
)
from repro.oracle import QueryOracle
from repro.parallel import (
    ShardWorkerPool,
    StaleShardStateError,
    WorkerCrashError,
    WorkerTaskError,
    resolve_processes,
    shard_payloads,
)


@pytest.fixture(scope="module")
def vocab():
    return storefront_vocabulary()


@pytest.fixture(scope="module")
def store(vocab):
    return random_store(600, random.Random(2400))


@pytest.fixture(scope="module")
def built_shards(store, vocab):
    backend = create_backend("sharded", store, vocab, shard_size=100)
    backend.refresh(force=True)
    return backend._shards


@pytest.fixture()
def pool():
    with ShardWorkerPool(2) as p:
        yield p


def _questions(n_questions: int) -> list[Question]:
    rng = random.Random(77)
    return [
        Question.of(4, [rng.randrange(16) for _ in range(rng.randint(1, 4))])
        for _ in range(n_questions)
    ]


class TestLifecycle:
    def test_worker_count_and_repr(self, pool):
        assert pool.processes == 2
        assert not pool.closed
        assert "2 workers" in repr(pool)

    def test_zero_means_cpu_count(self):
        assert resolve_processes(0) == (os.cpu_count() or 1)
        assert resolve_processes(3) == 3
        with pytest.raises(ValueError):
            resolve_processes(-1)

    def test_ping_round_trips_every_worker(self, pool):
        assert pool.ping("hello") == ["hello", "hello"]

    def test_double_close_is_noop(self):
        pool = ShardWorkerPool(2)
        pool.close()
        assert pool.closed
        pool.close()  # second close: no error, no effect
        assert pool.closed

    def test_closed_pool_rejects_requests(self):
        pool = ShardWorkerPool(1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.ping()
        with pytest.raises(RuntimeError, match="closed"):
            pool.load_shards([])

    def test_context_manager_closes(self):
        with ShardWorkerPool(1) as pool:
            assert not pool.closed
        assert pool.closed


class TestShardEvaluation:
    def test_bits_match_serial_kernel(self, pool, built_shards, store, vocab):
        serial = create_backend("sharded", store, vocab, shard_size=100)
        token = pool.load_shards(shard_payloads(built_shards))
        compiled = intro_query().compile()
        bits = 0
        for offset, shard_bits in pool.evaluate_bits(token, compiled):
            bits |= shard_bits << offset
        assert bits == serial.matching_bits(intro_query())

    def test_labels_match_serial_extraction(
        self, pool, built_shards, store, vocab
    ):
        serial = create_backend("sharded", store, vocab, shard_size=100)
        token = pool.load_shards(shard_payloads(built_shards))
        labels: list[bool] = []
        for _offset, shard_labels in pool.evaluate_labels(
            token, intro_query().compile()
        ):
            labels.extend(shard_labels)
        assert labels == serial.matches_many(intro_query())

    def test_replies_arrive_in_shard_order(self, pool, built_shards):
        token = pool.load_shards(shard_payloads(built_shards))
        pairs = pool.evaluate_bits(token, intro_query().compile())
        assert [offset for offset, _ in pairs] == sorted(
            s.offset for s in built_shards
        )

    def test_empty_load_evaluates_to_nothing(self, pool):
        token = pool.load_shards([])
        assert pool.evaluate_bits(token, intro_query().compile()) == []


class TestStaleState:
    def test_retired_token_raises(self, pool, built_shards):
        first = pool.load_shards(shard_payloads(built_shards))
        second = pool.load_shards(shard_payloads(built_shards[:2]))
        with pytest.raises(StaleShardStateError) as excinfo:
            pool.evaluate_bits(first, intro_query().compile())
        assert excinfo.value.expected == first
        assert excinfo.value.held == second
        assert "refresh" in str(excinfo.value)

    def test_pool_survives_stale_error(self, pool, built_shards):
        """A stale reply must not desynchronize any worker pipe."""
        token = pool.load_shards(shard_payloads(built_shards))
        with pytest.raises(StaleShardStateError):
            pool.evaluate_bits(token + 1000, intro_query().compile())
        assert pool.evaluate_bits(token, intro_query().compile())
        assert pool.ping(42) == [42, 42]


class TestOracleDispatch:
    def test_chunk_answers_in_submission_order(self, pool):
        oracle = QueryOracle(intro_query())
        questions = _questions(100)
        pool.set_oracle(5, oracle)
        chunks = [questions[i : i + 9] for i in range(0, 100, 9)]
        answers = [a for chunk in pool.ask_chunks(5, chunks) for a in chunk]
        assert answers == [oracle.ask(q) for q in questions]

    def test_more_chunks_than_workers(self, pool):
        oracle = QueryOracle(intro_query())
        questions = _questions(30)
        pool.set_oracle(6, oracle)
        chunks = [[q] for q in questions]  # 30 waves of singleton chunks
        answers = [a for chunk in pool.ask_chunks(6, chunks) for a in chunk]
        assert answers == [oracle.ask(q) for q in questions]

    def test_unknown_oracle_token_raises_cleanly(self, pool):
        with pytest.raises(WorkerTaskError, match="no oracle shipped"):
            pool.ask_chunks(999, [_questions(3)])
        assert pool.ping() == [None, None]  # pipes still synchronized

    def test_dropped_oracle_is_gone(self, pool):
        pool.set_oracle(7, QueryOracle(intro_query()))
        pool.drop_oracle(7)
        with pytest.raises(WorkerTaskError, match="no oracle shipped"):
            pool.ask_chunks(7, [_questions(2)])

    def test_worker_error_carries_remote_traceback(self, pool):
        pool.set_oracle(8, QueryOracle(intro_query()))
        wrong_width = [Question.of(9, [0])]
        with pytest.raises(WorkerTaskError) as excinfo:
            pool.ask_chunks(8, [wrong_width])
        assert excinfo.value.type_name == "ValueError"
        assert "Traceback" in excinfo.value.remote_traceback


class TestWorkerCrash:
    def test_crash_mid_batch_raises_cleanly(self, built_shards):
        with ShardWorkerPool(2) as pool:
            token = pool.load_shards(shard_payloads(built_shards))
            pool._send(0, ("abort",))  # worker 0 dies without replying
            with pytest.raises(WorkerCrashError, match="died mid-request"):
                pool.evaluate_bits(token, intro_query().compile())
            assert pool.closed  # a crash breaks the whole pool

    def test_crash_during_oracle_dispatch(self):
        with ShardWorkerPool(2) as pool:
            pool.set_oracle(1, QueryOracle(intro_query()))
            pool._send(1, ("abort",))
            chunks = [_questions(4) for _ in range(6)]
            with pytest.raises(WorkerCrashError):
                pool.ask_chunks(1, chunks)
            assert pool.closed

    def test_close_after_crash_is_noop(self):
        pool = ShardWorkerPool(1)
        pool._send(0, ("abort",))
        with pytest.raises(WorkerCrashError):
            pool.ping()
        pool.close()  # already closed by the crash: no error
        assert pool.closed
