"""`ParallelOracle`: chunked dispatch with sequential equivalence.

The wrapper's whole contract is that parallel dispatch is unobservable:
answers, wrapper statistics and seeded noise draws on top of it are
bit-identical to the sequential path (DESIGN.md §2b/§2d).  The heavier
seeded sweeps live in ``tests/properties/test_prop_parallel.py``; this
module covers the behavioural corners — local small-batch answering,
factory shipping, pool sharing, crash handling and lifecycle.
"""

from __future__ import annotations

import functools
import os
import random

import pytest

from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.oracle import (
    CountingOracle,
    ParallelOracle,
    QueryOracle,
    SqlQueryOracle,
    ask_all,
)
from repro.parallel import ShardWorkerPool, WorkerCrashError

N = 5


def _target() -> QhornQuery:
    return QhornQuery.build(
        N, universals=[((0, 1), 2), ((), 3)], existentials=[(3, 4)]
    )


def _questions(count: int, seed: int = 1) -> list[Question]:
    rng = random.Random(seed)
    return [
        Question.of(
            N, [rng.randrange(1 << N) for _ in range(rng.randint(1, 4))]
        )
        for _ in range(count)
    ]


def _crash(question: Question) -> bool:  # pragma: no cover - runs in worker
    os._exit(1)


@pytest.fixture(scope="module")
def pool():
    with ShardWorkerPool(2) as p:
        yield p


class TestEquivalence:
    def test_multi_chunk_answers_identical(self, pool):
        questions = _questions(120)
        sequential = [QueryOracle(_target()).ask(q) for q in questions]
        oracle = ParallelOracle(
            QueryOracle(_target()), pool=pool, chunk_size=7
        )
        assert oracle.ask_many(questions) == sequential
        oracle.close()

    def test_ask_all_integration(self, pool):
        questions = _questions(60, seed=2)
        oracle = ParallelOracle(
            QueryOracle(_target()), pool=pool, chunk_size=11
        )
        assert ask_all(oracle, questions) == [
            QueryOracle(_target()).ask(q) for q in questions
        ]
        oracle.close()

    def test_single_chunk_answers_locally(self):
        # A batch within one chunk must not spin up workers at all.
        oracle = ParallelOracle(
            QueryOracle(_target()), processes=2, chunk_size=64
        )
        questions = _questions(30, seed=3)
        assert oracle.ask_many(questions) == [
            QueryOracle(_target()).ask(q) for q in questions
        ]
        assert oracle._lease.pool is None
        oracle.close()

    def test_ask_is_local(self, pool):
        oracle = ParallelOracle(QueryOracle(_target()), pool=pool)
        (question,) = _questions(1, seed=4)
        assert oracle.ask(question) == QueryOracle(_target()).ask(question)
        oracle.close()

    def test_counting_stats_bit_identical(self, pool):
        questions = _questions(90, seed=5)
        sequential = CountingOracle(QueryOracle(_target()))
        sequential_answers = sequential.ask_many(questions)
        parallel_inner = ParallelOracle(
            QueryOracle(_target()), pool=pool, chunk_size=13
        )
        parallel = CountingOracle(parallel_inner)
        assert parallel.ask_many(questions) == sequential_answers
        assert parallel.stats == sequential.stats
        parallel_inner.close()

    def test_sql_factory_constructs_per_worker(self, pool):
        questions = _questions(50, seed=6)
        oracle = ParallelOracle(
            factory=functools.partial(SqlQueryOracle, _target()),
            pool=pool,
            chunk_size=9,
        )
        assert oracle.ask_many(questions) == [
            QueryOracle(_target()).ask(q) for q in questions
        ]
        oracle.close()


class TestConstruction:
    def test_exactly_one_of_inner_and_factory(self):
        with pytest.raises(ValueError, match="exactly one"):
            ParallelOracle()
        with pytest.raises(ValueError, match="exactly one"):
            ParallelOracle(
                QueryOracle(_target()),
                factory=functools.partial(QueryOracle, _target()),
            )

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelOracle(QueryOracle(_target()), chunk_size=0)

    def test_process_count_validated(self):
        with pytest.raises(ValueError, match="processes"):
            ParallelOracle(QueryOracle(_target()), processes=-2)

    def test_width_comes_from_inner(self):
        oracle = ParallelOracle(QueryOracle(_target()))
        assert oracle.n == N
        oracle.close()


class TestLifecycle:
    def test_double_close_is_noop(self):
        oracle = ParallelOracle(QueryOracle(_target()), processes=1)
        oracle.close()
        oracle.close()

    def test_context_manager(self):
        questions = _questions(40, seed=7)
        with ParallelOracle(
            QueryOracle(_target()), processes=2, chunk_size=5
        ) as oracle:
            oracle.ask_many(questions)
            owned = oracle._lease.pool
            assert owned is not None
        assert owned.closed

    def test_close_on_shared_pool_drops_only_its_oracle(self, pool):
        questions = _questions(40, seed=8)
        oracle = ParallelOracle(
            QueryOracle(_target()), pool=pool, chunk_size=5
        )
        oracle.ask_many(questions)
        oracle.close()
        assert not pool.closed
        assert pool.ping() == [None, None]

    def test_closed_oracle_rejects_dispatch(self):
        oracle = ParallelOracle(
            QueryOracle(_target()), processes=1, chunk_size=5
        )
        oracle.close()
        with pytest.raises(RuntimeError, match="closed"):
            oracle.ask_many(_questions(20, seed=9))

    def test_worker_crash_raises_cleanly_and_recovers(self):
        """A crash mid-batch surfaces as WorkerCrashError; the next batch
        runs on a fresh owned pool."""
        from repro.oracle import FunctionOracle

        questions = _questions(40, seed=10)
        oracle = ParallelOracle(
            FunctionOracle(N, _crash), processes=2, chunk_size=5
        )
        with pytest.raises(WorkerCrashError):
            oracle.ask_many(questions)
        # Swap the worker-side oracle for a healthy one and go again.
        healthy = ParallelOracle(
            QueryOracle(_target()), processes=2, chunk_size=5
        )
        assert healthy.ask_many(questions) == [
            QueryOracle(_target()).ask(q) for q in questions
        ]
        healthy.close()
        oracle.close()
