"""The parallel-ingest path: raw shard rows abstracted worker-side.

``ShardedBitmaskBackend`` in pool mode defaults to ``ingest="raw"``:
the coordinator ships each shard's raw rows plus the vocabulary
(``build_shards``) and the workers run the abstraction themselves.
These tests pin the property that makes that ingest mode safe to
default: the worker-side build is **bit-identical** to a coordinator
build — same shard offsets/counts, same inverted indexes, same
``all_bits`` — observed through the pool's ``dump_shards``
introspection, across kernels, relation versions, stale displacement
and worker crashes mid-build.
"""

from __future__ import annotations

import random

import pytest

from repro.data.backends import create_backend
from repro.data.chocolate import (
    intro_query,
    random_store,
    storefront_vocabulary,
)
from repro.data.relation import NestedObject
from repro.parallel import (
    ShardWorkerPool,
    StaleShardStateError,
    WorkerCrashError,
    shard_payloads,
)


@pytest.fixture(scope="module")
def vocab():
    return storefront_vocabulary()


@pytest.fixture()
def store(vocab):
    return random_store(250, random.Random(77))


def _coordinator_payloads(store, vocab, shard_size):
    """The wire form of a coordinator-side (``ingest="built"``) build."""
    serial = create_backend("sharded", store, vocab, shard_size=shard_size)
    serial.refresh(force=True)
    return shard_payloads(serial._shards)


class TestBuildEquivalence:
    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    def test_raw_build_bit_identical_to_coordinator_build(
        self, store, vocab, kernel
    ):
        expected = _coordinator_payloads(store, vocab, shard_size=37)
        with create_backend(
            "sharded",
            store,
            vocab,
            shard_size=37,
            processes=2,
            kernel=kernel,
        ) as backend:
            assert backend.ingest == "raw"
            backend.matching_bits(intro_query())  # ships raw, builds remotely
            dumped = backend._lease.pool.dump_shards(backend._shipped_token)
        assert dumped == expected

    def test_built_ingest_ships_same_state(self, store, vocab):
        expected = _coordinator_payloads(store, vocab, shard_size=37)
        with create_backend(
            "sharded",
            store,
            vocab,
            shard_size=37,
            processes=2,
            ingest="built",
        ) as backend:
            backend.matching_bits(intro_query())
            dumped = backend._lease.pool.dump_shards(backend._shipped_token)
        assert dumped == expected

    def test_version_bump_rebuilds_identically(self, store, vocab):
        with create_backend(
            "sharded", store, vocab, shard_size=37, processes=2
        ) as backend:
            backend.matching_bits(intro_query())
            first_token = backend._shipped_token
            store.insert(
                NestedObject(key="late", rows=[dict(store.objects[0].rows[0])])
            )
            backend.matching_bits(intro_query())  # stale → rebuild + re-ship
            assert backend._shipped_token != first_token
            assert backend._built_version == store.version
            dumped = backend._lease.pool.dump_shards(backend._shipped_token)
        assert dumped == _coordinator_payloads(store, vocab, shard_size=37)

    def test_dump_of_retired_token_is_stale(self, store, vocab):
        with create_backend(
            "sharded", store, vocab, shard_size=37, processes=2
        ) as backend:
            backend.matching_bits(intro_query())
            pool = backend._lease.pool
            retired = backend._shipped_token
            store.insert(
                NestedObject(key="late", rows=[dict(store.objects[0].rows[0])])
            )
            backend.matching_bits(intro_query())
            with pytest.raises(StaleShardStateError):
                pool.dump_shards(retired)


class TestDisplacementAndCrash:
    def test_displaced_raw_state_reships_and_rebuilds(self, vocab):
        """Two raw-ingest tenants on one pool: each displacement retires
        the other's worker-side build, and the stale-retry re-ship runs
        the worker-side abstraction again — answers never mix."""
        store_a = random_store(150, random.Random(21))
        store_b = random_store(120, random.Random(22))
        query = intro_query()
        expected_a = create_backend("bitmask", store_a, vocab).matches_many(query)
        expected_b = create_backend("bitmask", store_b, vocab).matches_many(query)
        with ShardWorkerPool(2) as pool:
            a = create_backend(
                "sharded", store_a, vocab, shard_size=31, pool=pool
            )
            b = create_backend(
                "sharded", store_b, vocab, shard_size=31, pool=pool
            )
            assert a.ingest == "raw" and b.ingest == "raw"
            assert a.matches_many(query) == expected_a
            assert b.matches_many(query) == expected_b
            assert a.matches_many(query) == expected_a
            assert pool.dump_shards(a._shipped_token) == (
                _coordinator_payloads(store_a, vocab, shard_size=31)
            )

    def test_worker_crash_mid_build_raises_cleanly(self, store, vocab):
        """A worker dying while the raw build broadcast is in flight
        surfaces as WorkerCrashError on that very call, not as a wrong
        or partial build."""
        pool = ShardWorkerPool(2)
        backend = create_backend(
            "sharded", store, vocab, shard_size=37, pool=pool
        )
        pool._send(0, ("abort",))  # dies before the build request lands
        with pytest.raises(WorkerCrashError):
            backend.matching_bits(intro_query())
        assert pool.closed

    def test_owned_pool_recovers_with_fresh_raw_build(self, store, vocab):
        backend = create_backend(
            "sharded", store, vocab, shard_size=37, processes=2
        )
        try:
            expected = backend.matches_many(intro_query())
            backend._lease.pool._send(0, ("abort",))
            with pytest.raises(WorkerCrashError):
                backend.matches_many(intro_query())
            # Fresh owned pool, fresh worker-side build, same answers.
            assert backend.matches_many(intro_query()) == expected
            assert backend._lease.pool.dump_shards(
                backend._shipped_token
            ) == _coordinator_payloads(store, vocab, shard_size=37)
        finally:
            backend.close()
