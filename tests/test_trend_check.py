"""The perf-trend regression gate (benchmarks/check_trend.py): unit tests
for the band comparison plus a subprocess run of the exact CI invocation."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
SCRIPT = REPO / "benchmarks" / "check_trend.py"
BASELINE = REPO / "benchmarks" / "results" / "BENCH_baseline.json"

spec = importlib.util.spec_from_file_location("check_trend", SCRIPT)
check_trend = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_trend)


class TestCompare:
    def test_clean_when_above_floor(self):
        baseline = {"bench": {"min_speedup": 5.0}}
        assert check_trend.compare({"bench": {"speedup": 9.0}}, baseline) == []

    def test_regression_below_floor(self):
        baseline = {"bench": {"min_speedup": 5.0}}
        problems = check_trend.compare({"bench": {"speedup": 3.0}}, baseline)
        assert len(problems) == 1 and "3.00x" in problems[0]

    def test_missing_required_entry_fails(self):
        baseline = {"bench": {"min_speedup": 5.0}}
        problems = check_trend.compare({}, baseline)
        assert len(problems) == 1 and "missing" in problems[0]

    def test_missing_optional_entry_passes(self):
        baseline = {"bench": {"min_speedup": 5.0, "required": False}}
        assert check_trend.compare({}, baseline) == []

    def test_present_optional_entry_still_gated(self):
        baseline = {"bench": {"min_speedup": 5.0, "required": False}}
        problems = check_trend.compare({"bench": {"speedup": 1.0}}, baseline)
        assert len(problems) == 1

    def test_informational_entries_ignored(self):
        baseline = {"bench": {"note": "median only"}}
        assert check_trend.compare({}, baseline) == []

    def test_median_only_current_entry_counts_as_missing(self):
        baseline = {"bench": {"min_speedup": 2.0}}
        problems = check_trend.compare({"bench": {"median_s": 0.1}}, baseline)
        assert len(problems) == 1 and "missing" in problems[0]


class TestCommittedBaseline:
    def test_baseline_is_well_formed(self):
        baseline = json.loads(BASELINE.read_text())
        assert "e21_engine_scale_warm" in baseline
        for band in baseline.values():
            floor = band.get("min_speedup")
            assert floor is None or floor > 0

    def test_cli_invocation(self, tmp_path):
        """The exact command CI runs, against a synthetic current file."""
        current = tmp_path / "BENCH_e2x.json"
        current.write_text(
            json.dumps(
                {
                    "e21_engine_scale_warm": {"speedup": 25.0},
                    "e22_oracle_batching": {"speedup": 11.0},
                    "e23_backend_scale_sharded": {"speedup": 2.9},
                    "e26_numpy_kernel": {"speedup": 31.0},
                }
            )
        )
        clean = subprocess.run(
            [sys.executable, str(SCRIPT), str(current), str(BASELINE)],
            capture_output=True,
            text=True,
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr
        assert "perf trend clean" in clean.stdout

        current.write_text(
            json.dumps({"e21_engine_scale_warm": {"speedup": 1.2}})
        )
        dirty = subprocess.run(
            [sys.executable, str(SCRIPT), str(current), str(BASELINE)],
            capture_output=True,
            text=True,
        )
        assert dirty.returncode == 1
        assert "REGRESSION" in dirty.stdout

    def test_cli_missing_file(self, tmp_path):
        result = subprocess.run(
            [sys.executable, str(SCRIPT), str(tmp_path / "nope.json")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 2
