"""Integration tests for the multi-process serving tier (§2h).

Real forked worker processes, real sockets, one shared file-backed
store: kernel-balanced ``SO_REUSEPORT`` accept, the shard-router
fallback, worker-hopping reconnects through the ownership handoff,
concurrent-claim rejection, and the kill-one-worker durability variant
of the E25b restart story.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.interactive import LearningSession
from repro.learning import Qhorn1Learner
from repro.oracle import QueryOracle
from repro.server import RoundServer, ServerFleet, SessionStore
from repro.server.loadgen import random_intents, run_load
from repro.server.multiproc import ShardRouter


def run(coro):
    return asyncio.run(coro)


def sync_reference(intent):
    """The synchronous in-process path the wire must be bit-identical
    to, fleet or no fleet."""
    session = LearningSession(
        lambda oracle: Qhorn1Learner(oracle), oracle=QueryOracle(intent)
    )
    return session.run()


def assert_bit_identical(user):
    reference = sync_reference(user.intent)
    questions = [q for qs, _ in user.transcript for q in qs]
    answers = [a for _, ans in user.transcript for a in ans]
    assert questions == [e.question for e in reference.transcript]
    assert answers == reference.transcript.responses()
    assert user.learned == reference.query.shorthand()
    return reference


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "sessions.sqlite"


class TestServerFleet:
    def test_memory_store_rejected(self):
        with pytest.raises(ValueError, match="file-backed"):
            ServerFleet(":memory:", workers=2)

    def test_hopping_dialogues_finish_bit_identical(self, store_path):
        """The tentpole end-to-end: dialogues park-and-reconnect every
        round across a 2-worker fleet; every one finishes, every
        transcript is bit-identical to the synchronous path, and both
        workers demonstrably served (with ~60 kernel-balanced connects,
        one worker seeing none has probability ~2^-59)."""
        intents = random_intents(12, 3, seed=2600)
        with ServerFleet(store_path, workers=2) as fleet:
            report = run(
                run_load(
                    fleet.host,
                    fleet.port,
                    intents,
                    seed=2600,
                    hop_every=1,
                )
            )
            stats = fleet.stop()
        assert all(user.finished for user in report.users)
        for user in report.users:
            reference = assert_bit_identical(user)
            assert user.questions == reference.questions_asked
        assert report.workers_seen == {"w0", "w1"}
        assert report.total_hops > 0
        # Merged fleet counters account for every dialogue and resume.
        assert stats["workers"] == 2
        assert stats["sessions_finished"] == len(intents)
        assert stats["sessions_opened"] == len(intents)
        assert stats["sessions_resumed"] == report.total_hops
        assert stats["claims_rejected"] == 0

    def test_router_fallback_serves_hopping_dialogues(self, store_path):
        """reuse_port=False forces the shard-router path (what platforms
        without SO_REUSEPORT get): same contract, same handoff."""
        intents = random_intents(6, 3, seed=2601)
        with ServerFleet(
            store_path, workers=2, reuse_port=False
        ) as fleet:
            report = run(
                run_load(
                    fleet.host,
                    fleet.port,
                    intents,
                    seed=2601,
                    hop_every=1,
                )
            )
            stats = fleet.stop()
        assert all(user.finished for user in report.users)
        for user in report.users:
            assert_bit_identical(user)
        assert stats["sessions_finished"] == len(intents)

    def test_double_start_rejected(self, store_path):
        fleet = ServerFleet(store_path, workers=1)
        fleet.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                fleet.start()
        finally:
            fleet.stop()

    def test_port_before_start_rejected(self, store_path):
        with pytest.raises(RuntimeError, match="not started"):
            ServerFleet(store_path, workers=1).port


class TestKillOneWorker:
    def test_parked_and_live_sessions_survive_a_killed_worker(
        self, store_path
    ):
        """The E25b variant for fleets: park some dialogues cleanly,
        abandon others live (no quit — their claims stay held), SIGKILL
        one worker, and resume *every* session on the survivors.  Parked
        sessions were released; the killed worker's live ones are stolen
        via the dead-pid check; stitched transcripts stay bit-identical
        and metering spans the kill."""
        parked_intents = random_intents(6, 3, seed=2602)
        live_intents = random_intents(4, 3, seed=2603)
        with ServerFleet(store_path, workers=2) as fleet:
            parked = run(
                run_load(
                    fleet.host,
                    fleet.port,
                    parked_intents,
                    seed=2602,
                    stop_after_rounds=1,
                )
            ).users
            # One-round dialogues can finish before parking; the rest
            # parked mid-session (quit → claim released).
            parked = [user for user in parked if not user.finished]
            assert parked
            # Abandoned dialogues: answer one round, then drop the
            # connection without quit — the serving worker keeps them
            # live in memory and keeps their store claims.
            abandoned = run(
                self._abandon_live(fleet.host, fleet.port, live_intents)
            )
            fleet.kill_worker(0)
            assert fleet.alive() == [1]

            survivors = run(
                run_load(
                    fleet.host,
                    fleet.port,
                    [user.intent for user in parked + abandoned],
                    seed=2604,
                    session_ids=[
                        user.session_id for user in parked + abandoned
                    ],
                )
            )
            for before, after in zip(parked + abandoned, survivors.users):
                assert after.finished
                stitched_user = after
                stitched_user.transcript = (
                    before.transcript + after.transcript
                )
                reference = assert_bit_identical(stitched_user)
                # Metering spans the kill: questions is a lifetime total.
                assert after.questions == reference.questions_asked
                assert after.workers == {"w1"}
            # Parked sessions were released by quit and rebuilt from the
            # store; their metering records the resume.
            for after in survivors.users[: len(parked)]:
                assert after.metering["resumes"] >= 1

    @staticmethod
    async def _abandon_live(host, port, intents):
        """Open dialogues, answer one round each, drop the connections
        without quitting — sessions stay live (and claimed) server-side."""
        from repro.protocol.wire import payload_from_dict
        from repro.server.loadgen import UserResult

        abandoned = []
        for intent in intents:
            truth = QueryOracle(intent)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                (
                    json.dumps(
                        {"type": "open", "n": intent.n, "learner": "qhorn1"}
                    )
                    + "\n"
                ).encode()
            )
            await writer.drain()
            message = json.loads(await reader.readline())
            assert message["type"] == "round"
            questions = [
                payload_from_dict(d) for d in message["questions"]
            ]
            answers = [truth.ask(q) for q in questions]
            writer.write(
                (
                    json.dumps(
                        {
                            "type": "answers",
                            "session": message["session"],
                            "answers": answers,
                        }
                    )
                    + "\n"
                ).encode()
            )
            await writer.drain()
            second = json.loads(await reader.readline())
            user = UserResult(
                session_id=message["session"], intent=intent
            )
            if second["type"] == "finished":
                user.learned = second["query"]
            else:
                user.transcript.append((questions, answers))
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if not user.finished:
                abandoned.append(user)
        return abandoned


class TestOwnershipHandoff:
    """Two RoundServers on one store file — the fleet's claim semantics
    pinned without forking (deterministic, same event loop)."""

    def test_live_session_on_another_worker_is_rejected(self, store_path):
        async def main():
            store_a = SessionStore(store_path)
            store_b = SessionStore(store_path)
            a = RoundServer(store_a, worker_id="wa")
            b = RoundServer(store_b, worker_id="wb")
            await a.start()
            await b.start()
            reader_a, writer_a = await asyncio.open_connection(
                "127.0.0.1", a.port
            )
            writer_a.write(b'{"type": "open", "n": 3}\n')
            await writer_a.drain()
            first = json.loads(await reader_a.readline())
            sid = first["session"]
            assert first["worker"] == "wa"

            # Concurrent claim: the session is live on A, so B must
            # reject the reconnect with a recoverable error...
            reader_b, writer_b = await asyncio.open_connection(
                "127.0.0.1", b.port
            )
            writer_b.write(
                json.dumps({"type": "reconnect", "session": sid}).encode()
                + b"\n"
            )
            await writer_b.drain()
            rejected = json.loads(await reader_b.readline())

            # ...until A parks it (quit releases the claim), after which
            # B rebuilds it from the store and serves the same round.
            writer_a.write(
                json.dumps({"type": "quit", "session": sid}).encode()
                + b"\n"
            )
            await writer_a.drain()
            closed = json.loads(await reader_a.readline())
            writer_b.write(
                json.dumps({"type": "reconnect", "session": sid}).encode()
                + b"\n"
            )
            await writer_b.drain()
            resumed = json.loads(await reader_b.readline())

            for writer in (writer_a, writer_b):
                writer.close()
            await a.close()
            await b.close()
            stats_b = b.stats()
            store_a.close()
            store_b.close()
            return first, rejected, closed, resumed, stats_b

        first, rejected, closed, resumed, stats_b = run(main())
        assert rejected["type"] == "error"
        assert "another worker" in rejected["message"]
        assert closed["type"] == "closed"
        assert resumed["type"] == "round"
        assert resumed["worker"] == "wb"
        assert resumed["questions"] == first["questions"]
        assert resumed["index"] == first["index"]
        assert stats_b["claims_rejected"] == 1
        assert stats_b["sessions_resumed"] == 1

    def test_clean_close_releases_every_claim(self, store_path):
        async def main():
            store = SessionStore(store_path)
            server = RoundServer(store, worker_id="wa")
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b'{"type": "open", "n": 3}\n')
            await writer.drain()
            first = json.loads(await reader.readline())
            sid = first["session"]
            assert store.owner_of(sid) is not None
            writer.close()
            await server.close()
            owner_after = store.owner_of(sid)
            store.close()
            return owner_after

        assert run(main()) is None

    def test_eviction_releases_the_claim(self, store_path):
        async def main():
            store = SessionStore(store_path)
            server = RoundServer(store, worker_id="wa")
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b'{"type": "open", "n": 3}\n')
            await writer.drain()
            first = json.loads(await reader.readline())
            sid = first["session"]
            owned_before = store.owner_of(sid)
            assert server.evict_idle(0.0) == 1
            owner_after = store.owner_of(sid)
            writer.close()
            await server.close()
            store.close()
            return owned_before, owner_after

        owned_before, owner_after = run(main())
        assert owned_before is not None
        assert owner_after is None


class TestShardRouter:
    def test_pick_is_stable_per_session_and_round_robin_for_opens(self):
        router = ShardRouter([("h", 1), ("h", 2), ("h", 3)])
        by_session = router.pick({"session": "abc123"})
        assert all(
            router.pick({"session": "abc123"}) == by_session
            for _ in range(5)
        )
        opens = [router.pick({"type": "open"}) for _ in range(6)]
        assert opens == [0, 1, 2, 0, 1, 2]
        # Unparseable first lines still route (the worker answers the
        # wire error itself).
        assert router.pick(None) in (0, 1, 2)

    def test_empty_backends_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ShardRouter([])
