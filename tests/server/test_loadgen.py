"""Loadgen scenario files and the pool-health metering they ride on.

``repro enumerate --out FILE`` writes a JSONL corpus whose ``query``
records double as loadgen scenarios; :func:`load_scenarios` is the
parser.  The pool-metering tests pin the §2i satellite: every
:class:`~repro.data.backends.dbapi.PooledConnectionSource` in a worker
process reports its health counters through ``RoundServer.stats()`` as
``pool_*`` keys, which the fleet store then merges for
``repro serve --stats``.
"""

from __future__ import annotations

import json

import pytest

from repro.core.parser import parse_query
from repro.core.serialize import query_to_dict
from repro.server.loadgen import load_scenarios


def _write(tmp_path, records):
    path = tmp_path / "scenario.jsonl"
    path.write_text(
        "".join(json.dumps(record) + "\n" for record in records),
        encoding="utf-8",
    )
    return str(path)


class TestLoadScenarios:
    def test_corpus_query_records(self, tmp_path):
        target = parse_query("∀x1 ∃x2", n=2)
        path = _write(
            tmp_path,
            [
                {"kind": "meta", "max_props": 2},
                {"kind": "query", "id": "q2-abc", "query": query_to_dict(target)},
                {"kind": "store", "id": "s2-def", "objects": [[1, 2]]},
                {"kind": "summary", "status": "ok"},
            ],
        )
        scenarios = load_scenarios(path)
        assert len(scenarios) == 1
        assert scenarios[0] == target

    def test_bare_query_and_intent_records(self, tmp_path):
        target = parse_query("∃x1x2")
        path = _write(
            tmp_path,
            [
                {"query": query_to_dict(target)},
                {"intent": "∀x1→x2", "n": 3},
            ],
        )
        scenarios = load_scenarios(path)
        assert scenarios[0] == target
        assert scenarios[1] == parse_query("∀x1→x2", n=3)

    def test_query_record_without_dict_rejected(self, tmp_path):
        path = _write(tmp_path, [{"kind": "query", "id": "broken"}])
        with pytest.raises(ValueError, match="query"):
            load_scenarios(path)

    def test_empty_scenario_file_rejected(self, tmp_path):
        path = _write(tmp_path, [{"kind": "meta"}, {"kind": "summary"}])
        with pytest.raises(ValueError, match="no scenario intents"):
            load_scenarios(path)


class TestPoolMetering:
    def test_server_stats_carry_pool_counters(self):
        from repro.server.core import RoundServer
        from repro.server.store import SessionStore

        with SessionStore() as store:
            server = RoundServer(store)
            stats = server.stats()
        for name in (
            "pool_connections_opened",
            "pool_checkouts",
            "pool_health_failures",
            "pool_stale_retries",
            "pool_pools",
        ):
            assert name in stats

    def test_pool_activity_shows_up_in_stats_deltas(self):
        """pool_stats() aggregates process-wide, so assert deltas."""
        from repro.oracle import SqlQueryOracle
        from repro.server.core import RoundServer
        from repro.server.store import SessionStore

        with SessionStore() as store:
            server = RoundServer(store)
            before = server.stats()
            oracle = SqlQueryOracle.pooled(parse_query("∃x1"))
            try:
                from repro.core.tuples import Question

                assert oracle.ask(Question.of(1, [1])) is True
                after = server.stats()
                assert after["pool_pools"] >= before["pool_pools"] + 1
                assert (
                    after["pool_connections_opened"]
                    > before["pool_connections_opened"]
                )
                assert after["pool_checkouts"] > before["pool_checkouts"]
            finally:
                oracle.close()
            # Closed pools drop out of the live aggregate.
            assert server.stats()["pool_pools"] == before["pool_pools"]

    def test_fleet_stats_merge_pool_counters(self):
        from repro.server.core import RoundServer
        from repro.server.store import SessionStore

        with SessionStore() as store:
            for worker in ("w1", "w2"):
                server = RoundServer(store, worker_id=worker)
                store.save_worker_stats(worker, server.stats())
            merged = store.fleet_stats()
        assert "pool_checkouts" in merged
        assert merged["workers"] == 2
