"""Unit tests for the sqlite snapshot-backed session store (§2f)."""

from __future__ import annotations

import random

import pytest

from repro.core.generators import random_qhorn1
from repro.core.tuples import Question
from repro.interactive import LearningSession, SessionSnapshot
from repro.learning import Qhorn1Learner
from repro.oracle import QueryOracle
from repro.protocol import answer_round
from repro.server import SessionStore, StoredSession


def q(n, *masks):
    return Question.of(n, masks)


def record(session_id="s1", **overrides):
    defaults = dict(
        session_id=session_id,
        learner="qhorn1",
        n=3,
        status="active",
        rounds=2,
        questions=4,
        snapshot=SessionSnapshot(
            n=3,
            responses=[True, False],
            pending=[q(3, 7), q(3, 1)],
            pending_batched=False,
            restarts=1,
        ),
    )
    defaults.update(overrides)
    return StoredSession(**defaults)


class TestSessionStore:
    def test_save_load_round_trip(self):
        with SessionStore() as store:
            stored = record()
            store.save(stored)
            loaded = store.load("s1")
            assert loaded == stored
            assert not loaded.finished

    def test_load_missing_returns_none(self):
        with SessionStore() as store:
            assert store.load("nope") is None

    def test_upsert_overwrites(self):
        with SessionStore() as store:
            store.save(record(rounds=1))
            store.save(record(rounds=9, status="finished"))
            loaded = store.load("s1")
            assert loaded.rounds == 9 and loaded.finished
            assert len(store) == 1

    def test_container_and_listing(self):
        with SessionStore() as store:
            store.save(record("a"))
            store.save(record("b", status="finished"))
            assert "a" in store and "c" not in store
            assert len(store) == 2
            assert store.session_ids() == ["a", "b"]
            assert store.session_ids(status="active") == ["a"]
            assert store.session_ids(status="finished") == ["b"]
            store.delete("a")
            assert "a" not in store and len(store) == 1

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "sessions.sqlite"
        with SessionStore(path) as store:
            store.save(record())
        with SessionStore(path) as store:
            assert store.load("s1") == record()

    def test_stored_snapshot_resumes_a_real_session(self, tmp_path):
        """The store's row is sufficient to rebuild a parked dialogue at
        its exact parked round — the §2f durability contract."""
        target = random_qhorn1(3, random.Random(11))
        oracle = QueryOracle(target)
        factory = lambda o: Qhorn1Learner(o)  # noqa: E731
        session = LearningSession(factory, n=3)
        event = session.step()
        event = session.feed(answer_round(oracle, event))
        path = tmp_path / "sessions.sqlite"
        with SessionStore(path) as store:
            store.save(
                StoredSession(
                    session_id="park",
                    learner="qhorn1",
                    n=3,
                    status="active",
                    rounds=2,
                    questions=len(session.transcript),
                    snapshot=session.snapshot(),
                )
            )
        with SessionStore(path) as store:
            row = store.load("park")
        fresh = LearningSession(factory, n=3)
        resumed = fresh.resume(row.snapshot)
        assert list(resumed.questions) == list(event.questions)

    def test_corrupt_snapshot_version_raises(self):
        with SessionStore() as store:
            store.save(record())
            store.connection.execute(
                "UPDATE sessions SET snapshot = ?",
                ('{"version": 99, "n": 3, "responses": []}',),
            )
            store.connection.commit()
            with pytest.raises(Exception, match="version"):
                store.load("s1")
