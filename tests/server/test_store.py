"""Unit tests for the sqlite snapshot-backed session store (§2f/§2h)."""

from __future__ import annotations

import multiprocessing
import os
import random

import pytest

from repro.core.generators import random_qhorn1
from repro.core.tuples import Question
from repro.interactive import LearningSession, SessionSnapshot
from repro.learning import Qhorn1Learner
from repro.oracle import QueryOracle
from repro.protocol import answer_round
from repro.server import SessionStore, StoredSession
from repro.server.store import owner_alive, owner_token


def q(n, *masks):
    return Question.of(n, masks)


def record(session_id="s1", **overrides):
    defaults = dict(
        session_id=session_id,
        learner="qhorn1",
        n=3,
        status="active",
        rounds=2,
        questions=4,
        snapshot=SessionSnapshot(
            n=3,
            responses=[True, False],
            pending=[q(3, 7), q(3, 1)],
            pending_batched=False,
            restarts=1,
        ),
    )
    defaults.update(overrides)
    return StoredSession(**defaults)


class TestSessionStore:
    def test_save_load_round_trip(self):
        with SessionStore() as store:
            stored = record()
            store.save(stored)
            loaded = store.load("s1")
            assert loaded == stored
            assert not loaded.finished

    def test_load_missing_returns_none(self):
        with SessionStore() as store:
            assert store.load("nope") is None

    def test_upsert_overwrites(self):
        with SessionStore() as store:
            store.save(record(rounds=1))
            store.save(record(rounds=9, status="finished"))
            loaded = store.load("s1")
            assert loaded.rounds == 9 and loaded.finished
            assert len(store) == 1

    def test_container_and_listing(self):
        with SessionStore() as store:
            store.save(record("a"))
            store.save(record("b", status="finished"))
            assert "a" in store and "c" not in store
            assert len(store) == 2
            assert store.session_ids() == ["a", "b"]
            assert store.session_ids(status="active") == ["a"]
            assert store.session_ids(status="finished") == ["b"]
            store.delete("a")
            assert "a" not in store and len(store) == 1

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "sessions.sqlite"
        with SessionStore(path) as store:
            store.save(record())
        with SessionStore(path) as store:
            assert store.load("s1") == record()

    def test_stored_snapshot_resumes_a_real_session(self, tmp_path):
        """The store's row is sufficient to rebuild a parked dialogue at
        its exact parked round — the §2f durability contract."""
        target = random_qhorn1(3, random.Random(11))
        oracle = QueryOracle(target)
        factory = lambda o: Qhorn1Learner(o)  # noqa: E731
        session = LearningSession(factory, n=3)
        event = session.step()
        event = session.feed(answer_round(oracle, event))
        path = tmp_path / "sessions.sqlite"
        with SessionStore(path) as store:
            store.save(
                StoredSession(
                    session_id="park",
                    learner="qhorn1",
                    n=3,
                    status="active",
                    rounds=2,
                    questions=len(session.transcript),
                    snapshot=session.snapshot(),
                )
            )
        with SessionStore(path) as store:
            row = store.load("park")
        fresh = LearningSession(factory, n=3)
        resumed = fresh.resume(row.snapshot)
        assert list(resumed.questions) == list(event.questions)

    def test_corrupt_snapshot_version_raises(self):
        with SessionStore() as store:
            store.save(record())
            store.connection.execute(
                "UPDATE sessions SET snapshot = ?",
                ('{"version": 99, "n": 3, "responses": []}',),
            )
            store.connection.commit()
            with pytest.raises(Exception, match="version"):
                store.load("s1")


class TestMultiProcessReadiness:
    """The §2h prerequisites: WAL, busy_timeout, commit discipline, and
    the status index — what makes concurrent worker connections safe."""

    def test_file_store_opens_in_wal_mode(self, tmp_path):
        with SessionStore(tmp_path / "s.sqlite") as store:
            (mode,) = store.connection.execute(
                "PRAGMA journal_mode"
            ).fetchone()
            assert mode == "wal"
            (sync,) = store.connection.execute(
                "PRAGMA synchronous"
            ).fetchone()
            assert sync == 1  # NORMAL
            (busy,) = store.connection.execute(
                "PRAGMA busy_timeout"
            ).fetchone()
            assert busy == 30_000

    def test_connection_is_autocommit(self):
        # isolation_level=None: every statement commits on its own, so a
        # second process never waits behind a dangling open transaction.
        with SessionStore() as store:
            assert store.connection.isolation_level is None
            assert not store.connection.in_transaction
            store.save(record())
            assert not store.connection.in_transaction

    def test_status_index_exists(self):
        with SessionStore() as store:
            names = {
                name
                for (name,) in store.connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'index'"
                )
            }
            assert "sessions_status" in names
            (plan,) = store.connection.execute(
                "EXPLAIN QUERY PLAN "
                "SELECT session_id FROM sessions WHERE status = 'active'"
            ).fetchall()
            assert "sessions_status" in plan[-1]

    def test_two_handles_interleave_on_one_file(self, tmp_path):
        """Two store connections on one file — the fleet's actual shape —
        interleaving save/load/delete and observing each other."""
        path = tmp_path / "s.sqlite"
        with SessionStore(path) as a, SessionStore(path) as b:
            a.save(record("one"))
            assert b.load("one") == record("one")
            b.save(record("two", rounds=5))
            assert a.session_ids() == ["one", "two"]
            a.save(record("two", rounds=7))  # upsert over b's write
            assert b.load("two").rounds == 7
            b.delete("one")
            assert "one" not in a
            a.save(record("one", status="finished"))
            assert b.session_ids(status="finished") == ["one"]

    def test_pre_claim_store_files_migrate(self, tmp_path):
        """A §2f-era store file (no owner column) opens and claims."""
        import sqlite3

        path = tmp_path / "old.sqlite"
        connection = sqlite3.connect(path)
        connection.execute(
            "CREATE TABLE sessions ("
            "session_id TEXT PRIMARY KEY, learner TEXT NOT NULL, "
            "n INTEGER NOT NULL, status TEXT NOT NULL, "
            "rounds INTEGER NOT NULL, questions INTEGER NOT NULL, "
            "snapshot TEXT NOT NULL)"
        )
        old = record()
        connection.execute(
            "INSERT INTO sessions VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                old.session_id,
                old.learner,
                old.n,
                old.status,
                old.rounds,
                old.questions,
                __import__("json").dumps(old.snapshot.to_dict()),
            ),
        )
        connection.commit()
        connection.close()
        with SessionStore(path) as store:
            loaded = store.load("s1")
            assert loaded == old and loaded.owner is None
            assert store.claim("s1", "token")

    def test_reopen_rebinds_a_file_store(self, tmp_path):
        with SessionStore(tmp_path / "s.sqlite") as store:
            store.save(record())
            before = store.connection
            store.reopen()
            assert store.connection is not before
            assert store.load("s1") == record()

    def test_closed_store_rejects_use(self):
        store = SessionStore()
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.load("s1")

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_inherited_store_rebinds_across_fork(self, tmp_path):
        """A store object carried across fork() must not reuse the
        parent's sqlite connection: the pid guard rebinds in the child,
        and the child's writes land in the shared file."""
        path = tmp_path / "s.sqlite"
        store = SessionStore(path)
        store.save(record("parent"))

        def child(inherited):
            inherited.save(record("child", rounds=3))
            inherited.close()

        context = multiprocessing.get_context("fork")
        process = context.Process(target=child, args=(store,))
        process.start()
        process.join(timeout=30)
        assert process.exitcode == 0
        assert store.load("child").rounds == 3
        assert store.load("parent") is not None
        store.close()


class TestClaimTokens:
    """The §2h ownership handoff: CAS claims, releases, dead-pid steal."""

    def test_claim_unowned_then_idempotent_reclaim(self):
        with SessionStore() as store:
            store.save(record())
            assert store.claim("s1", "100.a")
            assert store.owner_of("s1") == "100.a"
            assert store.claim("s1", "100.a")  # idempotent

    def test_concurrent_claim_against_live_owner_rejected(self):
        mine = owner_token("a")  # this test process: definitely alive
        with SessionStore() as store:
            store.save(record())
            assert store.claim("s1", mine)
            assert not store.claim("s1", owner_token("b"))
            assert store.owner_of("s1") == mine

    def test_release_then_claim_hands_off(self):
        mine = owner_token("a")
        theirs = owner_token("b")
        with SessionStore() as store:
            store.save(record())
            assert store.claim("s1", mine)
            assert store.release("s1", mine)
            assert store.owner_of("s1") is None
            assert store.claim("s1", theirs)

    def test_release_requires_ownership(self):
        with SessionStore() as store:
            store.save(record())
            assert store.claim("s1", owner_token("a"))
            assert not store.release("s1", owner_token("b"))
            assert store.owner_of("s1") == owner_token("a")

    def test_claim_unknown_session_fails(self):
        with SessionStore() as store:
            assert not store.claim("nope", "1.x")

    def test_dead_owner_is_stolen(self):
        """A SIGKILLed worker can never release; its pid goes dead and
        the next claimant steals the session — the crash-resume path."""

        def exit_now():
            os._exit(0)

        process = multiprocessing.Process(target=exit_now)
        process.start()
        process.join(timeout=30)
        dead_token = f"{process.pid}.gone"
        assert not owner_alive(dead_token)
        with SessionStore() as store:
            store.save(record(owner=dead_token))
            assert store.owner_of("s1") == dead_token
            assert store.claim("s1", owner_token("survivor"))
            assert store.owner_of("s1") == owner_token("survivor")

    def test_owner_alive_probes(self):
        assert owner_alive(owner_token("me"))
        assert not owner_alive("0.zero")
        assert not owner_alive("-5.negative")
        assert owner_alive("garbage-token")  # unparseable: never steal

    def test_save_persists_owner_and_equality_ignores_it(self):
        with SessionStore() as store:
            store.save(record(owner="7.w"))
            loaded = store.load("s1")
            assert loaded.owner == "7.w"
            assert loaded == record()  # owner excluded from comparison


class TestWorkerStats:
    """Fleet-wide metering aggregation through the store (§2h)."""

    def test_merge_counters_across_workers(self):
        with SessionStore() as store:
            store.save_worker_stats(
                "w0", {"sessions_finished": 3, "wire_errors": 1}
            )
            store.save_worker_stats(
                "w1", {"sessions_finished": 5, "evictions": 2}
            )
            assert store.worker_stats()["w1"]["evictions"] == 2
            merged = store.fleet_stats()
            assert merged == {
                "workers": 2,
                "sessions_finished": 8,
                "wire_errors": 1,
                "evictions": 2,
            }

    def test_upsert_and_clear(self):
        with SessionStore() as store:
            store.save_worker_stats("w0", {"sessions_finished": 1})
            store.save_worker_stats("w0", {"sessions_finished": 9})
            assert store.fleet_stats()["sessions_finished"] == 9
            store.clear_worker_stats()
            assert store.fleet_stats() == {"workers": 0}
