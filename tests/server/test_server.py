"""Integration tests for the multi-session asyncio round server (§2f).

Every test runs a real :class:`~repro.server.RoundServer` on an
ephemeral localhost port inside one event loop and speaks the session-id
framed JSON wire over real sockets — the error paths, the multiplexing,
idle eviction, and the kill-server/restart/resume durability story.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from repro.core.generators import random_qhorn1
from repro.interactive import LearningSession
from repro.learning import Qhorn1Learner
from repro.oracle import QueryOracle
from repro.protocol.wire import payload_from_dict
from repro.server import RoundServer, SessionStore


class Client:
    """A minimal wire client: one JSON message per line, both ways."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def send_raw(self, text: str):
        self.writer.write((text + "\n").encode())
        await self.writer.drain()

    async def send(self, **message):
        await self.send_raw(json.dumps(message))

    async def recv(self) -> dict:
        line = await asyncio.wait_for(self.reader.readline(), timeout=30)
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def sync_reference(intent, learner_cls=Qhorn1Learner):
    """The synchronous in-process path the wire must be bit-identical to."""
    session = LearningSession(
        lambda oracle: learner_cls(oracle), oracle=QueryOracle(intent)
    )
    return session.run()


async def answer_until_done(client, oracle, session_id=None, first=None):
    """Answer every round from ``oracle``; returns (finished_message,
    wire_transcript) where the transcript is [(question, answer), ...]."""
    transcript = []
    message = first if first is not None else await client.recv()
    while True:
        if message["type"] == "finished":
            return message, transcript
        assert message["type"] == "round", message
        session_id = message["session"]
        questions = [payload_from_dict(d) for d in message["questions"]]
        answers = [oracle.ask(q) for q in questions]
        transcript.extend(zip(questions, answers))
        await client.send(
            type="answers", session=session_id, answers=answers
        )
        message = await client.recv()


def run(coro):
    return asyncio.run(coro)


class TestFullDialogue:
    def test_wire_transcript_bit_identical_to_sync_path(self):
        target = random_qhorn1(3, random.Random(7))

        async def main():
            with SessionStore() as store:
                server = RoundServer(store)
                await server.start()
                client = await Client.connect(server.port)
                await client.send(type="open", n=3, learner="qhorn1")
                finished, wire = await answer_until_done(
                    client, QueryOracle(target)
                )
                await client.close()
                await server.close()
                return finished, wire, server.stats()

        finished, wire, stats = run(main())
        reference = sync_reference(target)
        assert finished["query"] == reference.query.shorthand()
        assert finished["questions"] == reference.questions_asked
        assert [q for q, _ in wire] == [
            e.question for e in reference.transcript
        ]
        assert [a for _, a in wire] == reference.transcript.responses()
        metering = finished["metering"]
        assert metering["questions"] == reference.questions_asked
        assert metering["rounds"] == finished["rounds"] > 0
        assert metering["errors"] == 0 and metering["resumes"] == 0
        assert stats["sessions_finished"] == 1

    def test_two_sessions_multiplexed_on_one_connection(self):
        targets = [
            random_qhorn1(3, random.Random(21)),
            random_qhorn1(3, random.Random(22)),
        ]

        async def main():
            with SessionStore() as store:
                server = RoundServer(store)
                await server.start()
                client = await Client.connect(server.port)
                oracles, pending, done = {}, {}, {}
                for target in targets:
                    await client.send(type="open", n=3, learner="qhorn1")
                    message = await client.recv()
                    oracles[message["session"]] = QueryOracle(target)
                    pending[message["session"]] = message
                # Interleave: answer one round of each session in turn.
                while pending:
                    for sid in list(pending):
                        message = pending.pop(sid)
                        if message["type"] == "finished":
                            done[sid] = message
                            continue
                        questions = [
                            payload_from_dict(d)
                            for d in message["questions"]
                        ]
                        answers = [oracles[sid].ask(q) for q in questions]
                        await client.send(
                            type="answers", session=sid, answers=answers
                        )
                        pending[sid] = await client.recv()
                await client.close()
                await server.close()
                return done

        done = run(main())
        assert len(done) == 2
        learned = sorted(m["query"] for m in done.values())
        expected = sorted(
            sync_reference(t).query.shorthand() for t in targets
        )
        assert learned == expected


class TestWireErrors:
    """Malformed clients get {"type": "error"} lines, never a dead server."""

    async def _serve_errors(self, lines_then_valid):
        target = random_qhorn1(3, random.Random(5))
        with SessionStore() as store:
            server = RoundServer(store)
            await server.start()
            client = await Client.connect(server.port)
            await client.send(type="open", n=3)
            first = await client.recv()
            sid = first["session"]
            errors = []
            for line in lines_then_valid:
                await client.send_raw(line.replace("SID", sid))
                reply = await client.recv()
                assert reply["type"] == "error", reply
                errors.append(reply["message"])
            # The session survived every malformed message: finish it.
            finished, _ = await answer_until_done(
                client, QueryOracle(target), first=first
            )
            await client.close()
            await server.close()
            return errors, finished

    def test_malformed_payloads_are_recoverable(self):
        errors, finished = run(
            self._serve_errors(
                [
                    "not json at all",
                    '"just a string"',
                    '{"type": "mystery", "session": "SID"}',
                    '{"type": "answers", "session": "SID"}',
                    '{"type": "answers", "session": "SID", "answers": true}',
                    '{"type": "answers", "session": "SID", "answers": [true]}',
                    '{"type": "answers", "session": "bogus", "answers": []}',
                    '{"type": "open", "n": 0}',
                    '{"type": "open", "n": true}',
                    '{"type": "open", "n": 3, "learner": "nope"}',
                    '{"type": "answers", "session": 7, "answers": []}',
                    '{"type": "quit"}',
                    '{"type": "reconnect", "session": "bogus"}',
                ]
            )
        )
        assert finished["type"] == "finished"
        assert len(errors) == 13
        for needle, message in zip(
            [
                "JSON",
                "JSON object",
                "unknown type",
                'no "answers" key',
                "must be a list",
                "questions",  # wrong answer count
                "unknown session",
                'positive integer "n"',
                'positive integer "n"',
                "unknown learner",
                '"session" must be a string',
                '"quit" needs a "session"',
                "unknown session",
            ],
            errors,
        ):
            assert needle in message, (needle, message)

    def test_errors_are_metered_per_session(self):
        target = random_qhorn1(3, random.Random(5))

        async def main():
            with SessionStore() as store:
                server = RoundServer(store)
                await server.start()
                client = await Client.connect(server.port)
                await client.send(type="open", n=3)
                first = await client.recv()
                sid = first["session"]
                await client.send(type="answers", session=sid, answers=[1])
                assert (await client.recv())["type"] == "error"
                finished, _ = await answer_until_done(
                    client, QueryOracle(target), first=first
                )
                await client.close()
                await server.close()
                return finished

        finished = run(main())
        assert finished["metering"]["errors"] == 1


class TestParkAndResume:
    def test_snapshot_while_parked_then_quit_then_reconnect(self):
        target = random_qhorn1(3, random.Random(31))

        async def main():
            with SessionStore() as store:
                server = RoundServer(store)
                await server.start()
                client = await Client.connect(server.port)
                await client.send(type="open", n=3)
                first = await client.recv()
                sid = first["session"]
                # Snapshot while the round is parked: the replay log so far.
                await client.send(type="snapshot", session=sid)
                snap = await client.recv()
                assert snap["type"] == "snapshot"
                assert snap["snapshot"]["responses"] == []
                # Quit parks the session; the store still holds it.
                await client.send(type="quit", session=sid)
                closed = await client.recv()
                assert closed["type"] == "closed"
                assert sid in store
                await client.close()

                # A brand-new connection reconnects and finishes.
                client = await Client.connect(server.port)
                await client.send(type="reconnect", session=sid)
                again = await client.recv()
                assert again["type"] == "round"
                assert again["questions"] == first["questions"]
                assert again["index"] == first["index"] == 0
                finished, _ = await answer_until_done(
                    client, QueryOracle(target), first=again
                )
                await client.close()
                await server.close()
                return finished

        finished = run(main())
        assert finished["query"] == sync_reference(target).query.shorthand()

    def test_idle_eviction_then_transparent_resume(self):
        target = random_qhorn1(3, random.Random(41))

        async def main():
            with SessionStore() as store:
                server = RoundServer(store)
                await server.start()
                client = await Client.connect(server.port)
                await client.send(type="open", n=3)
                first = await client.recv()
                sid = first["session"]
                assert server.evict_idle(0.0) == 1
                assert server.stats()["live_sessions"] == 0
                # The very next answers frame resumes from the store
                # without the client noticing anything happened.
                finished, _ = await answer_until_done(
                    client, QueryOracle(target), first=first
                )
                await client.close()
                await server.close()
                return finished, server.stats()

        finished, stats = run(main())
        assert finished["query"] == sync_reference(target).query.shorthand()
        assert stats["evictions"] == 1
        assert finished["metering"]["resumes"] == 1

    def test_finished_session_cannot_be_reopened(self):
        target = random_qhorn1(3, random.Random(51))

        async def main():
            with SessionStore() as store:
                server = RoundServer(store)
                await server.start()
                client = await Client.connect(server.port)
                await client.send(type="open", n=3)
                finished, _ = await answer_until_done(
                    client, QueryOracle(target)
                )
                await client.send(
                    type="reconnect", session=finished["session"]
                )
                reply = await client.recv()
                await client.close()
                await server.close()
                return reply

        reply = run(main())
        assert reply["type"] == "error"
        assert "already finished" in reply["message"]


class TestRestartDurability:
    def test_kill_server_restart_resume_round_trip(self, tmp_path):
        """The §2f acceptance story: sessions parked mid-dialogue in a
        file-backed store resume at their exact parked round on a fresh
        server process-equivalent (new RoundServer, new SessionStore)."""
        targets = [
            random_qhorn1(3, random.Random(61)),
            random_qhorn1(3, random.Random(62)),
            random_qhorn1(3, random.Random(63)),
        ]
        path = tmp_path / "sessions.sqlite"

        async def phase_one():
            store = SessionStore(path)
            server = RoundServer(store)
            await server.start()
            parked = {}
            for index, target in enumerate(targets):
                client = await Client.connect(server.port)
                await client.send(type="open", n=3)
                message = await client.recv()
                oracle = QueryOracle(target)
                # Answer `index` rounds, then hang up mid-dialogue.
                for _ in range(index):
                    questions = [
                        payload_from_dict(d) for d in message["questions"]
                    ]
                    answers = [oracle.ask(q) for q in questions]
                    await client.send(
                        type="answers",
                        session=message["session"],
                        answers=answers,
                    )
                    message = await client.recv()
                assert message["type"] == "round"
                parked[message["session"]] = (target, message)
                await client.close()
            await server.close()  # the "kill": drops all live state
            store.close()
            return parked

        async def phase_two(parked):
            store = SessionStore(path)
            server = RoundServer(store)
            await server.start()
            results = {}
            for sid, (target, last_round) in parked.items():
                client = await Client.connect(server.port)
                await client.send(type="reconnect", session=sid)
                resumed = await client.recv()
                # The exact parked round, same questions, same index.
                assert resumed["type"] == "round"
                assert resumed["questions"] == last_round["questions"]
                assert resumed["index"] == last_round["index"]
                finished, _ = await answer_until_done(
                    client, QueryOracle(target), first=resumed
                )
                results[sid] = (target, finished)
                await client.close()
            await server.close()
            store.close()
            return results, server.stats()

        parked = run(phase_one())
        assert len(parked) == len(targets)
        results, stats = run(phase_two(parked))
        assert stats["sessions_resumed"] == len(targets)
        for sid, (target, finished) in results.items():
            reference = sync_reference(target)
            assert finished["query"] == reference.query.shorthand()
            # Lifetime totals survive the restart: the finished summary
            # meters every question of the dialogue, not just the ones
            # after the resume.
            assert finished["questions"] == reference.questions_asked
            assert finished["metering"]["resumes"] == 1

    def test_store_rows_written_at_every_round_boundary(self):
        target = random_qhorn1(3, random.Random(71))

        async def main():
            with SessionStore() as store:
                server = RoundServer(store)
                await server.start()
                client = await Client.connect(server.port)
                await client.send(type="open", n=3)
                message = await client.recv()
                sid = message["session"]
                row = store.load(sid)
                assert row is not None and row.rounds == 1
                assert row.status == "active"
                finished, _ = await answer_until_done(
                    client, QueryOracle(target), first=message
                )
                row = store.load(sid)
                await client.close()
                await server.close()
                return row, finished

        row, finished = run(main())
        assert row.finished
        assert row.rounds == finished["rounds"]
        assert row.questions == finished["questions"]


class TestBackpressure:
    def test_bounded_outbox_still_serves_a_slow_reader(self):
        """A tiny outbox (maxsize=1) forces the reply path through the
        backpressure machinery; the dialogue still completes."""
        target = random_qhorn1(3, random.Random(81))

        async def main():
            with SessionStore() as store:
                server = RoundServer(store, max_outbox=1)
                await server.start()
                client = await Client.connect(server.port)
                await client.send(type="open", n=3)
                finished, _ = await answer_until_done(
                    client, QueryOracle(target)
                )
                await client.close()
                await server.close()
                return finished

        assert run(main())["type"] == "finished"

    def test_evict_loop_runs_with_idle_timeout(self):
        async def main():
            with SessionStore() as store:
                server = RoundServer(store, idle_timeout=0.02)
                await server.start()
                client = await Client.connect(server.port)
                await client.send(type="open", n=3)
                message = await client.recv()
                await asyncio.sleep(0.08)  # > idle_timeout + sweep tick
                stats = server.stats()
                await client.close()
                await server.close()
                return message, stats

        message, stats = run(main())
        assert message["type"] == "round"
        assert stats["evictions"] == 1
        assert stats["live_sessions"] == 0


class TestServerLifecycle:
    def test_double_start_rejected(self):
        async def main():
            with SessionStore() as store:
                server = RoundServer(store)
                await server.start()
                with pytest.raises(RuntimeError, match="already started"):
                    await server.start()
                await server.close()

        run(main())

    def test_port_before_start_rejected(self):
        with SessionStore() as store:
            with pytest.raises(RuntimeError, match="not started"):
                RoundServer(store).port
