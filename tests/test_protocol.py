"""Unit tests for the sans-io step protocol (DESIGN.md §2e): the
Round/Finished state machine, the driver dispatch, the async adapters,
and the stdio wire format."""

from __future__ import annotations

import asyncio
import io
import json
import random

import pytest

from repro.core.generators import random_qhorn1
from repro.core.serialize import question_from_dict
from repro.core.tuples import Question
from repro.interactive import (
    LearningSession,
    SessionSnapshot,
    SnapshotError,
)
from repro.learning import Qhorn1Learner
from repro.oracle import (
    AsyncOracle,
    CountingOracle,
    QueryOracle,
    QueueUserOracle,
    ask_all_async,
)
from repro.oracle.expression import ExpressionQuestion
from repro.protocol import (
    Finished,
    LearnerProtocol,
    ProtocolError,
    Round,
    answer_round,
    as_protocol,
    ask_one,
    ask_round,
    drive,
    run_inline,
)
from repro.protocol.stdio import serve_stdio


def q(n, *masks):
    return Question.of(n, masks)


class TestRound:
    def test_rejects_empty(self):
        with pytest.raises(ProtocolError):
            Round(())

    def test_len(self):
        assert len(Round((q(2, 3), q(2, 1)))) == 2


class TestAskHelpers:
    def test_ask_one_single_unbatched_round(self):
        def steps():
            return (yield from ask_one(q(2, 3)))

        protocol = LearnerProtocol(steps())
        event = protocol.start()
        assert isinstance(event, Round)
        assert not event.batched and len(event) == 1
        done = protocol.feed([True])
        assert isinstance(done, Finished) and done.result is True

    def test_ask_round_empty_asks_nothing(self):
        def steps():
            answers = yield from ask_round([])
            return answers

        assert isinstance(LearnerProtocol(steps()).start(), Finished)

    def test_ask_round_batched(self):
        def steps():
            return (yield from ask_round([q(2, 1), q(2, 2)]))

        protocol = LearnerProtocol(steps())
        event = protocol.start()
        assert event.batched and len(event) == 2
        assert protocol.feed([True, False]).result == [True, False]


class TestLearnerProtocol:
    def _steps(self):
        a = yield from ask_one(q(2, 1))
        b = yield from ask_round([q(2, 2), q(2, 3)])
        return (a, b)

    def test_state_machine(self):
        protocol = LearnerProtocol(self._steps())
        assert protocol.pending is None and not protocol.finished
        first = protocol.start()
        assert protocol.pending is first and protocol.rounds == 1
        with pytest.raises(ProtocolError):
            protocol.result
        second = protocol.feed([True])
        assert len(second) == 2
        done = protocol.feed([False, True])
        assert isinstance(done, Finished)
        assert protocol.finished and protocol.result == (True, [False, True])
        assert protocol.questions_answered == 3

    def test_double_start_rejected(self):
        protocol = LearnerProtocol(self._steps())
        protocol.start()
        with pytest.raises(ProtocolError, match="already started"):
            protocol.start()

    def test_feed_before_start_rejected(self):
        protocol = LearnerProtocol(self._steps())
        with pytest.raises(ProtocolError, match="before start"):
            protocol.feed([True])

    def test_wrong_answer_count_rejected(self):
        protocol = LearnerProtocol(self._steps())
        protocol.start()
        with pytest.raises(ProtocolError, match="1 questions, got 2"):
            protocol.feed([True, False])

    def test_feed_after_finish_rejected(self):
        def steps():
            return (yield from ask_one(q(2, 1)))

        protocol = LearnerProtocol(steps())
        protocol.start()
        protocol.feed([True])
        with pytest.raises(ProtocolError, match="no pending round"):
            protocol.feed([True])

    def test_non_round_yield_rejected(self):
        def steps():
            yield "not a round"

        with pytest.raises(ProtocolError, match="expected a Round"):
            LearnerProtocol(steps()).start()


class TestAsProtocol:
    def test_accepts_learner_generator_protocol(self):
        target = random_qhorn1(3, random.Random(5))
        learner = Qhorn1Learner(QueryOracle(target))
        assert isinstance(as_protocol(learner), LearnerProtocol)
        assert isinstance(as_protocol(learner.steps()), LearnerProtocol)
        protocol = LearnerProtocol(learner.steps())
        assert as_protocol(protocol) is protocol

    def test_rejects_other_objects(self):
        with pytest.raises(TypeError):
            as_protocol(42)


class TestRunInline:
    def test_returns_value(self):
        def steps():
            return 7
            yield  # pragma: no cover

        assert run_inline(steps()) == 7

    def test_rejects_yielding_steps(self):
        def steps():
            yield Round((q(2, 1),))

        with pytest.raises(ProtocolError, match="unexpectedly yielded"):
            run_inline(steps())


class TestDrive:
    def test_drive_matches_learn(self):
        target = random_qhorn1(4, random.Random(3))
        a = CountingOracle(QueryOracle(target))
        b = CountingOracle(QueryOracle(target))
        r1 = Qhorn1Learner(a).learn()
        r2 = drive(Qhorn1Learner(b), b)
        assert r1.query == r2.query
        assert vars(a.stats) == vars(b.stats)

    def test_answer_round_dispatch(self):
        oracle = CountingOracle(QueryOracle(random_qhorn1(3, random.Random(1))))
        single = Round((q(3, 7),), batched=False)
        batch = Round((q(3, 7), q(3, 5)), batched=True)
        answer_round(oracle, single)
        answer_round(oracle, batch)
        assert oracle.stats.rounds == 2
        assert oracle.stats.batched_questions == 2

    def test_answer_round_expression_dispatch(self):
        class Fake:
            def requires_conjunction(self, variables):
                return True

            def requires_implication(self, body, head):
                return False

        round_ = Round(
            (
                ExpressionQuestion.conjunction([0, 1]),
                ExpressionQuestion.implication([0], 2),
            )
        )
        assert answer_round(Fake(), round_) == [True, False]


class TestExpressionQuestion:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExpressionQuestion(kind="nope", variables=(0,))
        with pytest.raises(ValueError):
            ExpressionQuestion(kind="implication", variables=(0,))
        with pytest.raises(ValueError):
            ExpressionQuestion(kind="conjunction", variables=(0,), head=1)


class TestAsyncAdapters:
    def test_ask_all_async_chunking_and_fallback(self):
        class AskOnly:
            def __init__(self):
                self.n = 2
                self.asked = 0

            async def ask(self, question):
                self.asked += 1
                return True

        async def main():
            target = random_qhorn1(3, random.Random(9))
            sync = CountingOracle(QueryOracle(target))
            wrapped = AsyncOracle(sync)
            questions = [q(3, m) for m in range(8)]
            answers = await ask_all_async(wrapped, questions, chunk_size=3)
            assert answers == [QueryOracle(target).ask(x) for x in questions]
            assert sync.stats.rounds == 3  # ceil(8 / 3) transport calls

            ask_only = AskOnly()
            assert await ask_all_async(ask_only, [q(2, 1)] * 4) == [True] * 4
            assert ask_only.asked == 4

        asyncio.run(main())

    def test_queue_user_oracle_round_trip(self):
        async def main():
            oracle = QueueUserOracle(3)

            async def user():
                questions = await oracle.outbox.get()
                await oracle.inbox.put([True] * len(questions))

            task = asyncio.ensure_future(user())
            answers = await oracle.ask_many([q(3, 1), q(3, 2)])
            await task
            assert answers == [True, True]

        asyncio.run(main())

    def test_queue_user_oracle_reasks_on_mismatch(self):
        """A mismatched answer batch re-posts the same questions to the
        outbox (reject-and-reprompt) instead of wedging the dialogue."""

        async def main():
            oracle = QueueUserOracle(3)
            questions = [q(3, 1), q(3, 2)]

            async def user():
                first = await oracle.outbox.get()
                await oracle.inbox.put([True])  # wrong size → re-ask
                second = await oracle.outbox.get()
                assert second == first  # the same batch, re-posted
                await oracle.inbox.put(None)  # not a batch → re-ask
                await oracle.outbox.get()
                await oracle.inbox.put([True, False])

            task = asyncio.ensure_future(user())
            answers = await oracle.ask_many(questions)
            await task
            assert answers == [True, False]
            assert oracle.reasks == 2

        asyncio.run(main())

    def test_queue_user_oracle_gives_up_after_max_reasks(self):
        async def main():
            oracle = QueueUserOracle(3, max_reasks=1)

            async def user():
                for _ in range(2):
                    await oracle.outbox.get()
                    await oracle.inbox.put([True])

            task = asyncio.ensure_future(user())
            with pytest.raises(
                ProtocolError, match="answered 1 of 2.*giving up after 1"
            ):
                await oracle.ask_many([q(3, 1), q(3, 2)])
            await task
            assert oracle.reasks == 2

        asyncio.run(main())


class TestSessionStepMode:
    def _factory(self):
        return lambda oracle: Qhorn1Learner(oracle)

    def test_construction_oracle_refuses_to_answer(self):
        session = LearningSession(self._factory(), n=3)
        event = session.step()
        assert isinstance(event, Round)
        with pytest.raises(ProtocolError, match="3 questions, got 1"):
            session.feed([True])  # wrong count for the n-question round
        # and run() without an oracle is rejected outright
        with pytest.raises(ProtocolError, match="oracle"):
            LearningSession(self._factory(), n=3).run()

    def test_needs_n_or_oracle(self):
        session = LearningSession(self._factory())
        with pytest.raises(ProtocolError, match="explicit n"):
            session.start()

    def test_snapshot_before_start_rejected(self):
        session = LearningSession(self._factory(), n=3)
        with pytest.raises(ProtocolError, match="before start"):
            session.snapshot()

    def test_resume_needs_fresh_session(self):
        session = LearningSession(self._factory(), n=3)
        session.step()
        with pytest.raises(ProtocolError, match="fresh session"):
            session.resume(SessionSnapshot(n=3))

    def test_resume_rejects_wrong_n(self):
        session = LearningSession(self._factory(), n=3)
        with pytest.raises(SnapshotError, match="n=4"):
            session.resume(SessionSnapshot(n=4))

    def test_resume_rejects_mid_round_log(self):
        target = random_qhorn1(3, random.Random(2))
        oracle = QueryOracle(target)
        session = LearningSession(self._factory(), n=3)
        event = session.step()
        session.feed(answer_round(oracle, event))
        snapshot = session.snapshot()
        snapshot.responses.pop()  # corrupt: ends mid-round now
        fresh = LearningSession(self._factory(), n=3)
        with pytest.raises(SnapshotError, match="mid-round"):
            fresh.resume(snapshot)

    def test_resume_detects_divergence(self):
        target = random_qhorn1(3, random.Random(2))
        oracle = QueryOracle(target)
        session = LearningSession(self._factory(), n=3)
        event = session.step()
        event = session.feed(answer_round(oracle, event))
        assert isinstance(event, Round)
        snapshot = session.snapshot()
        snapshot.pending = [q(3, 0)]  # not what the learner will ask
        fresh = LearningSession(self._factory(), n=3)
        with pytest.raises(SnapshotError, match="diverged"):
            fresh.resume(snapshot)

    def test_snapshot_dict_round_trip(self):
        snapshot = SessionSnapshot(
            n=3,
            responses=[True, False],
            pending=[q(3, 7), q(3, 1)],
            pending_batched=False,
            restarts=2,
        )
        data = json.loads(json.dumps(snapshot.to_dict()))
        assert SessionSnapshot.from_dict(data) == snapshot

    def test_snapshot_version_guard(self):
        with pytest.raises(SnapshotError, match="version"):
            SessionSnapshot.from_dict({"version": 99, "n": 2, "responses": []})


class TestServeStdio:
    def _serve(self, lines, n=3, resume=None, factory=None):
        factory = factory or (lambda oracle: Qhorn1Learner(oracle))
        session = LearningSession(factory, n=n)
        stdout = io.StringIO()
        code = serve_stdio(
            session, io.StringIO("".join(lines)), stdout, resume=resume
        )
        messages = [
            json.loads(line) for line in stdout.getvalue().splitlines()
        ]
        return code, messages

    def test_full_session_over_the_wire(self):
        target = random_qhorn1(3, random.Random(4))
        oracle = QueryOracle(target)
        # Answer adaptively: serve twice, replaying recorded answers —
        # first pass harvests the questions round by round.
        lines: list[str] = []
        while True:
            code, messages = self._serve(lines + ['{"type":"quit"}\n'])
            last = messages[-1]
            if last["type"] == "finished":
                break
            assert last["type"] == "round"
            questions = [question_from_dict(d) for d in last["questions"]]
            answers = [oracle.ask(x) for x in questions]
            lines.append(json.dumps({"type": "answers", "answers": answers}) + "\n")
        code, messages = self._serve(lines)
        assert code == 0
        finished = messages[-1]
        assert finished["query"] == target.shorthand()
        assert finished["questions"] == sum(
            len(m["questions"]) for m in messages if m["type"] == "round"
        )

    def test_snapshot_exchange_and_resume(self):
        target = random_qhorn1(3, random.Random(4))
        oracle = QueryOracle(target)
        code, messages = self._serve(['{"type":"snapshot"}\n', '{"type":"quit"}\n'])
        assert code == 1
        snapshot_msg = next(m for m in messages if m["type"] == "snapshot")
        snapshot = SessionSnapshot.from_dict(snapshot_msg["snapshot"])
        assert snapshot.responses == []

        lines: list[str] = []
        while True:
            code, messages = self._serve(
                lines + ['{"type":"quit"}\n'], resume=snapshot
            )
            last = messages[-1]
            if last["type"] == "finished":
                break
            questions = [question_from_dict(d) for d in last["questions"]]
            answers = [oracle.ask(x) for x in questions]
            lines.append(json.dumps({"answers": answers}) + "\n")
        assert last["query"] == target.shorthand()

    def test_error_recovery(self):
        code, messages = self._serve(
            [
                "not json\n",
                '{"type":"mystery"}\n',
                '{"type":"answers","answers":[]}\n',  # wrong count
                '{"type":"quit"}\n',
            ]
        )
        assert code == 1
        kinds = [m["type"] for m in messages]
        assert kinds.count("error") == 3

    def test_answers_payload_validation(self):
        """A message with no "answers" key must not silently feed [],
        and a non-list value must not raise an uncaught TypeError."""
        code, messages = self._serve(
            [
                '{"type":"answers"}\n',
                '{"answers": true}\n',
                '{"answers": "yes"}\n',
                '{"answers": {"0": true}}\n',
                '{"type":"quit"}\n',
            ]
        )
        assert code == 1
        errors = [m["message"] for m in messages if m["type"] == "error"]
        assert len(errors) == 4
        assert 'no "answers" key' in errors[0]
        for message in errors[1:]:
            assert "must be a list" in message

    def test_snapshot_failure_keeps_serving(self, monkeypatch):
        """A SnapshotError mid-serve becomes an error line, not a server
        crash; the session stays parked at its round."""
        session = LearningSession(lambda oracle: Qhorn1Learner(oracle), n=3)

        def boom():
            raise SnapshotError("simulated mid-round guard")

        monkeypatch.setattr(session, "snapshot", boom)
        stdout = io.StringIO()
        code = serve_stdio(
            session,
            io.StringIO('{"type":"snapshot"}\n{"type":"quit"}\n'),
            stdout,
        )
        assert code == 1
        messages = [
            json.loads(line) for line in stdout.getvalue().splitlines()
        ]
        kinds = [m["type"] for m in messages]
        assert kinds == ["round", "error"]
        error = messages[-1]
        assert "mid-round guard" in error["message"]

    def test_eof_mid_session(self):
        code, messages = self._serve([])
        assert code == 1
        assert messages[-1]["type"] == "round"


class TestExpressionPayloadWire:
    """Expression-question rounds serialize through snapshots and the
    stdio wire exactly like membership rounds (review finding)."""

    def test_payload_round_trip(self):
        from repro.protocol import payload_from_dict, payload_to_dict

        for payload in (
            q(3, 5, 2),
            ExpressionQuestion.conjunction([0, 2]),
            ExpressionQuestion.implication([1], 0),
        ):
            assert payload_from_dict(
                json.loads(json.dumps(payload_to_dict(payload)))
            ) == payload
        with pytest.raises(TypeError, match="cannot serialize"):
            payload_to_dict("not a question")

    def test_expression_session_snapshot_resume(self):
        from repro.core.generators import random_role_preserving
        from repro.learning import ExpressionLearner
        from repro.oracle import ExpressionOracle
        from repro.protocol.stdio import round_to_dict

        target = random_role_preserving(4, random.Random(6), theta=2)
        truth = ExpressionOracle(target)

        def factory(oracle):
            return ExpressionLearner(_NSized(oracle.n))
        session = LearningSession(factory, n=4)
        event = session.step()
        rounds = 0
        while not isinstance(event, Finished):
            rounds += 1
            assert round_to_dict(event, rounds - 1)["questions"]
            if rounds == 3:
                snapshot = SessionSnapshot.from_dict(
                    json.loads(json.dumps(session.snapshot().to_dict()))
                )
                session = LearningSession(factory, n=4)
                event = session.resume(snapshot)
            answers = [x.answer_with(truth) for x in event.questions]
            event = session.feed(answers)
        assert session.result.query == ExpressionLearner(
            ExpressionOracle(target)
        ).learn().query


class _NSized:
    """Expression-oracle-shaped construction stub: only carries n."""

    def __init__(self, n):
        self.n = n
