"""Integration tests combining subsystems the way a deployment would.

Each test chains at least three subsystems: learning + verification +
revision + SQL + serialization + class checking, over the data domain.
"""

from __future__ import annotations

import random

from repro.core.generators import random_role_preserving
from repro.core.normalize import canonicalize
from repro.core.parser import parse_query
from repro.core.serialize import query_from_json, query_to_json
from repro.data import QueryEngine
from repro.data.chocolate import random_store, storefront_vocabulary
from repro.data.sql import SqliteEngine
from repro.interactive.verbalize import verbalize
from repro.learning import (
    Qhorn1Learner,
    RolePreservingLearner,
    revise_query,
)
from repro.learning.class_check import check_class_membership
from repro.oracle import CountingOracle, QueryOracle
from repro.verification import verify_query


class TestLearnSerializeReviseExecute:
    def test_full_lifecycle(self, rng):
        """learn → serialize → (intent drifts) → revise → verify → SQL."""
        vocab = storefront_vocabulary()
        store = random_store(60, random.Random(99))

        # 1. learn the original intent
        v1 = parse_query("∀x1 ∃x2x3", n=4)
        learned = RolePreservingLearner(QueryOracle(v1)).learn().query
        assert canonicalize(learned) == canonicalize(v1)

        # 2. persist and reload
        wire = query_to_json(learned)
        restored = query_from_json(wire)

        # 3. the user's intent drifts; revise the stored query
        v2 = parse_query("∀x1 ∃x2x3x4", n=4)
        revised = revise_query(restored, QueryOracle(v2)).query
        assert canonicalize(revised) == canonicalize(v2)
        assert verify_query(revised, QueryOracle(v2)).verified

        # 4. execute through both engines and agree
        memory = QueryEngine(store, vocab)
        with SqliteEngine(store, vocab) as db:
            assert db.execute(revised) == sorted(
                o.key for o in memory.execute(revised)
            )

    def test_verbalized_summary_mentions_every_expression(self, rng):
        target = parse_query("∀x1 ∃x2x3", n=4)
        learned = Qhorn1Learner(QueryOracle(target)).learn().query
        names = [p.name for p in storefront_vocabulary().propositions]
        text = verbalize(learned, names, noun="chocolate", group_noun="box")
        assert "every chocolate is isDark" in text
        assert "at least one chocolate is isSugarFree and hasNuts" in text


class TestClassCheckThenLearn:
    def test_check_then_trust_pipeline(self, rng):
        """A cautious client checks the class before trusting the learner."""
        for _ in range(5):
            target = random_role_preserving(5, rng, theta=2)
            oracle = QueryOracle(target)
            report = check_class_membership(
                oracle, "role-preserving", probes=50, rng=rng
            )
            assert report.consistent
            # the report's candidate IS the learned query — no second pass
            assert canonicalize(report.candidate) == canonicalize(target)

    def test_question_budget_accounting_across_subsystems(self, rng):
        """CountingOracle totals across learn + verify + revise compose."""
        target = random_role_preserving(6, rng, theta=2)
        oracle = CountingOracle(QueryOracle(target))
        learned = RolePreservingLearner(oracle).learn().query
        after_learning = oracle.questions_asked
        verify_query(learned, oracle)
        after_verify = oracle.questions_asked
        revise_query(learned, oracle)
        after_revise = oracle.questions_asked
        assert after_learning < after_verify < after_revise
        assert oracle.stats.questions == after_revise


class TestCrossLearnerAgreement:
    def test_three_learners_one_truth(self, rng):
        """qhorn-1, role-preserving and revision-from-anything all land on
        the same canonical query for qhorn-1 targets."""
        from repro.core.generators import random_qhorn1

        for _ in range(8):
            n = rng.randint(3, 7)
            target = random_qhorn1(n, rng)
            via_q1 = Qhorn1Learner(QueryOracle(target)).learn().query
            via_rp = RolePreservingLearner(QueryOracle(target)).learn().query
            start = parse_query("∃x1", n=n)
            via_rev = revise_query(start, QueryOracle(target)).query
            assert (
                canonicalize(via_q1)
                == canonicalize(via_rp)
                == canonicalize(via_rev)
                == canonicalize(target)
            )
