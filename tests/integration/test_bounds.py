"""Integration tests: the theorems' bounds hold on measured sweeps.

Small-scale versions of the benchmark experiments, run as assertions so CI
catches regressions in question complexity, not just correctness.
"""

from __future__ import annotations

import random
import statistics
from itertools import chain, combinations

from repro.analysis import empirical_exponent
from repro.core.generators import (
    head_pair_query,
    random_qhorn1,
    random_role_preserving,
    theta_body_query,
    uni_alias_query,
)
from repro.learning import (
    HeadPairLearner,
    NaiveQhorn1Learner,
    Qhorn1Learner,
    RolePreservingLearner,
)
from repro.oracle import (
    CandidateEliminationAdversary,
    CountingOracle,
    QueryOracle,
)
from repro.verification import build_verification_set


def mean_questions(learner_cls, targets) -> float:
    counts = []
    for t in targets:
        oracle = CountingOracle(QueryOracle(t))
        learner_cls(oracle).learn()
        counts.append(oracle.questions_asked)
    return statistics.mean(counts)


class TestQhorn1Scaling:
    def test_binary_search_beats_naive(self):
        rng = random.Random(1)
        ns = (12, 24, 48)
        for n in ns:
            targets = [random_qhorn1(n, rng) for _ in range(5)]
            fast = mean_questions(Qhorn1Learner, targets)
            naive = mean_questions(NaiveQhorn1Learner, targets)
            assert fast < naive, (n, fast, naive)

    def test_empirical_exponent_subquadratic(self):
        rng = random.Random(2)
        ns = [8, 16, 32, 64]
        means = [
            mean_questions(
                Qhorn1Learner, [random_qhorn1(n, rng) for _ in range(6)]
            )
            for n in ns
        ]
        # n lg n has log-log slope ~1.2 over this range; n² has 2.0.
        assert empirical_exponent(ns, means) < 1.6

    def test_naive_exponent_is_quadratic(self):
        rng = random.Random(3)
        ns = [8, 16, 32]
        means = [
            mean_questions(
                NaiveQhorn1Learner, [random_qhorn1(n, rng) for _ in range(4)]
            )
            for n in ns
        ]
        assert empirical_exponent(ns, means) > 1.6


class TestRolePreservingScaling:
    def test_polynomial_in_n_for_fixed_theta(self):
        rng = random.Random(4)
        ns = [6, 9, 12, 15]
        means = []
        for n in ns:
            targets = [
                random_role_preserving(
                    n, rng, n_heads=2, theta=2, n_conjunctions=2
                )
                for _ in range(5)
            ]
            means.append(mean_questions(RolePreservingLearner, targets))
        # Theorem 3.5's n^{θ+1} with θ=2 caps the slope at 3.
        assert empirical_exponent(ns, means) < 3.2


class TestVerificationScaling:
    def test_verification_size_tracks_k_not_n(self):
        rng = random.Random(5)
        sizes = []
        for n in (6, 10, 14):
            q = random_role_preserving(
                n, rng, n_heads=2, theta=1, n_conjunctions=2
            )
            sizes.append(build_verification_set(q).size)
        # fixed k: the set size must not grow with n
        assert max(sizes) - min(sizes) <= 6


class TestLowerBoundFamilies:
    def test_theorem21_adversary_near_exhaustion(self):
        """Each question eliminates at most one Uni∧Alias candidate."""
        n = 4
        candidates = [
            uni_alias_query(n, list(alias))
            for alias in chain.from_iterable(
                combinations(range(n), r) for r in range(n + 1)
            )
        ]
        adv = CandidateEliminationAdversary(candidates)
        # ask the only informative question shape for every alias pattern
        from repro.core import tuples as bt
        from repro.core.tuples import Question

        top = bt.all_true(n)
        for alias in chain.from_iterable(
            combinations(range(n), r) for r in range(n + 1)
        ):
            pattern = bt.with_false(top, list(alias))
            adv.ask(Question.of(n, [top, pattern]))
            if adv.is_identified():
                break
        assert adv.questions_asked >= len(candidates) - 1

    def test_head_pair_questions_quadratic_in_n(self):
        counts = []
        ns = (12, 24)
        for n in ns:
            # worst case: the pair straddles the last two blocks, so every
            # single-block and almost every cross-block probe comes first
            target = head_pair_query(n, n - 3, n - 1)
            learner = HeadPairLearner(QueryOracle(target), max_tuples=4)
            learner.learn()
            counts.append(learner.questions_asked)
        assert counts[1] / counts[0] > 2.5  # quadratic-ish growth

    def test_theta_body_learnable_but_expensive(self):
        """Thm 3.6's family is still exactly learnable; cost grows with θ."""
        from repro.core.normalize import canonicalize

        q6 = theta_body_query(6, 3)
        oracle = CountingOracle(QueryOracle(q6))
        result = RolePreservingLearner(oracle).learn()
        assert canonicalize(result.query) == canonicalize(q6)
        cost_theta3 = oracle.questions_asked

        q_simple = theta_body_query(6, 2)
        oracle2 = CountingOracle(QueryOracle(q_simple))
        RolePreservingLearner(oracle2).learn()
        assert cost_theta3 > oracle2.questions_asked
