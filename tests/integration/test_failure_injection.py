"""Failure injection: how the system behaves outside its assumptions.

The paper's guarantees hold for consistent users whose intent lies in the
stated class.  A production library must also behave sanely when those
assumptions break: wrong class, inconsistent answers, interfering
propositions, adversarial users.  These tests pin down that behaviour.
"""

from __future__ import annotations

import random

import pytest

from repro.core.generators import (
    random_qhorn1,
    random_role_preserving,
    uni_alias_query,
)
from repro.core.normalize import canonicalize
from repro.core.parser import parse_query
from repro.core.tuples import Question
from repro.learning import Qhorn1Learner, RolePreservingLearner
from repro.learning.class_check import check_class_membership
from repro.oracle import FunctionOracle, NoisyOracle, QueryOracle
from repro.verification import verify_query


class TestWrongClassTargets:
    def test_qhorn1_learner_on_theta2_target_terminates(self, rng):
        """A role-preserving (θ=2) target is outside qhorn-1; the learner
        must terminate with *some* qhorn-1 query, and verification must
        expose the mismatch."""
        target = parse_query("∀x1x2→x3 ∀x2x4→x3 ∃x1x4", n=4)
        result = Qhorn1Learner(QueryOracle(target)).learn()
        assert result.query.is_qhorn1()
        assert not verify_query(result.query, QueryOracle(target)).verified

    def test_role_preserving_learner_on_alias_target_terminates(self):
        """Thm 2.1's alias queries are outside role-preserving qhorn; the
        learner terminates (body cap) and the class check flags it."""
        target = uni_alias_query(4, alias_vars=[1, 3])
        oracle = QueryOracle(target)
        result = RolePreservingLearner(oracle).learn()
        assert result.query.is_role_preserving()
        report = check_class_membership(
            QueryOracle(target), "role-preserving", probes=300,
            rng=random.Random(1),
        )
        assert not report.consistent

    def test_learned_wrong_class_query_detected_not_silent(self, rng):
        """Whenever the qhorn-1 learner mislearns a non-qhorn-1 target, the
        O(k) verification set catches it — learn-then-verify is the safe
        composition."""
        for _ in range(10):
            target = random_role_preserving(5, rng, theta=2)
            learned = Qhorn1Learner(QueryOracle(target)).learn().query
            agree = canonicalize(learned) == canonicalize(target)
            verified = verify_query(learned, QueryOracle(target)).verified
            assert verified == agree


class TestInconsistentUsers:
    def test_random_answer_oracle_never_hangs(self, rng):
        """A coin-flipping user cannot make the learners loop forever."""
        for n in (3, 5, 7):
            flip = FunctionOracle(n, lambda q: rng.random() < 0.5)
            result = RolePreservingLearner(flip).learn()
            assert result.query.n == n  # terminated with some query

    def test_always_yes_oracle(self):
        """'Everything is an answer' = the empty query."""
        yes = FunctionOracle(4, lambda q: True)
        result = RolePreservingLearner(yes).learn()
        assert not result.query.universals
        assert not result.query.existentials

    def test_always_no_oracle(self):
        """'Nothing is an answer' is unsatisfiable in qhorn (every query
        accepts {1^n}); the learner still terminates."""
        no = FunctionOracle(4, lambda q: False)
        result = RolePreservingLearner(no).learn()
        assert result.query.n == 4

    def test_noisy_oracle_detected_by_verification(self, rng):
        """One flipped answer either leaves the result correct or the
        verification set catches the corruption (high probability)."""
        caught, total = 0, 0
        for _ in range(20):
            target = random_qhorn1(6, rng)
            noisy = NoisyOracle(QueryOracle(target), 0.05, rng)
            learned = Qhorn1Learner(noisy).learn().query
            if canonicalize(learned) == canonicalize(target):
                continue
            total += 1
            if not verify_query(learned, QueryOracle(target)).verified:
                caught += 1
        assert caught == total  # every corrupted result was caught


class TestOracleContractViolations:
    def test_width_mismatch_raises(self):
        oracle = QueryOracle(parse_query("∃x1x2"))
        with pytest.raises(ValueError):
            oracle.ask(Question.from_strings("101"))

    def test_reviser_handles_totally_wrong_given(self, rng):
        """Revision from a maximally wrong query still lands exactly."""
        from repro.learning import revise_query

        for _ in range(10):
            n = rng.randint(3, 6)
            given = parse_query(
                " ".join(f"∀x{i + 1}" for i in range(n))
            )
            intended = random_role_preserving(n, rng, theta=2)
            result = revise_query(given, QueryOracle(intended))
            assert canonicalize(result.query) == canonicalize(intended)
