"""Integration tests: the full DataPlay-style pipeline over real data.

Propositions -> learning with rendered example boxes -> verification ->
execution against a synthetic store.  This is the workflow the paper's
introduction motivates, run end to end in the chocolate domain.
"""

from __future__ import annotations

import random


from repro.core.normalize import canonicalize
from repro.core.parser import parse_query
from repro.data import ExampleFactory, QueryEngine
from repro.data.chocolate import (
    intro_query,
    paper_figure1_relation,
    paper_vocabulary,
    random_store,
    storefront_vocabulary,
)
from repro.interactive import LearningSession
from repro.learning import Qhorn1Learner, RolePreservingLearner
from repro.oracle import CountingOracle, QueryOracle
from repro.verification import verify_query


class DataDomainUser:
    """Simulated user who sees *data objects* (chocolate boxes), not bit
    strings: every question is synthesized into rows, abstracted back, and
    evaluated against the intended query — mirroring a real interaction."""

    def __init__(self, intended, vocabulary, factory):
        self.intended = intended
        self.vocabulary = vocabulary
        self.factory = factory
        self.n = vocabulary.n
        self.boxes_seen = 0

    def ask(self, question):
        box = self.factory.from_database(question)
        self.boxes_seen += 1
        tuples = self.vocabulary.abstract_object(box.rows)
        return self.intended.evaluate(tuples)


class TestChocolateWorkflow:
    def test_learn_intro_query_from_rendered_boxes(self):
        """Learn the intro's intended query purely from synthesized boxes."""
        vocab = storefront_vocabulary()
        store = random_store(80, random.Random(7))
        user = DataDomainUser(
            intro_query(), vocab, ExampleFactory(vocab, database=store)
        )
        result = Qhorn1Learner(user).learn()
        assert canonicalize(result.query) == canonicalize(intro_query())
        assert user.boxes_seen > 0

    def test_learned_query_filters_store_identically(self):
        vocab = storefront_vocabulary()
        store = random_store(120, random.Random(11))
        user = DataDomainUser(intro_query(), vocab, ExampleFactory(vocab))
        learned = Qhorn1Learner(user).learn().query
        engine = QueryEngine(store, vocab)
        assert {o.key for o in engine.execute(learned)} == {
            o.key for o in engine.execute(intro_query())
        }

    def test_verification_after_learning(self):
        vocab = storefront_vocabulary()
        user = DataDomainUser(intro_query(), vocab, ExampleFactory(vocab))
        learned = RolePreservingLearner(user).learn().query
        outcome = verify_query(learned, QueryOracle(intro_query()))
        assert outcome.verified

    def test_wrong_draft_query_rejected_by_user(self):
        """DataPlay's core loop: a draft query is shown to the user via its
        verification set; the user's true intent contradicts a label."""
        draft = parse_query("∀x1 ∃x2", n=4)  # all dark, some sugar-free
        outcome = verify_query(draft, QueryOracle(intro_query()))
        assert not outcome.verified

    def test_session_transcript_in_data_domain(self):
        vocab = paper_vocabulary()
        target = parse_query("∀x1 ∃x2x3")
        session = LearningSession(
            Qhorn1Learner,
            QueryOracle(target),
            renderer=vocab.render_question,
        )
        result = session.run()
        assert canonicalize(result.query) == canonicalize(target)
        assert all("origin" in e.rendered for e in result.transcript)

    def test_fig1_boxes_classified_like_paper(self):
        engine = QueryEngine(paper_figure1_relation(), paper_vocabulary())
        query = parse_query("∀x1 ∃x2x3")
        assert not engine.matches(query, engine.relation.get("Global Ground"))
        assert not engine.matches(query, engine.relation.get("Europe's Finest"))


class TestLearnThenVerifyRandom:
    def test_learn_verify_execute_pipeline(self, rng):
        """Random role-preserving targets: learn → verify → execute, with
        the learned query agreeing with the target on every store object."""
        from repro.core.generators import random_role_preserving

        vocab = storefront_vocabulary()
        store = random_store(50, random.Random(23))
        engine = QueryEngine(store, vocab)
        for _ in range(10):
            target = random_role_preserving(4, rng, theta=2)
            oracle = CountingOracle(QueryOracle(target))
            learned = RolePreservingLearner(oracle).learn().query
            assert verify_query(learned, QueryOracle(target)).verified
            assert {o.key for o in engine.execute(learned)} == {
                o.key for o in engine.execute(target)
            }
