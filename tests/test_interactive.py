"""Tests for interactive sessions: transcripts, corrections, verification."""

from __future__ import annotations


import pytest

from repro.core.generators import random_qhorn1
from repro.core.parser import parse_query
from repro.data.chocolate import paper_vocabulary
from repro.interactive import (
    CorrectionLoop,
    LearningSession,
    Transcript,
    VerificationSession,
)
from repro.learning import Qhorn1Learner, RolePreservingLearner
from repro.oracle import QueryOracle
from tests.conftest import assert_equivalent


class TestTranscript:
    def test_records_in_order(self):
        from repro.core.tuples import Question

        t = Transcript()
        q1, q2 = Question.from_strings("11"), Question.from_strings("10")
        t.record(q1, True)
        t.record(q2, False)
        assert len(t) == 2
        assert t.responses() == [True, False]
        assert [e.index for e in t] == [0, 1]

    def test_format_history_labels(self):
        from repro.core.tuples import Question

        t = Transcript()
        t.record(Question.from_strings("11"), True)
        t.record(Question.from_strings("00"), False)
        history = t.format_history()
        assert "#0 [answer]" in history
        assert "#1 [non-answer]" in history

    def test_renderer_applied(self):
        from repro.core.tuples import Question

        t = Transcript()
        entry = t.record(
            Question.from_strings("111"), True,
            renderer=paper_vocabulary().render_question,
        )
        assert "origin" in entry.rendered


class TestLearningSession:
    def test_clean_session(self):
        target = parse_query("∀x1x2→x3 ∃x4x5 ∀x6", n=6)
        session = LearningSession(Qhorn1Learner, QueryOracle(target))
        result = session.run()
        assert_equivalent(result.query, target)
        assert result.questions_asked == len(result.transcript)
        assert result.restarts == 0

    def test_works_with_role_preserving_learner(self):
        target = parse_query("∀x1x4→x5 ∀x3x4→x5 ∃x1x2x3", n=5)
        session = LearningSession(RolePreservingLearner, QueryOracle(target))
        result = session.run()
        assert_equivalent(result.query, target)

    def test_rendered_transcript(self):
        target = parse_query("∀x1 ∃x2x3")
        session = LearningSession(
            Qhorn1Learner,
            QueryOracle(target),
            renderer=paper_vocabulary().render_question,
        )
        result = session.run()
        assert all("origin" in e.rendered for e in result.transcript)

    def test_manual_correction_restart(self):
        """§5: fix one wrong response, replay the prefix, finish live."""
        target = parse_query("∀x1 ∃x2", n=2)
        truth = QueryOracle(target)

        class OneLie:
            """Answers truthfully except for the very first question."""

            n = 2

            def __init__(self):
                self.count = 0

            def ask(self, q):
                self.count += 1
                truthful = truth.ask(q)
                return not truthful if self.count == 1 else truthful

        session = LearningSession(Qhorn1Learner, OneLie())
        first = session.run()
        # repair response #0 and restart from there, answering live truthfully
        fixed = session.rerun_with_correction(
            first, 0, truth.ask(first.transcript.entries[0].question), live=truth
        )
        assert fixed.restarts == 1
        assert_equivalent(fixed.query, target)


class TestCorrectionLoop:
    def test_recovers_exact_query_under_noise(self, rng):
        for _ in range(15):
            target = random_qhorn1(rng.randint(2, 8), rng)
            loop = CorrectionLoop(
                Qhorn1Learner, target, p_flip=0.1, rng=rng, max_restarts=200
            )
            result = loop.run()
            assert_equivalent(result.query, target)

    def test_zero_noise_needs_no_restart(self, rng):
        target = random_qhorn1(6, rng)
        loop = CorrectionLoop(Qhorn1Learner, target, p_flip=0.0, rng=rng)
        result = loop.run()
        assert result.restarts == 0

    def test_restart_budget_enforced(self, rng):
        target = random_qhorn1(6, rng)
        loop = CorrectionLoop(
            Qhorn1Learner, target, p_flip=1.0, rng=rng, max_restarts=3
        )
        with pytest.raises(RuntimeError):
            loop.run()


class TestVerificationSession:
    def test_pass_and_transcript(self):
        q = parse_query("∀x1→x2 ∃x3", n=3)
        session = VerificationSession(q, QueryOracle(q))
        outcome = session.run()
        assert outcome.verified
        assert len(session.transcript) == outcome.questions_asked

    def test_detects_and_stops(self):
        given = parse_query("∃x1x2", n=2)
        intended = parse_query("∃x1 ∃x2", n=2)
        session = VerificationSession(given, QueryOracle(intended))
        outcome = session.run(stop_at_first=True)
        assert not outcome.verified
        assert len(outcome.disagreements) == 1
