"""White-box tests for verification-set internals (A3 roots, edge cases)."""

from __future__ import annotations

import pytest

from repro.core import tuples as bt
from repro.core.parser import parse_query
from repro.verification.sets import _a3_roots, build_verification_set


def strs(masks, n):
    return {bt.format_tuple(t, n) for t in masks}


class TestA3Roots:
    def test_single_body_two_choices(self):
        """§4.2: body {x3,x4} inside C={x2,x3,x4,x5}, head x5."""
        roots = _a3_roots(
            n=6,
            conjunction=frozenset({1, 2, 3, 4}),
            head=4,
            bodies_in=[frozenset({2, 3})],
            all_bodies=[frozenset({0, 3}), frozenset({2, 3})],
        )
        # the paper's roots: 010101 (x3 knocked out, x1 repaired away
        # because x4 stays true) and 111001 (x4 knocked out, x1 free)
        assert strs(roots, 6) == {"010101", "111001"}

    def test_outside_body_repair(self):
        """A body of the head lying outside C must be deactivated by
        falsifying one of its outside-C variables."""
        roots = _a3_roots(
            n=4,
            conjunction=frozenset({1, 2, 3}),
            head=3,
            bodies_in=[frozenset({1, 2})],
            all_bodies=[frozenset({0}), frozenset({1, 2})],
        )
        for t in roots:
            # body {x1} lies outside C: x1 must have been falsified
            assert not t & 0b0001

    def test_cross_product_of_two_bodies(self):
        roots = _a3_roots(
            n=6,
            conjunction=frozenset({0, 1, 2, 3, 5}),
            head=5,
            bodies_in=[frozenset({0, 1}), frozenset({2, 3})],
            all_bodies=[frozenset({0, 1}), frozenset({2, 3})],
        )
        assert len(roots) == 4  # 2 choices x 2 choices

    def test_duplicate_roots_collapse(self):
        roots = _a3_roots(
            n=3,
            conjunction=frozenset({0, 1, 2}),
            head=2,
            bodies_in=[frozenset({0}), frozenset({0, 1})],
            all_bodies=[frozenset({0}), frozenset({0, 1})],
        )
        assert len(roots) == len(set(roots))


class TestVerificationSetEdgeCases:
    def test_single_variable_universal(self):
        vs = build_verification_set(parse_query("∀x1"))
        assert vs.counts()["N2"] == 1
        assert vs.counts()["A4"] == 0  # no non-head variables

    def test_single_variable_existential(self):
        vs = build_verification_set(parse_query("∃x1"))
        assert vs.counts()["A1"] == 1
        assert vs.counts()["N1"] == 1

    def test_unnormalized_input_is_normalized_first(self):
        """§4.1: dominated expressions must not generate questions."""
        vs = build_verification_set(
            parse_query("∀x1→x3 ∀x1x2→x3 ∃x1 ∃x1x2", n=3)
        )
        # only the dominant ∀x1→x3 yields N2/A2 questions
        assert vs.counts()["N2"] == 1
        # A1 holds only dominant closed conjunctions
        (a1,) = vs.by_kind("A1")
        assert strs(a1.question.tuples, 3) == {"111"}

    def test_all_questions_within_n(self):
        vs = build_verification_set(parse_query("∀x1x2→x3 ∃x4", n=4))
        for item in vs.questions:
            assert item.question.n == 4

    def test_kind_validation(self):
        from repro.core.tuples import Question
        from repro.verification.sets import VerificationQuestion

        with pytest.raises(ValueError):
            VerificationQuestion(
                kind="Z9",
                question=Question.of(1, [1]),
                expected=True,
                provenance="bad",
            )

    def test_fully_existential_no_universal_questions(self):
        vs = build_verification_set(parse_query("∃x1x2 ∃x3", n=3))
        assert vs.counts()["A2"] == 0
        assert vs.counts()["N2"] == 0
        assert vs.counts()["A3"] == 0
