"""Tests for verification-set construction (§4.1, §4.2, Fig. 6)."""

from __future__ import annotations

import pytest

from repro.core import tuples as bt
from repro.core.generators import paper_running_query, random_role_preserving
from repro.core.parser import parse_query
from repro.verification import build_verification_set


def tuples_of(question):
    return {bt.format_tuple(t, question.n) for t in question.tuples}


class TestPaperSection42Example:
    """The worked verification set of §4.2 for the running query."""

    @pytest.fixture(scope="class")
    def vs(self):
        return build_verification_set(paper_running_query())

    def test_a1_is_the_five_dominant_tuples(self, vs):
        (a1,) = vs.by_kind("A1")
        assert tuples_of(a1.question) == {
            "111001",
            "011110",
            "110011",
            "011011",
            "100110",
        }
        assert a1.expected is True

    def test_n1_counts_and_labels(self, vs):
        n1 = vs.by_kind("N1")
        # four non-guarantee dominant conjunctions -> four N1 questions
        assert len(n1) == 4
        assert all(not q.expected for q in n1)

    def test_n1_for_x2x3x5x6(self, vs):
        """§4.2's last N1 column: children of 011011 + the other tuples."""
        target = None
        for item in vs.by_kind("N1"):
            if "x2x3x5x6" in item.provenance:
                target = item
        assert target is not None
        expected = {
            # other dominant tuples
            "111001", "011110", "110011", "100110",
            # compliant children of 011011
            "001011", "010011", "011001", "011010",
        }
        assert tuples_of(target.question) == expected

    def test_a2_questions_match_paper(self, vs):
        a2 = vs.by_kind("A2")
        assert len(a2) == 3
        rendered = {frozenset(tuples_of(q.question)) for q in a2}
        assert frozenset({"111111", "100001", "000101"}) in rendered  # x1x4→x5
        assert frozenset({"111111", "001001", "000101"}) in rendered  # x3x4→x5
        assert frozenset({"111111", "100010", "010010"}) in rendered  # x1x2→x6

    def test_n2_questions_match_paper(self, vs):
        n2 = vs.by_kind("N2")
        rendered = {frozenset(tuples_of(q.question)) for q in n2}
        assert frozenset({"111111", "100101"}) in rendered
        assert frozenset({"111111", "001101"}) in rendered
        assert frozenset({"111111", "110010"}) in rendered

    def test_a3_includes_papers_question(self, vs):
        """§4.2 shows the A3 question {111111, 010101, 111001} for the body
        x3x4 inside ∃x2x3x4x5."""
        a3 = vs.by_kind("A3")
        rendered = {frozenset(tuples_of(q.question)) for q in a3}
        assert frozenset({"111111", "010101", "111001"}) in rendered
        # our builder also covers ∃x1x2x3x6 / ∃x1x2x5x6 dominating the
        # guarantee of ∀x1x2→x6 — the paper's example lists only one pair
        assert len(a3) >= 3

    def test_a4_matches_paper(self, vs):
        (a4,) = vs.by_kind("A4")
        assert tuples_of(a4.question) == {
            "111111",
            "011111",
            "101111",
            "110111",
            "111011",
        }

    def test_all_labels_match_the_query_itself(self, vs):
        q = paper_running_query()
        for item in vs.questions:
            assert q.evaluate(item.question) == item.expected, item.kind


class TestStructure:
    def test_counts_sum(self):
        vs = build_verification_set(paper_running_query())
        assert sum(vs.counts().values()) == vs.size

    def test_non_role_preserving_rejected(self):
        cyc = parse_query("∀x1→x2 ∀x2→x1")
        with pytest.raises(ValueError):
            build_verification_set(cyc)

    def test_bodyless_universal_handled(self):
        vs = build_verification_set(parse_query("∀x1 ∃x2", n=2))
        assert len(vs.by_kind("N2")) == 1
        assert len(vs.by_kind("A2")) == 0  # no children below ∀x1

    def test_pure_existential_query(self):
        vs = build_verification_set(parse_query("∃x1x2 ∃x3", n=3))
        assert len(vs.by_kind("A1")) == 1
        assert len(vs.by_kind("N2")) == 0
        assert len(vs.by_kind("A4")) == 1

    def test_all_heads_query_skips_a4(self):
        vs = build_verification_set(parse_query("∀x1 ∀x2"))
        assert len(vs.by_kind("A4")) == 0

    def test_format_renders_every_question(self):
        vs = build_verification_set(parse_query("∀x1→x2 ∃x3", n=3))
        text = vs.format()
        for kind, count in vs.counts().items():
            assert text.count(f"[{kind}]") == count


class TestLabelConsistency:
    """Every constructed question must carry the given query's own label —
    the internal soundness of Fig. 6's construction."""

    def test_random_queries(self, rng):
        for _ in range(150):
            n = rng.randint(2, 8)
            q = random_role_preserving(n, rng, theta=rng.randint(1, 3))
            vs = build_verification_set(q)
            for item in vs.questions:
                assert q.evaluate(item.question) == item.expected, (
                    q.shorthand(),
                    item.kind,
                    item.provenance,
                )

    def test_verification_set_size_linear_in_k(self, rng):
        """§4: O(k) questions (A3 pairing adds a small factor)."""
        for _ in range(40):
            n = rng.randint(3, 9)
            q = random_role_preserving(n, rng, theta=2)
            vs = build_verification_set(q)
            from repro.core.normalize import canonicalize

            canon = canonicalize(q)
            k = len(canon.universals) + len(canon.conjunctions)
            assert vs.size <= 4 * k + 2
