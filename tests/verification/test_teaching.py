"""Tests for teaching sets (the §5 Goldman–Kearns connection)."""

from __future__ import annotations

import pytest

from repro.core.generators import enumerate_role_preserving
from repro.core.parser import parse_query
from repro.verification.teaching import (
    distinguishes_all,
    greedy_teaching_set,
    teaching_set,
    verification_set_as_examples,
)


@pytest.fixture(scope="module")
def two_var_class():
    return enumerate_role_preserving(2)


class TestGreedyTeachingSets:
    def test_greedy_always_distinguishes(self, two_var_class):
        for target in two_var_class:
            examples = greedy_teaching_set(target, two_var_class)
            assert distinguishes_all(examples, target, two_var_class)

    def test_greedy_sets_are_small(self, two_var_class):
        sizes = [
            len(greedy_teaching_set(t, two_var_class))
            for t in two_var_class
        ]
        assert max(sizes) <= 5

    def test_labels_match_target(self, two_var_class):
        target = two_var_class[0]
        for e in greedy_teaching_set(target, two_var_class):
            assert e.label == target.evaluate(e.question)


class TestExactTeachingSets:
    def test_exact_minimum_at_most_greedy(self, two_var_class):
        for target in two_var_class[:4]:
            greedy = greedy_teaching_set(target, two_var_class)
            exact = teaching_set(
                target, two_var_class, max_size=len(greedy)
            )
            assert exact is not None
            assert len(exact) <= len(greedy)
            assert distinguishes_all(exact, target, two_var_class)

    def test_none_when_budget_too_small(self, two_var_class):
        target = two_var_class[0]
        assert teaching_set(target, two_var_class, max_size=0) is None


class TestVerificationSetsTeach:
    def test_fig6_sets_are_teaching_sets(self, two_var_class):
        """Thm 4.2 in teaching terms: the verification set eliminates every
        rival hypothesis in the class."""
        for target in two_var_class:
            examples = verification_set_as_examples(target)
            assert distinguishes_all(examples, target, two_var_class)

    def test_verification_sets_near_optimal(self, two_var_class):
        """Fig. 6's sets are within a small factor of the teaching number."""
        for target in two_var_class[:6]:
            vs = verification_set_as_examples(target)
            greedy = greedy_teaching_set(target, two_var_class)
            assert len(vs) <= 4 * max(1, len(greedy))


class TestErrorHandling:
    def test_indistinguishable_rival_raises(self):
        a = parse_query("∃x1", n=2)
        b = parse_query("∃x1", n=2)  # same query twice
        # a rival canonically equal to the target is skipped, not fatal
        examples = greedy_teaching_set(a, [a, b])
        assert examples == []
