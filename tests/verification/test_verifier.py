"""Tests for the verifier: soundness + completeness (Thm 4.2, Figs. 7–8)."""

from __future__ import annotations

from itertools import permutations


from repro.core.generators import (
    enumerate_role_preserving,
    paper_running_query,
    random_role_preserving,
)
from repro.core.normalize import canonicalize
from repro.core.parser import parse_query
from repro.oracle import CountingOracle, QueryOracle
from repro.verification import Verifier, verify_query
from repro.verification.verifier import detecting_kinds


class TestSoundness:
    """A correct query must pass its own verification set."""

    def test_paper_query_passes(self):
        q = paper_running_query()
        outcome = verify_query(q, QueryOracle(q))
        assert outcome.verified
        assert not outcome.disagreements

    def test_equivalent_but_unnormalized_query_passes(self):
        given = parse_query("∀x1→x3 ∀x1x2→x3 ∃x1")  # dominated + unclosed
        intended = parse_query("∀x1→x3 ∃x1x2x3")
        assert canonicalize(given) == canonicalize(intended)
        assert verify_query(given, QueryOracle(intended)).verified

    def test_random_self_verification(self, rng):
        for _ in range(60):
            q = random_role_preserving(rng.randint(2, 8), rng, theta=2)
            assert verify_query(q, QueryOracle(q)).verified


class TestCompleteness:
    """Semantically different queries must be detected (Thm 4.2)."""

    def test_all_two_variable_pairs_detected(self):
        """Fig. 8 in full: every ordered pair of distinct two-variable
        role-preserving queries is caught by some question family."""
        queries = enumerate_role_preserving(2)
        for given, intended in permutations(queries, 2):
            kinds = detecting_kinds(given, intended)
            assert kinds, (given.shorthand(), intended.shorthand())

    def test_random_pairs_detected(self, rng):
        found, skipped = 0, 0
        while found < 60:
            n = rng.randint(2, 7)
            a = random_role_preserving(n, rng, theta=2)
            b = random_role_preserving(n, rng, theta=2)
            if canonicalize(a) == canonicalize(b):
                skipped += 1
                continue
            found += 1
            assert detecting_kinds(a, b), (a.shorthand(), b.shorthand())

    def test_missing_universal_detected_by_a3_family(self):
        """Lemma 4.6's scenario: the intended query has an extra
        incomparable body hidden inside a dominant conjunction."""
        given = parse_query("∀x3x4→x5 ∃x2x3x4x5", n=5)
        intended = parse_query("∀x3x4→x5 ∀x2x3→x5 ∃x2x3x4x5", n=5)
        kinds = detecting_kinds(given, intended)
        assert "A3" in kinds

    def test_missing_head_detected_by_a4(self):
        """Lemma 4.7: x2 heads an expression in the intended query only."""
        given = parse_query("∃x1x2", n=2)
        intended = parse_query("∀x1→x2 ∃x1", n=2)
        assert "A4" in detecting_kinds(given, intended)

    def test_sub_body_detected_by_a2(self):
        """Lemma 4.4: intended body ⊂ given body."""
        given = parse_query("∀x1x2→x3", n=3)
        intended = parse_query("∀x1→x3", n=3)
        assert "A2" in detecting_kinds(given, intended)

    def test_super_body_detected_by_n2(self):
        """Lemma 4.5: intended body ⊃ given body."""
        given = parse_query("∀x1→x3", n=3)
        intended = parse_query("∀x1x2→x3", n=3)
        assert "N2" in detecting_kinds(given, intended)

    def test_extra_conjunction_detected(self):
        given = parse_query("∃x1", n=3)
        intended = parse_query("∃x1x2", n=3)
        assert detecting_kinds(given, intended)

    def test_missing_conjunction_detected_by_n1(self):
        given = parse_query("∃x1x2", n=2)
        intended = parse_query("∃x1", n=2)
        assert "N1" in detecting_kinds(given, intended)


class TestVerifierMechanics:
    def test_stop_at_first(self):
        given = parse_query("∃x1x2", n=2)
        intended = parse_query("∃x1 ∃x2", n=2)
        oracle = CountingOracle(QueryOracle(intended))
        outcome = Verifier(given).run(oracle, stop_at_first=True)
        assert not outcome.verified
        assert len(outcome.disagreements) == 1
        assert oracle.questions_asked == outcome.questions_asked

    def test_question_budget_o_k(self):
        q = paper_running_query()
        oracle = CountingOracle(QueryOracle(q))
        outcome = Verifier(q).run(oracle)
        assert outcome.questions_asked == oracle.questions_asked <= 20

    def test_disagreement_describe(self):
        given = parse_query("∃x1x2", n=2)
        intended = parse_query("∃x1 ∃x2", n=2)
        outcome = verify_query(given, QueryOracle(intended))
        assert outcome.disagreements
        text = outcome.disagreements[0].describe()
        assert "query says" in text and "user says" in text

    def test_verification_cheaper_than_learning(self, rng):
        """§4's headline: verifying costs O(k), learning costs
        O(n^{θ+1} + kn lg n) — measure both on the same targets."""
        from repro.learning import RolePreservingLearner

        for _ in range(10):
            target = random_role_preserving(8, rng, theta=2)
            v_oracle = CountingOracle(QueryOracle(target))
            verify_query(target, v_oracle)
            l_oracle = CountingOracle(QueryOracle(target))
            RolePreservingLearner(l_oracle).learn()
            assert v_oracle.questions_asked < l_oracle.questions_asked
