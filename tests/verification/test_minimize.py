"""Tests for verification-set minimization over enumerable classes."""

from __future__ import annotations

import pytest

from repro.core.generators import enumerate_role_preserving
from repro.core.normalize import canonicalize
from repro.verification.minimize import (
    minimize_verification_set,
    redundant_questions,
)
from repro.verification.sets import build_verification_set


@pytest.fixture(scope="module")
def two_var_class():
    return enumerate_role_preserving(2)


class TestMinimize:
    def test_minimized_still_complete(self, two_var_class):
        for target in two_var_class:
            minimal = minimize_verification_set(target, two_var_class)
            target_form = canonicalize(target)
            for rival in two_var_class:
                if canonicalize(rival) == target_form:
                    continue
                assert any(
                    rival.evaluate(q.question) != q.expected
                    for q in minimal
                ), (target.shorthand(), rival.shorthand())

    def test_minimized_never_larger(self, two_var_class):
        for target in two_var_class:
            full = build_verification_set(target)
            minimal = minimize_verification_set(target, two_var_class)
            assert len(minimal) <= full.size

    def test_some_query_has_redundancy(self, two_var_class):
        """Fig. 6 is generic, so at least one two-variable query carries a
        question that is redundant for this particular class."""
        assert any(
            redundant_questions(t, two_var_class) for t in two_var_class
        )

    def test_redundant_plus_needed_cover_set(self, two_var_class):
        target = two_var_class[3]
        full = build_verification_set(target)
        redundant = redundant_questions(target, two_var_class)
        assert all(q in full.questions for q in redundant)

    def test_dropping_minimal_question_breaks_completeness(
        self, two_var_class
    ):
        """The greedy minimal set is irredundant in aggregate: removing its
        largest-coverage question must let some rival slip through."""
        target = two_var_class[0]
        minimal = minimize_verification_set(target, two_var_class)
        if len(minimal) <= 1:
            pytest.skip("singleton set — nothing to drop")
        dropped = minimal[1:]
        target_form = canonicalize(target)
        slipped = [
            r
            for r in two_var_class
            if canonicalize(r) != target_form
            and not any(
                r.evaluate(q.question) != q.expected for q in dropped
            )
        ]
        assert slipped  # the first (largest-coverage) question mattered
