"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.normalize import brute_force_equivalent, canonicalize
from repro.core.query import QhornQuery


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; per-test reseeding keeps runs reproducible."""
    return random.Random(0xC0FFEE)


def assert_equivalent(learned: QhornQuery, target: QhornQuery) -> None:
    """Assert semantic equality, preferring the canonical-form test and
    falling back to brute force for non-role-preserving queries."""
    if learned.is_role_preserving() and target.is_role_preserving():
        assert canonicalize(learned) == canonicalize(target), (
            f"learned {learned.shorthand()!r} != target {target.shorthand()!r}"
        )
    else:
        assert learned.n <= 4, "brute force requires small n"
        assert brute_force_equivalent(learned, target)
