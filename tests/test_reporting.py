"""Tests for the results-report stitcher."""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.reporting import collect_results, main, write_report


@pytest.fixture
def results_dir(tmp_path) -> pathlib.Path:
    d = tmp_path / "benchmarks" / "results"
    d.mkdir(parents=True)
    (d / "e1_demo.txt").write_text("E1 table\nrow\n")
    (d / "e2_demo.txt").write_text("E2 table\nrow\n")
    return d


class TestCollect:
    def test_sorted_pairs(self, results_dir):
        pairs = collect_results(results_dir)
        assert [name for name, _ in pairs] == ["e1_demo", "e2_demo"]
        assert pairs[0][1].startswith("E1 table")

    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_results(tmp_path / "nope")

    def test_empty_dir(self, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            collect_results(empty)


class TestWrite:
    def test_report_contains_all_sections(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "RESULTS.md")
        text = out.read_text()
        assert "## e1_demo" in text and "## e2_demo" in text
        assert text.count("```") == 4

    def test_main_entry(self, results_dir, tmp_path, capsys):
        assert main([str(tmp_path)]) == 0
        assert (tmp_path / "RESULTS.md").exists()
        assert "2 experiments" in capsys.readouterr().out

    def test_real_results_if_present(self):
        real = pathlib.Path("benchmarks/results")
        if not real.is_dir() or not list(real.glob("*.txt")):
            pytest.skip("no real benchmark results yet")
        pairs = collect_results(real)
        assert any(name.startswith("e1") for name, _ in pairs)
