"""The conformance matrix itself: spec parsing, leg agreement,
divergence detection and witness shrinking (DESIGN.md §2j)."""

from __future__ import annotations

import pytest

from repro.core.parser import parse_query
from repro.enumerate.differ import (
    MatrixSpec,
    check_backends,
    check_learners,
    role_preserving_bound,
    run_learner_leg,
    shrink_query,
    shrink_store,
    theorem_31_bound,
    _build_backend,
)
from repro.enumerate.space import (
    enumerate_queries,
    enumerate_stores,
    store_vocabulary,
)

SERIAL = MatrixSpec.parse("parallel=serial;backends=bitmask+sharded+sql+dbapi")


class TestMatrixSpec:
    def test_full_is_default(self):
        assert MatrixSpec.parse("full") == MatrixSpec()
        assert MatrixSpec.parse(None) == MatrixSpec()

    def test_axis_selection(self):
        spec = MatrixSpec.parse("learners=qhorn1+naive;drivers=sansio")
        assert spec.learners == ("qhorn1", "naive")
        assert spec.drivers == ("sansio",)
        assert spec.oracles == MatrixSpec().oracles  # untouched axis

    def test_unknown_axis_and_choice_rejected(self):
        with pytest.raises(ValueError, match="unknown matrix axis"):
            MatrixSpec.parse("flavor=vanilla")
        with pytest.raises(ValueError, match="unknown learners choice"):
            MatrixSpec.parse("learners=gradient-descent")

    def test_without_pool_drops_pool_legs(self):
        spec = MatrixSpec().without_pool()
        assert spec.parallel == ("serial",)
        assert "sharded-pool" not in spec.backends

    def test_bounds_are_the_pinned_constants(self):
        import math

        assert theorem_31_bound(4) == 12 * 4 * math.log2(4) + 12
        assert role_preserving_bound(2, 3) == 4 * 8 + 6 * 3 * 2 * 1 + 40


class TestLearnerMatrix:
    def test_all_serial_legs_agree_everywhere(self):
        for entry in enumerate_queries(2):
            report, divergences = check_learners(entry, SERIAL)
            assert divergences == [], [d.detail for d in divergences]
            assert report["status"] == "ok"
            assert report["combos"] == 3 * 3 * 2  # learners×oracles×drivers

    def test_question_counts_within_paper_bounds(self):
        for entry in enumerate_queries(2):
            report, _ = check_learners(entry, SERIAL)
            n = entry.n
            assert report["questions"]["qhorn1"] <= theorem_31_bound(n)
            assert report["questions"]["role-preserving"] <= (
                role_preserving_bound(n, entry.query.size)
            )

    def test_transcripts_identical_across_drivers(self):
        target = parse_query("∀x1→x2 ∃x1x2", n=2)
        pull = run_learner_leg(target, "qhorn1", "direct", "pull", "serial")
        sansio = run_learner_leg(target, "qhorn1", "sql", "sansio", "serial")
        assert pull.transcript == sansio.transcript
        assert pull.stats == sansio.stats
        assert pull.learned == sansio.learned

    def test_wrong_oracle_becomes_divergence_with_witness(self):
        """A transport that lies about one answer must be caught and the
        witness shrunk to something still in the learner's class."""
        from repro.core.serialize import query_from_dict
        from repro.enumerate import differ as differ_module
        from repro.enumerate.space import enumerate_queries as eq

        entry = next(e for e in eq(2) if e.query.size >= 2)
        original = differ_module.QueryOracle

        class LyingOracle(original):  # type: ignore[misc,valid-type]
            def ask(self, question):
                return not super().ask(question)

            def ask_many(self, questions):
                return [not a for a in super().ask_many(questions)]

        differ_module.QueryOracle = LyingOracle
        try:
            spec = MatrixSpec.parse(
                "learners=qhorn1;oracles=direct;drivers=pull;parallel=serial"
            )
            report, divergences = check_learners(entry, spec)
        finally:
            differ_module.QueryOracle = original
        assert report["status"] == "divergent"
        assert divergences, "lying oracle must be detected"
        witness = divergences[0]
        assert witness.site in ("equivalence", "learner", "crash")
        assert witness.shrunk_query is not None
        assert query_from_dict(witness.shrunk_query).is_qhorn1()


class TestBackendMatrix:
    def test_all_backends_agree_on_every_pair(self):
        entries = [e for e in enumerate_queries(2) if e.n == 2]
        vocabulary = store_vocabulary(2, "bool")
        for store in list(enumerate_stores(2, 2))[:15]:
            relation = store.relation(vocabulary)
            backends = {
                leg: _build_backend(leg, relation, vocabulary, None)
                for leg in SERIAL.backends
            }
            try:
                for entry in entries:
                    record, divergences = check_backends(
                        entry, store, backends, relation, vocabulary
                    )
                    assert divergences == [], [d.detail for d in divergences]
                    assert record["status"] == "ok"
            finally:
                for backend in backends.values():
                    close = getattr(backend, "close", None)
                    if close is not None:
                        close()

    def test_mixed_vocabulary_pairs_agree(self):
        """Typed predicates (category/numeric) through the SQL renderers
        match the compiled reference too."""
        entries = [e for e in enumerate_queries(2) if e.n == 2][:4]
        vocabulary = store_vocabulary(2, "mixed")
        store = next(
            s for s in enumerate_stores(2, 2) if len(s.objects) == 2
        )
        relation = store.relation(vocabulary)
        backends = {
            leg: _build_backend(leg, relation, vocabulary, None)
            for leg in ("bitmask", "sql", "dbapi")
        }
        try:
            for entry in entries:
                _, divergences = check_backends(
                    entry, store, backends, relation, vocabulary
                )
                assert divergences == []
        finally:
            for backend in backends.values():
                close = getattr(backend, "close", None)
                if close is not None:
                    close()

    def test_broken_backend_yields_shrunk_divergence(self):
        entry = next(e for e in enumerate_queries(2) if e.n == 2)
        store = next(s for s in enumerate_stores(2, 2) if len(s.objects) == 2)
        vocabulary = store_vocabulary(2, "bool")
        relation = store.relation(vocabulary)
        reference = _build_backend("bitmask", relation, vocabulary, None)

        class InvertingBackend:
            def matches_many(self, query, objects=None):
                return [not b for b in reference.matches_many(query, objects)]

            def execute(self, query):
                return reference.execute(query)

            def matching_bits(self, query):
                return reference.matching_bits(query)

        record, divergences = check_backends(
            entry,
            store,
            {"bitmask": InvertingBackend()},
            relation,
            vocabulary,
        )
        assert record["status"] == "divergent"
        assert len(divergences) == 1
        witness = divergences[0]
        assert witness.site == "backend"
        assert "matches_many" in witness.detail
        assert witness.shrunk_query is not None
        assert witness.shrunk_store is not None
        assert witness.to_record()["kind"] == "divergence"


class TestShrinking:
    def test_shrink_query_reaches_a_minimal_core(self):
        query = parse_query("∀x1→x2 ∀x2→x3 ∃x1x2x3", n=3)
        shrunk = shrink_query(
            query, lambda q: any(u.head == 1 for u in q.universals)
        )
        assert len(shrunk.universals) == 1
        assert next(iter(shrunk.universals)).head == 1
        assert not shrunk.existentials

    def test_shrink_store_drops_objects_then_rows(self):
        masks = [frozenset({0, 1}), frozenset({2, 3}), frozenset({1})]
        shrunk = shrink_store(
            masks, lambda candidate: any(1 in m for m in candidate)
        )
        assert shrunk == [frozenset({1})]
