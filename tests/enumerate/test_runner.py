"""The `repro enumerate` run loop: corpus records, coverage counts,
resume-from-checkpoint and the CLI face (DESIGN.md §2j)."""

from __future__ import annotations

import io
import json

from repro.enumerate.runner import RunConfig, load_done, run

TINY = RunConfig(
    max_props=1,
    max_objects=1,
    matrix="parallel=serial;backends=bitmask+sql",
    parallel=0,
)


def _records(text: str) -> list[dict]:
    return [json.loads(line) for line in text.splitlines() if line.strip()]


class TestRun:
    def test_corpus_structure_and_coverage(self):
        sink = io.StringIO()
        result = run(TINY, sink)
        assert result.ok
        records = _records(sink.getvalue())
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "meta"
        assert kinds[-1] == "summary"
        by_kind = {k: kinds.count(k) for k in set(kinds)}
        summary = records[-1]
        # Exhaustive coverage counts are consistent with the records.
        assert by_kind["query"] == summary["queries"] == 2
        # 4 objects over 1 variable (∅, {0}, {1}, {0,1}) → 5 stores of ≤1.
        assert by_kind["store"] == summary["stores"] == 5
        assert by_kind["instance"] == summary["pairs"]
        assert by_kind["learner"] == summary["queries"]
        assert summary["divergences"] == 0
        assert summary["bound_ok"] is True
        assert summary["status"] == "ok"
        # 3 learners × 2 oracle transports... spec trimmed: here the
        # full learner axes on a serial matrix = 3×3×2 legs per query.
        assert summary["learner_runs"] == 2 * 3 * 3 * 2
        assert summary["backend_checks"] == summary["pairs"] * 2

    def test_learner_records_carry_bounds(self):
        sink = io.StringIO()
        run(TINY, sink)
        learner_records = [
            r for r in _records(sink.getvalue()) if r["kind"] == "learner"
        ]
        for record in learner_records:
            assert record["status"] == "ok"
            assert record["questions"]["qhorn1"] <= record["bounds"]["qhorn1"]

    def test_resume_skips_verified_work(self):
        sink = io.StringIO()
        run(TINY, sink)
        done = _parse_done(sink.getvalue())
        resumed = io.StringIO()
        result = run(TINY, resumed, resume=done)
        assert result.learner_runs == 0
        assert result.backend_checks == 0
        assert result.skipped > 0
        assert result.ok

    def test_progress_messages_emitted(self):
        messages = []
        run(TINY, io.StringIO(), progress=messages.append)
        assert any("learner matrix" in m for m in messages)
        assert any("backend matrix" in m for m in messages)


def _parse_done(text: str):
    import tempfile

    with tempfile.NamedTemporaryFile(
        "w", suffix=".jsonl", delete=False
    ) as handle:
        handle.write(text)
        path = handle.name
    return load_done(path)


class TestLoadDone:
    def test_missing_file_is_empty(self, tmp_path):
        learners, pairs = load_done(str(tmp_path / "absent.jsonl"))
        assert learners == set() and pairs == set()

    def test_only_ok_records_count(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        path.write_text(
            json.dumps({"kind": "learner", "id": "q1-a", "status": "ok"})
            + "\n"
            + json.dumps(
                {"kind": "learner", "id": "q1-b", "status": "divergent"}
            )
            + "\n"
            + json.dumps(
                {
                    "kind": "instance",
                    "query": "q1-a",
                    "store": "s1-x",
                    "status": "ok",
                }
            )
            + "\n"
            + '{"torn tail'  # interrupted write
        )
        learners, pairs = load_done(str(path))
        assert learners == {"q1-a"}
        assert pairs == {("q1-a", "s1-x")}


class TestCli:
    def test_cli_round_trip_with_resume(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "corpus.jsonl"
        argv = [
            "enumerate",
            "--max-props",
            "1",
            "--max-objects",
            "1",
            "--matrix",
            "parallel=serial;backends=bitmask+sql",
            "--parallel",
            "0",
            "--out",
            str(out),
        ]
        assert main(argv) == 0
        summary = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert summary["status"] == "ok"
        assert summary["queries"] == 2

        assert main(argv + ["--resume"]) == 0
        resumed = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert resumed["skipped"] > 0
        assert resumed["learner_runs"] == 0

    def test_corpus_feeds_loadgen_scenarios(self, tmp_path, capsys):
        from repro.cli import main
        from repro.server.loadgen import load_scenarios

        out = tmp_path / "corpus.jsonl"
        assert (
            main(
                [
                    "enumerate",
                    "--max-props",
                    "1",
                    "--max-objects",
                    "0",
                    "--matrix",
                    "parallel=serial;backends=bitmask",
                    "--parallel",
                    "0",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        scenarios = load_scenarios(str(out))
        assert len(scenarios) == 2
        assert all(q.n == 1 for q in scenarios)


class TestRelaxedSemanticsGate:
    """Regression from the first moderate-bounds hunt: with
    ``--guarantees both`` the relaxed (require_guarantees=False) targets
    reached the learner matrix and every leg flagged a false
    'equivalence' divergence — e.g. the minimized witness ``∀x1``
    relaxed at n=1, where the learner's paper-semantics output
    legitimately differs on the witness-free object.  Relaxed queries
    must run the backend matrix only.
    """

    def test_minimized_witness_is_outside_the_hypothesis_class(self):
        from repro.core.normalize import brute_force_equivalent
        from repro.core.parser import parse_query
        from repro.enumerate.differ import run_learner_leg

        relaxed = parse_query("∀x1", n=1, require_guarantees=False)
        outcome = run_learner_leg(relaxed, "qhorn1", "direct", "pull", "serial")
        # The learner answers consistently with the oracle yet cannot
        # express the relaxed semantics: not a conformance bug.
        assert not brute_force_equivalent(outcome.learned, relaxed)
        assert outcome.learned.require_guarantees

    def test_runner_routes_relaxed_queries_to_backends_only(self):
        sink = io.StringIO()
        config = RunConfig(
            max_props=1,
            max_objects=1,
            guarantees="both",
            matrix="parallel=serial;backends=bitmask+sql",
            parallel=0,
        )
        result = run(config, sink)
        assert result.ok, [d.detail for d in result.divergences]
        records = _records(sink.getvalue())
        relaxed_ids = {
            r["id"]
            for r in records
            if r["kind"] == "query"
            and not r["query"]["require_guarantees"]
        }
        assert relaxed_ids, "guarantees=both must enumerate relaxed queries"
        learner_ids = {r["id"] for r in records if r["kind"] == "learner"}
        assert not (relaxed_ids & learner_ids)
        instance_ids = {
            r["query"] for r in records if r["kind"] == "instance"
        }
        assert relaxed_ids <= instance_ids
