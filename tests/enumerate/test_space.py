"""The bounded spaces: determinism, stable ids, semantic dedup,
relation round-trips (DESIGN.md §2j)."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.core.normalize import brute_force_equivalent
from repro.enumerate.space import (
    EnumeratedStore,
    enumerate_queries,
    enumerate_stores,
    expression_universe,
    store_vocabulary,
)


class TestQuerySpace:
    def test_deterministic_and_ids_stable(self):
        first = list(enumerate_queries(2))
        second = list(enumerate_queries(2))
        assert [q.id for q in first] == [q.id for q in second]
        assert [q.signature for q in first] == [q.signature for q in second]

    def test_universe_size_matches_formula(self):
        # n·2^(n-1) universal Horn expressions + 2^n − 1 conjunctions.
        for n in (1, 2, 3):
            assert len(expression_universe(n)) == n * 2 ** (n - 1) + 2**n - 1

    def test_semantic_dedup_is_sound_and_complete(self):
        """Distinct enumerated queries are semantically distinct, and
        the signature agrees with brute-force equivalence."""
        entries = list(enumerate_queries(2))
        for a, b in combinations(entries, 2):
            if a.n != b.n:
                continue
            assert a.signature != b.signature
            assert not brute_force_equivalent(a.query, b.query)

    def test_every_entry_is_qhorn1(self):
        for entry in enumerate_queries(2):
            assert entry.query.is_qhorn1()

    def test_known_counts_pin_the_space(self):
        # Regression pin: 2 distinct behaviours at n=1 (∀x1 ≡ ∃x1 under
        # guarantees; plus the two-expression conjunction), 13 at n≤2.
        assert len(list(enumerate_queries(1))) == 2
        assert len(list(enumerate_queries(2))) == 13

    def test_kind_filters_widen_the_space(self):
        qhorn1 = len(list(enumerate_queries(2)))
        role_preserving = len(list(enumerate_queries(2, kind="role-preserving")))
        every = len(list(enumerate_queries(2, kind="qhorn")))
        assert qhorn1 <= role_preserving <= every

    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="positive"):
            list(enumerate_queries(0))
        with pytest.raises(ValueError, match="infeasible"):
            list(enumerate_queries(5))
        with pytest.raises(ValueError, match="unknown query kind"):
            list(enumerate_queries(1, kind="mystery"))

    def test_records_replay_through_serialization(self):
        from repro.core.serialize import query_from_dict

        for entry in enumerate_queries(2):
            record = entry.to_record()
            assert record["kind"] == "query"
            assert query_from_dict(record["query"]) == entry.query


class TestStoreSpace:
    def test_deterministic_and_counts(self):
        first = list(enumerate_stores(2, 2))
        assert [s.id for s in first] == [s.id for s in enumerate_stores(2, 2)]
        # 11 objects of ≤2 rows over 4 masks (1 empty + 4 + 6), so
        # 1 + 11 + C(12,2)=66 multisets of ≤2 objects.
        assert len(first) == 78

    def test_relation_round_trip_bool(self):
        vocabulary = store_vocabulary(2, "bool")
        for store in list(enumerate_stores(2, 2))[:30]:
            relation = store.relation(vocabulary)
            for obj, masks in zip(relation, store.mask_sets):
                assert frozenset(vocabulary.boolean_tuples(obj.rows)) == masks

    def test_relation_round_trip_mixed(self):
        vocabulary = store_vocabulary(3, "mixed")
        store = EnumeratedStore(id="s3-fixed", n=3, objects=((0, 3, 7), (5,)))
        relation = store.relation(vocabulary)
        for obj, masks in zip(relation, store.mask_sets):
            assert frozenset(vocabulary.boolean_tuples(obj.rows)) == masks

    def test_empty_store_and_empty_object_present(self):
        stores = list(enumerate_stores(1, 1))
        assert any(not s.objects for s in stores)
        assert any(s.objects == ((),) for s in stores)

    def test_vocabulary_flavor_validated(self):
        with pytest.raises(ValueError, match="unknown store vocabulary"):
            store_vocabulary(2, "fancy")
