"""Tests for flat/nested schemas (Defs. 2.1–2.3)."""

from __future__ import annotations

import pytest

from repro.data.schema import (
    Attribute,
    AttributeType,
    FlatSchema,
    NestedSchema,
    SchemaError,
)


class TestAttributeTypes:
    def test_boolean_excludes_ints(self):
        assert AttributeType.BOOLEAN.validate(True)
        assert not AttributeType.BOOLEAN.validate(1)

    def test_integer_excludes_bools(self):
        assert AttributeType.INTEGER.validate(3)
        assert not AttributeType.INTEGER.validate(True)
        assert not AttributeType.INTEGER.validate(3.5)

    def test_float_accepts_ints(self):
        assert AttributeType.FLOAT.validate(3)
        assert AttributeType.FLOAT.validate(3.5)
        assert not AttributeType.FLOAT.validate("3.5")

    def test_category_is_str(self):
        assert AttributeType.CATEGORY.validate("Belgium")
        assert not AttributeType.CATEGORY.validate(7)


class TestAttribute:
    def test_constructors(self):
        assert Attribute.boolean("isDark").type is AttributeType.BOOLEAN
        assert Attribute.integer("count").type is AttributeType.INTEGER
        assert Attribute.real("weight").type is AttributeType.FLOAT
        cat = Attribute.category("origin", ("Belgium",), open_universe=False)
        assert cat.universe == ("Belgium",)
        assert not cat.open_universe

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute.boolean("is dark")

    def test_universe_type_checked(self):
        with pytest.raises(SchemaError):
            Attribute.category("origin", universe=(1, 2))


class TestFlatSchema:
    def make(self) -> FlatSchema:
        return FlatSchema(
            "Chocolate",
            (Attribute.boolean("isDark"), Attribute.category("origin")),
        )

    def test_attribute_lookup(self):
        s = self.make()
        assert s.attribute("isDark").name == "isDark"
        with pytest.raises(SchemaError):
            s.attribute("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            FlatSchema(
                "S", (Attribute.boolean("a"), Attribute.integer("a"))
            )

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            FlatSchema("S", ())

    def test_validate_row(self):
        s = self.make()
        s.validate_row({"isDark": True, "origin": "Belgium"})
        with pytest.raises(SchemaError):
            s.validate_row({"isDark": True})  # missing origin
        with pytest.raises(SchemaError):
            s.validate_row({"isDark": 1, "origin": "Belgium"})  # bad type
        with pytest.raises(SchemaError):
            s.validate_row(
                {"isDark": True, "origin": "Belgium", "extra": 1}
            )


class TestNestedSchema:
    def test_single_level_nesting(self):
        flat = FlatSchema("Chocolate", (Attribute.boolean("isDark"),))
        nested = NestedSchema(
            "Box", embedded=flat, object_attributes=(Attribute.category("name"),)
        )
        nested.validate_object_attributes({"name": "sampler"})
        with pytest.raises(SchemaError):
            nested.validate_object_attributes({"name": 3})
        with pytest.raises(SchemaError):
            nested.validate_object_attributes({"unknown": "x"})

    def test_duplicate_object_attributes_rejected(self):
        flat = FlatSchema("F", (Attribute.boolean("a"),))
        with pytest.raises(SchemaError):
            NestedSchema(
                "N",
                embedded=flat,
                object_attributes=(
                    Attribute.category("name"),
                    Attribute.category("name"),
                ),
            )
