"""Unit tests for the backend plugin registry (DESIGN.md §2i).

The registry is the v2 seam behind ``--backend``: eager and lazy
registration, entry-point / ``REPRO_BACKENDS`` discovery, capability
flags, the did-you-mean error, the deprecated ``BACKENDS`` mapping view,
and the uniform ``--backend-opt`` coercion pipeline.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.data.backends import BACKENDS, REGISTRY, create_backend
from repro.data.backends.registry import (
    BackendCapabilities,
    BackendLoadError,
    BackendRegistry,
    BackendsView,
    coerce_option,
    parse_backend_opts,
)


class _Dummy:
    name = "dummy"
    capabilities = BackendCapabilities(supports_sql=True)

    def __init__(self, relation=None, vocabulary=None, **options):
        self.relation = relation
        self.vocabulary = vocabulary
        self.options = options


def _fresh():
    return BackendRegistry(discover=False)


class TestRegistration:
    def test_direct_and_decorator_forms(self):
        registry = _fresh()
        registry.register("direct", _Dummy)

        @registry.register("decorated", supports_parallel=True)
        class Decorated(_Dummy):
            pass

        assert registry.names() == ["decorated", "direct"]
        assert registry.get("direct") is _Dummy
        assert registry.get("decorated") is Decorated
        assert registry.capabilities("decorated").supports_parallel

    def test_duplicate_name_rejected(self):
        registry = _fresh()
        registry.register("dup", _Dummy)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("dup", _Dummy)
        registry.register("dup", _Dummy, replace_existing=True)

    def test_flags_read_off_class_when_not_declared(self):
        registry = _fresh()
        registry.register("dummy", _Dummy)
        assert registry.capabilities("dummy") == _Dummy.capabilities

    def test_explicit_flags_win_over_class_flags(self):
        registry = _fresh()
        registry.register("dummy", _Dummy, max_width=8)
        caps = registry.capabilities("dummy")
        assert caps.max_width == 8
        assert caps.supports_sql is False

    def test_unregister(self):
        registry = _fresh()
        registry.register("gone", _Dummy)
        registry.unregister("gone")
        assert "gone" not in registry
        registry.unregister("gone")  # idempotent


class TestLazyLoading:
    def test_lazy_loader_resolves_on_first_get(self):
        registry = _fresh()
        calls = []

        def loader():
            calls.append(1)
            return _Dummy

        registry.register_lazy("lazy", loader)
        assert "lazy" in registry.names()
        assert not registry.is_loaded("lazy")
        assert registry.get("lazy") is _Dummy
        assert registry.is_loaded("lazy")
        registry.get("lazy")
        assert calls == [1]  # resolved exactly once

    def test_lazy_capabilities_read_off_loaded_class(self):
        registry = _fresh()
        registry.register_lazy("lazy", lambda: _Dummy)
        # Before the load: no declared flags, nothing forced.
        assert registry.capabilities("lazy") == BackendCapabilities()
        registry.get("lazy")
        assert registry.capabilities("lazy").supports_sql is True

    def test_lazy_load_failure_is_backend_load_error(self):
        registry = _fresh()
        registry.register_lazy("broken", "no.such.module:Thing")
        assert "broken" in registry.names()  # discoverable while unloaded
        with pytest.raises(BackendLoadError, match="failed to import"):
            registry.get("broken")

    def test_bad_spec_shapes_rejected(self):
        registry = _fresh()
        registry.register_lazy("odd", "not-a-spec")
        with pytest.raises(BackendLoadError, match="pkg.mod:Class"):
            registry.get("odd")

    def test_missing_attribute_reported(self):
        registry = _fresh()
        registry.register_lazy("noattr", "os.path:NoSuchClass")
        with pytest.raises(BackendLoadError, match="no attribute"):
            registry.get("noattr")


def _write_plugin(tmp_path, monkeypatch, body):
    (tmp_path / "fake_plugin.py").write_text(textwrap.dedent(body))
    monkeypatch.syspath_prepend(str(tmp_path))


class TestEnvDiscovery:
    PLUGIN = """
        class ExternalBackend:
            name = "external"
            capabilities = {"supports_sql": True}

            def __init__(self, relation=None, vocabulary=None, **options):
                self.relation = relation
                self.vocabulary = vocabulary
                self.options = options
    """

    def test_class_spec_registers_under_class_name(
        self, tmp_path, monkeypatch
    ):
        _write_plugin(tmp_path, monkeypatch, self.PLUGIN)
        monkeypatch.setenv("REPRO_BACKENDS", "fake_plugin:ExternalBackend")
        registry = BackendRegistry()
        assert "external" in registry.names()
        assert registry.capabilities("external").supports_sql is True
        instance = registry.create("external", None, None)
        assert instance.__class__.__name__ == "ExternalBackend"

    def test_named_spec_registers_lazily(self, tmp_path, monkeypatch):
        _write_plugin(tmp_path, monkeypatch, self.PLUGIN)
        monkeypatch.setenv(
            "REPRO_BACKENDS", "mine=fake_plugin:ExternalBackend"
        )
        registry = BackendRegistry()
        assert "mine" in registry.names()
        assert not registry.is_loaded("mine")
        assert registry.get("mine").name == "external"

    def test_env_change_between_calls_is_honoured(
        self, tmp_path, monkeypatch
    ):
        _write_plugin(tmp_path, monkeypatch, self.PLUGIN)
        registry = BackendRegistry()
        monkeypatch.setenv("REPRO_BACKENDS", "")
        assert "mine" not in registry.names()
        monkeypatch.setenv(
            "REPRO_BACKENDS", "mine=fake_plugin:ExternalBackend"
        )
        assert "mine" in registry.names()

    def test_global_registry_sees_env_plugins(self, tmp_path, monkeypatch):
        """The acceptance-criteria path: a third-party backend appears in
        the process-wide registry (hence the CLI choices) without editing
        ``repro.data.backends``."""
        _write_plugin(tmp_path, monkeypatch, self.PLUGIN)
        monkeypatch.setenv(
            "REPRO_BACKENDS", "mine=fake_plugin:ExternalBackend"
        )
        try:
            assert "mine" in REGISTRY.names()
            assert "mine" in BACKENDS
        finally:
            REGISTRY.unregister("mine")
            monkeypatch.setenv("REPRO_BACKENDS", "")
            REGISTRY.names()  # re-sync the env cache to the empty value

    def test_broken_env_module_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKENDS", "no_such_plugin_module")
        registry = BackendRegistry()
        with pytest.raises(BackendLoadError, match="failed to import"):
            registry.names()


class TestErrors:
    def test_unknown_backend_lists_sorted_choices(self):
        registry = _fresh()
        registry.register("zeta", _Dummy)
        registry.register("alpha", _Dummy)
        with pytest.raises(
            ValueError, match=r"choices: alpha, zeta"
        ):
            registry.get("missing")

    def test_did_you_mean_suggestion(self):
        message = REGISTRY.unknown_backend_message("bitmsk")
        assert "did you mean 'bitmask'?" in message
        # Unloaded/discoverable names are part of the listing too.
        assert "dbapi" in message

    def test_create_backend_uses_registry_message(self):
        with pytest.raises(ValueError, match="did you mean 'sharded'"):
            create_backend("shraded", None, None)

    def test_max_width_enforced_without_constructing(self):
        registry = _fresh()
        built = []

        class Narrow(_Dummy):
            def __init__(self, *args, **options):
                built.append(1)

        registry.register("narrow", Narrow, max_width=4)

        class Vocab:
            n = 9

        with pytest.raises(ValueError, match="at most n=4"):
            registry.create("narrow", None, Vocab())
        assert not built


class TestBackendsViewShim:
    def test_reads_delegate_to_registry(self):
        assert BACKENDS["bitmask"] is REGISTRY.get("bitmask")
        assert set(BACKENDS) == set(REGISTRY.names())
        assert len(BACKENDS) == len(REGISTRY.names())
        with pytest.raises(KeyError):
            BACKENDS["nope"]

    def test_setitem_warns_and_registers(self):
        registry = _fresh()
        view = BackendsView(registry)
        with pytest.warns(DeprecationWarning, match="REGISTRY.register"):
            view["dummy"] = _Dummy
        assert registry.get("dummy") is _Dummy
        del view["dummy"]
        assert "dummy" not in registry


class TestOptionPipeline:
    @pytest.mark.parametrize(
        ("raw", "expected"),
        [
            ("true", True),
            ("Yes", True),
            ("off", False),
            ("none", None),
            ("42", 42),
            ("2.5", 2.5),
            ("file:/tmp/db.sqlite", "file:/tmp/db.sqlite"),
            ("sqlite", "sqlite"),
        ],
    )
    def test_coercion(self, raw, expected):
        assert coerce_option(raw) == expected

    def test_parse_pairs(self):
        options = parse_backend_opts(
            ["uri=file:x.db", "pool_size=2", "auto_refresh=false"]
        )
        assert options == {
            "uri": "file:x.db",
            "pool_size": 2,
            "auto_refresh": False,
        }
        assert parse_backend_opts(None) == {}

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_backend_opts(["pool_size"])
        with pytest.raises(ValueError, match="key=value"):
            parse_backend_opts(["=3"])

    def test_value_may_contain_equals(self):
        options = parse_backend_opts(["uri=file:x.db?mode=memory"])
        assert options["uri"] == "file:x.db?mode=memory"
