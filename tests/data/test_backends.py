"""Unit tests for the pluggable evaluation backends (DESIGN.md §2c).

The answer-identity contract across backends is enforced at scale by
``tests/properties/test_prop_backends.py``; these tests pin the seam
itself — construction, dispatch, staleness, sharding layout, executor
plumbing, SQL lifecycle — on the chocolate-store domain.

Tests taking the ``backend_name`` fixture run once per registered
backend (restrict with ``pytest --backend sql``).
"""

from __future__ import annotations

import random
import sqlite3
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.parser import parse_query
from repro.core.query import QhornQuery
from repro.data import (
    BACKENDS,
    BitmaskBackend,
    EvaluationBackend,
    QueryEngine,
    RelationIndex,
    ShardedBitmaskBackend,
    SqlBackend,
    create_backend,
)
from repro.data.backends import DbApiBackend, PooledConnectionSource
from repro.data.chocolate import (
    intro_query,
    random_store,
    storefront_vocabulary,
)
from repro.data.relation import NestedObject

WORKLOAD = [
    "∀x1 ∃x2x3",
    "∀x1→x2",
    "∃x3x4",
    "∀x3",
]


@pytest.fixture(scope="module")
def vocab():
    return storefront_vocabulary()


@pytest.fixture()
def store():
    return random_store(60, random.Random(1234))


def _queries():
    out = [parse_query(s, n=4) for s in WORKLOAD]
    out.append(QhornQuery(n=4))  # empty query
    out.append(parse_query("∀x1", n=4, require_guarantees=False))
    return out


def _reference(engine, query):
    return [o.key for o in engine.execute(query)]


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(BACKENDS) == {
            "bitmask",
            "dbapi",
            "sharded",
            "numpy",
            "sql",
        }

    def test_unknown_backend_rejected(self, store, vocab):
        with pytest.raises(ValueError, match="unknown evaluation backend"):
            create_backend("async", store, vocab)

    def test_options_forwarded(self, store, vocab):
        backend = create_backend("sharded", store, vocab, shard_size=10)
        assert backend.shard_size == 10
        assert backend.shard_count == 6

    def test_created_backends_satisfy_protocol(
        self, store, vocab, backend_name, backend_options
    ):
        backend = create_backend(backend_name, store, vocab, **backend_options)
        assert isinstance(backend, EvaluationBackend)
        assert backend.name == backend_name


class TestBackendContract:
    def test_agrees_with_reference_path(
        self, store, vocab, backend_name, backend_options
    ):
        engine = QueryEngine(store, vocab)
        backend = create_backend(backend_name, store, vocab, **backend_options)
        for query in _queries():
            expected = _reference(engine, query)
            assert [o.key for o in backend.execute(query)] == expected
            labels = backend.matches_many(query)
            assert labels == [o.key in expected for o in store]
            bits = backend.matching_bits(query)
            assert [bool(bits >> i & 1) for i in range(len(store))] == labels

    def test_explicit_objects_and_foreign_fallback(
        self, store, vocab, backend_name, backend_options
    ):
        backend = create_backend(backend_name, store, vocab, **backend_options)
        engine = QueryEngine(store, vocab)
        query = intro_query()
        objs = store.objects[:7]
        foreign = NestedObject(
            key="not-in-store",
            rows=[
                {
                    "isDark": True,
                    "isSugarFree": True,
                    "hasNuts": True,
                    "hasFilling": True,
                    "origin": "Belgium",
                }
            ],
        )
        labels = backend.matches_many(query, objs + [foreign])
        assert labels[:-1] == [engine.matches(query, o) for o in objs]
        assert labels[-1] == engine.matches(query, foreign)

    def test_auto_refresh_sees_inserts(
        self, store, vocab, backend_name, backend_options
    ):
        backend = create_backend(backend_name, store, vocab, **backend_options)
        query = QhornQuery(n=4)
        before = backend.matches_many(query)
        assert backend.is_stale is False
        store.add_object(
            "late-arrival",
            rows=[
                {
                    "isDark": True,
                    "isSugarFree": True,
                    "hasNuts": True,
                    "hasFilling": True,
                    "origin": "Sweden",
                }
            ],
        )
        assert backend.is_stale
        after = backend.matches_many(query)
        assert len(after) == len(before) + 1
        assert after[-1] is True
        assert backend.is_stale is False

    def test_explicit_refresh(
        self, store, vocab, backend_name, backend_options
    ):
        backend = create_backend(
            backend_name, store, vocab,
            **dict(backend_options, auto_refresh=False),
        )
        backend.matches_many(QhornQuery(n=4))
        assert backend.refresh() is False  # fresh: no rebuild
        store.add_object("x", rows=[])
        assert backend.refresh() is True
        assert len(backend.matches_many(QhornQuery(n=4))) == len(store)
        assert backend.refresh(force=True) is True

    def test_width_mismatch_rejected(
        self, store, vocab, backend_name, backend_options
    ):
        backend = create_backend(backend_name, store, vocab, **backend_options)
        with pytest.raises(ValueError):
            backend.execute(parse_query("∃x1x2x3x4x5"))

    def test_describe_is_informative(
        self, store, vocab, backend_name, backend_options
    ):
        backend = create_backend(backend_name, store, vocab, **backend_options)
        assert backend_name in backend.describe()
        backend.matches_many(intro_query())
        assert str(len(store)) in backend.describe()


class TestEngineDispatch:
    def test_backend_names_construct(self, store, vocab, backend_name):
        engine = QueryEngine(store, vocab, backend=backend_name)
        assert engine.backend_name == backend_name
        reference = QueryEngine(store, vocab)
        for query in _queries():
            assert [o.key for o in engine.execute_batch(query)] == (
                _reference(reference, query)
            )

    def test_unknown_name_fails_at_construction(self, store, vocab):
        with pytest.raises(ValueError, match="unknown evaluation backend"):
            QueryEngine(store, vocab, backend="remote")

    def test_backend_options_thread_through(self, store, vocab):
        engine = QueryEngine(
            store, vocab, backend="sharded", backend_options={"shard_size": 8}
        )
        assert engine.backend.shard_size == 8

    def test_injected_index_implies_bitmask(self, store, vocab):
        index = RelationIndex(store, vocab)
        with pytest.warns(DeprecationWarning, match="index=.*deprecated"):
            engine = QueryEngine(store, vocab, index=index)
        assert isinstance(engine.backend, BitmaskBackend)
        assert engine.index is index
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="bitmask backend"):
                QueryEngine(store, vocab, index=index, backend="sql")

    def test_deprecated_index_routes_through_backend_options(
        self, store, vocab
    ):
        """The shim is a pure rewrite onto the v2 path: same backend
        options dict the explicit spelling would produce."""
        index = RelationIndex(store, vocab)
        with pytest.warns(DeprecationWarning):
            engine = QueryEngine(store, vocab, index=index)
        assert engine.backend_name == "bitmask"
        assert engine._backend_options == {"index": index}
        explicit = QueryEngine(
            store, vocab, backend="bitmask", backend_options={"index": index}
        )
        assert explicit.index is index

    def test_injected_backend_instance(self, store, vocab):
        backend = ShardedBitmaskBackend(store, vocab, shard_size=5)
        engine = QueryEngine(store, vocab, backend=backend)
        assert engine.backend is backend
        assert engine.backend_name == "sharded"

    def test_backend_relation_mismatch_rejected(self, vocab):
        a = random_store(5, random.Random(1))
        b = random_store(5, random.Random(2))
        with pytest.raises(ValueError, match="different relation"):
            QueryEngine(a, vocab, backend=SqlBackend(b, vocab))

    def test_index_property_is_introspection_for_other_backends(
        self, store, vocab
    ):
        engine = QueryEngine(store, vocab, backend="sql")
        index = engine.index
        assert isinstance(index, RelationIndex)
        assert index.distinct_masks <= 16
        assert engine.index is index  # cached


class TestShardedLayout:
    def test_shard_size_validation(self, store, vocab):
        with pytest.raises(ValueError):
            ShardedBitmaskBackend(store, vocab, shard_size=0)

    @pytest.mark.parametrize("shard_size", [1, 3, 59, 60, 61, 4096])
    def test_shard_boundaries_are_unobservable(self, store, vocab, shard_size):
        single = QueryEngine(store, vocab)
        backend = ShardedBitmaskBackend(store, vocab, shard_size=shard_size)
        for query in _queries():
            assert backend.matching_bits(query) == (
                single.index.matching_bits(query)
            )

    def test_executor_evaluates_in_parallel_shards(self, store, vocab):
        single = QueryEngine(store, vocab)
        with ThreadPoolExecutor(max_workers=4) as pool:
            backend = ShardedBitmaskBackend(
                store, vocab, shard_size=7, executor=pool
            )
            for query in _queries():
                assert backend.matches_many(query) == (
                    single.matches_many(query)
                )
            assert "parallel" in backend.describe()


class TestNumpyKernel:
    """Construction-time validation and kernel plumbing of the packed
    numpy paths (answer identity lives in the property suite)."""

    def test_unknown_kernel_rejected(self, store, vocab):
        with pytest.raises(ValueError, match="unknown kernel"):
            ShardedBitmaskBackend(store, vocab, kernel="fortran")

    def test_sharded_numpy_kernel_is_unobservable(self, store, vocab):
        single = QueryEngine(store, vocab)
        backend = ShardedBitmaskBackend(
            store, vocab, shard_size=7, kernel="numpy"
        )
        for query in _queries():
            assert backend.matching_bits(query) == (
                single.index.matching_bits(query)
            )
            assert backend.matches_many(query) == single.matches_many(query)
        assert "numpy kernel" in backend.describe()

    def test_numpy_kernel_through_executor(self, store, vocab):
        single = QueryEngine(store, vocab)
        with ThreadPoolExecutor(max_workers=4) as pool:
            backend = ShardedBitmaskBackend(
                store, vocab, shard_size=7, kernel="numpy", executor=pool
            )
            for query in _queries():
                assert backend.matches_many(query) == (
                    single.matches_many(query)
                )

    def test_over_wide_vocabulary_rejected(self):
        from repro.data import BoolIs, NestedRelation, Vocabulary
        from repro.data.schema import Attribute, FlatSchema, NestedSchema

        flat = FlatSchema(
            name="wide",
            attributes=tuple(
                Attribute.boolean(f"b{i + 1}") for i in range(65)
            ),
        )
        wide = Vocabulary(flat, [BoolIs(f"b{i + 1}") for i in range(65)])
        relation = NestedRelation(NestedSchema(name="wobjs", embedded=flat))
        with pytest.raises(ValueError, match="at most n=64"):
            create_backend("numpy", relation, wide)
        with pytest.raises(ValueError, match="at most n=64"):
            ShardedBitmaskBackend(relation, wide, kernel="numpy")

    def test_ingest_requires_pool_mode(self, store, vocab):
        with pytest.raises(ValueError, match="worker-pool modes"):
            ShardedBitmaskBackend(store, vocab, ingest="raw")
        with pytest.raises(ValueError, match="unknown ingest mode"):
            ShardedBitmaskBackend(
                store, vocab, processes=2, ingest="streaming"
            )

    def test_reduce_path_matches_zeta_path(self, store, vocab, monkeypatch):
        """With the zeta-table budget forced to zero the kernel falls
        back to the masked-reduce path; answers must not change."""
        from repro.data.backends import vectorized

        zeta = create_backend("numpy", store, vocab)
        zeta.refresh(force=True)
        assert zeta._packed._zeta_bits >= 0

        monkeypatch.setattr(vectorized, "ZETA_TABLE_BUDGET", 0)
        reduce_only = create_backend("numpy", store, vocab)
        reduce_only.refresh(force=True)
        assert reduce_only._packed._zeta_bits == -1

        for query in _queries():
            assert reduce_only.matching_bits(query) == (
                zeta.matching_bits(query)
            )


class TestPooledConnectionSource:
    def test_bounded_capacity_and_reuse(self):
        pool = PooledConnectionSource(
            lambda: sqlite3.connect(":memory:"), maxsize=2, timeout=0.05
        )
        a = pool.acquire()
        b = pool.acquire()
        with pytest.raises(TimeoutError, match="maxsize=2"):
            pool.acquire()
        pool.release(a)
        c = pool.acquire()
        assert c is a  # idle connection reused, not reopened
        assert pool.connections_opened == 2
        pool.release(b)
        pool.release(c)
        pool.close()

    def test_health_check_discards_stale_on_checkout(self):
        pool = PooledConnectionSource(
            lambda: sqlite3.connect(":memory:"), maxsize=2
        )
        stale = pool.acquire()
        pool.release(stale)
        stale.close()  # dies behind the pool's back
        fresh = pool.acquire()
        assert fresh is not stale
        assert pool.health_failures == 1
        fresh.execute("SELECT 1")  # the replacement really works
        pool.release(fresh)
        pool.close()

    def test_close_refuses_checkout_and_drains_idle(self):
        pool = PooledConnectionSource(lambda: sqlite3.connect(":memory:"))
        with pool.connection():
            pass
        assert pool.idle_count == 1
        pool.close()
        assert pool.idle_count == 0
        with pytest.raises(RuntimeError, match="closed"):
            pool.acquire()
        pool.close()  # idempotent

    def test_discard_frees_the_slot(self):
        pool = PooledConnectionSource(
            lambda: sqlite3.connect(":memory:"), maxsize=1, timeout=0.05
        )
        conn = pool.acquire()
        pool.discard(conn)
        replacement = pool.acquire()  # would TimeoutError if slot leaked
        pool.release(replacement)
        pool.close()


class _FlakyConnection:
    """Passes ``SELECT 1`` health checks; once poisoned, the next real
    statement raises as if the server dropped the connection."""

    def __init__(self, inner):
        self._inner = inner
        self.poisoned = False

    def cursor(self):
        return _FlakyCursor(self, self._inner.cursor())

    def commit(self):
        self._inner.commit()

    def close(self):
        self._inner.close()


class _FlakyCursor:
    def __init__(self, owner, inner):
        self._owner = owner
        self._inner = inner

    def execute(self, sql, params=()):
        if self._owner.poisoned and sql != "SELECT 1":
            raise sqlite3.OperationalError("server closed the connection")
        return self._inner.execute(sql, params)

    def fetchall(self):
        return self._inner.fetchall()

    def close(self):
        self._inner.close()


class TestDbApiBackendLifecycle:
    def test_file_backed_uri_and_reuse(self, store, vocab, tmp_path):
        uri = f"file:{tmp_path}/store.sqlite"
        reference = QueryEngine(store, vocab)
        query = intro_query()
        expected = _reference(reference, query)
        with DbApiBackend(store, vocab, uri=uri) as backend:
            assert [o.key for o in backend.execute(query)] == expected
        assert (tmp_path / "store.sqlite").exists()
        # Reusing the file is safe: tables are dropped and recreated.
        with DbApiBackend(store, vocab, uri=uri) as backend:
            assert [o.key for o in backend.execute(query)] == expected

    def test_rejects_compiled_query(self, store, vocab):
        with DbApiBackend(store, vocab) as backend:
            with pytest.raises(TypeError, match="CompiledQuery"):
                backend.execute(intro_query().compile())

    def test_statement_cache_compiles_once(self, store, vocab):
        with DbApiBackend(store, vocab) as backend:
            query = intro_query()
            backend.execute(query)
            cached = backend._sql_cache[query]
            backend.matches_many(query)
            assert backend._sql_cache[query] is cached
            assert len(backend._sql_cache) == 1

    def test_retry_once_on_mid_flight_failure(self, store, vocab, tmp_path):
        path = str(tmp_path / "flaky.sqlite")
        made = []

        def connect():
            conn = _FlakyConnection(
                sqlite3.connect(path, check_same_thread=False)
            )
            made.append(conn)
            return conn

        backend = DbApiBackend(store, vocab, connect=connect, pool_size=2)
        try:
            query = intro_query()
            first = backend.matching_bits(query)
            opened = backend.pool.connections_opened
            for conn in made:
                conn.poisoned = True  # slips past the checkout health check
            assert backend.matching_bits(query) == first
            # The poisoned checkout was discarded and the statement
            # re-ran on a freshly opened connection.
            assert backend.pool.connections_opened == opened + 1
            assert backend.pool.stale_retries == 1
            assert "1 stale retries" in backend.pool.describe()
        finally:
            backend.close()

    def test_close_is_idempotent(self, store, vocab):
        backend = DbApiBackend(store, vocab)
        backend.matches_many(QhornQuery(n=4))
        backend.close()
        backend.close()


class TestSqlBackendLifecycle:
    def test_rejects_compiled_query(self, store, vocab):
        backend = SqlBackend(store, vocab)
        with pytest.raises(TypeError, match="CompiledQuery"):
            backend.execute(intro_query().compile())

    def test_statement_cache_compiles_once(self, store, vocab):
        backend = SqlBackend(store, vocab)
        query = intro_query()
        backend.execute(query)
        cached = backend._sql_cache[query]
        backend.matches_many(query)
        assert backend._sql_cache[query] is cached
        assert len(backend._sql_cache) == 1

    def test_context_manager_closes(self, store, vocab):
        with SqlBackend(store, vocab) as backend:
            assert backend.matches_many(intro_query())
        assert backend._engine is None
        # Usable again after close: evaluation reloads the database.
        assert len(backend.matches_many(QhornQuery(n=4))) == len(store)
        backend.close()
        backend.close()  # idempotent
