"""Tests for the generic synthetic relation generator."""

from __future__ import annotations

import random

import pytest

from repro.data.chocolate import box_schema
from repro.data.generator import (
    RelationGenerator,
    bernoulli,
    categorical,
    uniform_float,
    uniform_int,
)
from repro.data.schema import Attribute, FlatSchema, NestedSchema


class TestSamplers:
    def test_bernoulli_bounds(self):
        rng = random.Random(1)
        always = bernoulli(1.0)
        never = bernoulli(0.0)
        assert all(always(rng) for _ in range(20))
        assert not any(never(rng) for _ in range(20))
        with pytest.raises(ValueError):
            bernoulli(1.5)

    def test_uniform_int_range(self):
        rng = random.Random(2)
        s = uniform_int(3, 5)
        assert all(3 <= s(rng) <= 5 for _ in range(50))
        with pytest.raises(ValueError):
            uniform_int(5, 3)

    def test_uniform_float_range(self):
        rng = random.Random(3)
        s = uniform_float(0.0, 2.0)
        assert all(0.0 <= s(rng) <= 2.0 for _ in range(50))
        with pytest.raises(ValueError):
            uniform_float(2.0, 0.0)

    def test_categorical_weights(self):
        rng = random.Random(4)
        s = categorical({"a": 1.0, "b": 0.0})
        assert all(s(rng) == "a" for _ in range(30))
        s2 = categorical(values=("x", "y"))
        assert {s2(rng) for _ in range(50)} == {"x", "y"}
        with pytest.raises(ValueError):
            categorical()


class TestRelationGenerator:
    def test_generates_valid_relation(self):
        gen = RelationGenerator(box_schema(), rows_per_object=(1, 4))
        relation = gen.generate(25, random.Random(7))
        assert len(relation) == 25
        for obj in relation:
            assert 1 <= len(obj.rows) <= 4

    def test_seeded_determinism(self):
        gen = RelationGenerator(box_schema())
        a = gen.generate(10, random.Random(42))
        b = gen.generate(10, random.Random(42))
        assert [o.rows for o in a] == [o.rows for o in b]

    def test_sampler_override(self):
        gen = RelationGenerator(
            box_schema(), samplers={"isDark": bernoulli(1.0)}
        )
        relation = gen.generate(10, random.Random(5))
        assert all(r["isDark"] for r in relation.all_rows())

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError):
            RelationGenerator(box_schema(), samplers={"ghost": bernoulli()})

    def test_bad_rows_range_rejected(self):
        with pytest.raises(ValueError):
            RelationGenerator(box_schema(), rows_per_object=(5, 2))

    def test_default_samplers_cover_all_types(self):
        schema = NestedSchema(
            "N",
            embedded=FlatSchema(
                "F",
                (
                    Attribute.boolean("b"),
                    Attribute.integer("i"),
                    Attribute.real("f"),
                    Attribute.category("c", ("u", "v")),
                    Attribute.category("open_cat"),
                ),
            ),
            object_attributes=(Attribute.integer("rank"),),
        )
        relation = RelationGenerator(schema).generate(5, random.Random(1))
        for obj in relation:
            assert "rank" in obj.attributes
            for row in obj.rows:
                assert set(row) == {"b", "i", "f", "c", "open_cat"}
                assert row["c"] in ("u", "v")
