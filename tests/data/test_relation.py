"""Tests for flat/nested relation instances."""

from __future__ import annotations

import pytest

from repro.data.chocolate import box_schema, chocolate_schema
from repro.data.relation import FlatRelation, NestedObject, NestedRelation
from repro.data.schema import SchemaError


def chocolate(**overrides):
    row = dict(
        isDark=True, hasFilling=False, isSugarFree=False, hasNuts=False,
        origin="Belgium",
    )
    row.update(overrides)
    return row


class TestFlatRelation:
    def test_insert_validates(self):
        rel = FlatRelation(chocolate_schema())
        rel.insert(chocolate())
        assert len(rel) == 1
        with pytest.raises(SchemaError):
            rel.insert({"isDark": True})

    def test_rows_are_copies(self):
        rel = FlatRelation(chocolate_schema(), [chocolate()])
        rel.rows[0]["isDark"] = False
        assert rel.rows[0]["isDark"] is True

    def test_iteration(self):
        rel = FlatRelation(chocolate_schema(), [chocolate(), chocolate()])
        assert sum(1 for _ in rel) == 2


class TestNestedRelation:
    def test_add_object(self):
        rel = NestedRelation(box_schema())
        obj = rel.add_object(
            "gift", rows=[chocolate()], attributes={"name": "gift"}
        )
        assert rel.get("gift") is obj
        assert len(rel) == 1

    def test_duplicate_key_rejected(self):
        rel = NestedRelation(box_schema())
        rel.add_object("a", rows=[chocolate()])
        with pytest.raises(SchemaError):
            rel.add_object("a", rows=[chocolate()])

    def test_embedded_rows_validated(self):
        rel = NestedRelation(box_schema())
        with pytest.raises(SchemaError):
            rel.add_object("bad", rows=[{"isDark": "yes"}])

    def test_object_attributes_validated(self):
        rel = NestedRelation(box_schema())
        with pytest.raises(SchemaError):
            rel.add_object("bad", rows=[chocolate()], attributes={"name": 7})

    def test_missing_key_raises(self):
        rel = NestedRelation(box_schema())
        with pytest.raises(KeyError):
            rel.get("ghost")

    def test_all_rows_flattens(self):
        rel = NestedRelation(box_schema())
        rel.add_object("a", rows=[chocolate(), chocolate(isDark=False)])
        rel.add_object("b", rows=[chocolate(hasNuts=True)])
        assert len(rel.all_rows()) == 3


class TestNestedObjectFormat:
    def test_format_contains_rows(self):
        obj = NestedObject(
            key="gift", rows=[chocolate(), chocolate(origin="Sweden")]
        )
        text = obj.format(columns=["origin", "isDark"])
        assert "gift:" in text
        assert "Sweden" in text
        assert text.count("\n") == 3  # title + header + 2 rows

    def test_empty_object(self):
        assert "(empty)" in NestedObject(key="box").format()
