"""Tests for the query engine and example factory over nested data."""

from __future__ import annotations

import pytest

from repro.core.parser import parse_query
from repro.core.tuples import Question
from repro.data import ExampleFactory, QueryEngine
from repro.data.chocolate import (
    intro_query,
    paper_figure1_relation,
    paper_vocabulary,
    random_store,
    storefront_vocabulary,
)


class TestQueryEngine:
    def test_paper_query_on_fig1_boxes(self):
        """§2's query (1): every chocolate dark, some filled Madagascar."""
        engine = QueryEngine(paper_figure1_relation(), paper_vocabulary())
        query = parse_query("∀x1 ∃x2x3")
        answers = engine.execute(query)
        # Global Ground has a white chocolate; Europe's Finest lacks a
        # filled Madagascar chocolate: neither box matches.
        assert answers == []

    def test_matching_box(self):
        rel = paper_figure1_relation()
        rel.add_object(
            "Madagascar Select",
            rows=[
                dict(origin="Madagascar", isSugarFree=True, isDark=True,
                     hasFilling=True, hasNuts=False),
            ],
        )
        engine = QueryEngine(rel, paper_vocabulary())
        answers = engine.execute(parse_query("∀x1 ∃x2x3"))
        assert [o.key for o in answers] == ["Madagascar Select"]

    def test_intro_scenario_counts(self):
        store = random_store(60)
        engine = QueryEngine(store, storefront_vocabulary())
        answers = engine.execute(intro_query())
        for box in answers:
            assert all(r["isDark"] for r in box.rows)
            assert any(
                r["isDark"] and r["isSugarFree"] and r["hasNuts"]
                for r in box.rows
            )

    def test_width_mismatch_rejected(self):
        engine = QueryEngine(paper_figure1_relation(), paper_vocabulary())
        with pytest.raises(ValueError):
            engine.execute(parse_query("∃x1x2x3x4"))

    def test_explain_reports_every_expression(self):
        engine = QueryEngine(paper_figure1_relation(), paper_vocabulary())
        query = parse_query("∀x1 ∃x2x3")
        box = paper_figure1_relation().get("Global Ground")
        reports = engine.explain(query, box)
        assert len(reports) == 2
        by_expr = {r.expression: r for r in reports}
        assert not by_expr["∀x1"].satisfied  # white chocolate present
        assert by_expr["∃x2x3"].satisfied  # Madagascar filled exists

    def test_explain_guarantee_detail(self):
        engine = QueryEngine(paper_figure1_relation(), paper_vocabulary())
        query = parse_query("∀x2→x1", n=3)
        box = paper_figure1_relation().get("Europe's Finest")
        reports = engine.explain(query, box)
        # Europe's Finest: 100 and 110 -> implication holds, witness 110.
        assert reports[0].satisfied


class TestExampleFactory:
    def test_synthesize_matches_question(self):
        vocab = paper_vocabulary()
        factory = ExampleFactory(vocab)
        q = Question.from_strings("111", "011", "000")
        obj = factory.synthesize(q)
        assert vocab.abstract_object(obj.rows) == q.tuples
        assert len(obj.rows) == 3

    def test_keys_unique(self):
        factory = ExampleFactory(paper_vocabulary())
        q = Question.from_strings("111")
        assert factory.synthesize(q).key != factory.synthesize(q).key

    def test_from_database_prefers_real_rows(self):
        vocab = paper_vocabulary()
        store = paper_figure1_relation()
        factory = ExampleFactory(vocab, database=store)
        q = Question.from_strings("111", "000")
        obj = factory.from_database(q)
        assert vocab.abstract_object(obj.rows) == q.tuples
        # both tuples exist in Fig. 1's data, so rows come from the store
        store_rows = [tuple(sorted(r.items())) for r in store.all_rows()]
        for row in obj.rows:
            assert tuple(sorted(row.items())) in store_rows

    def test_from_database_falls_back_to_synthesis(self):
        vocab = paper_vocabulary()
        store = paper_figure1_relation()
        factory = ExampleFactory(vocab, database=store)
        q = Question.from_strings("101")  # no such chocolate in Fig. 1
        obj = factory.from_database(q)
        assert vocab.abstract_object(obj.rows) == q.tuples

    def test_no_database_degrades_to_synthesis(self):
        factory = ExampleFactory(paper_vocabulary(), database=None)
        q = Question.from_strings("110")
        obj = factory.from_database(q)
        assert paper_vocabulary().abstract_object(obj.rows) == q.tuples
