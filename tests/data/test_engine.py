"""Tests for the query engine and example factory over nested data."""

from __future__ import annotations

import random

import pytest

from repro.core.parser import parse_query
from repro.core.tuples import Question
from repro.data import ExampleFactory, QueryEngine, RelationIndex
from repro.data.chocolate import (
    intro_query,
    paper_figure1_relation,
    paper_vocabulary,
    random_store,
    storefront_vocabulary,
)


class TestQueryEngine:
    def test_paper_query_on_fig1_boxes(self):
        """§2's query (1): every chocolate dark, some filled Madagascar."""
        engine = QueryEngine(paper_figure1_relation(), paper_vocabulary())
        query = parse_query("∀x1 ∃x2x3")
        answers = engine.execute(query)
        # Global Ground has a white chocolate; Europe's Finest lacks a
        # filled Madagascar chocolate: neither box matches.
        assert answers == []

    def test_matching_box(self):
        rel = paper_figure1_relation()
        rel.add_object(
            "Madagascar Select",
            rows=[
                dict(origin="Madagascar", isSugarFree=True, isDark=True,
                     hasFilling=True, hasNuts=False),
            ],
        )
        engine = QueryEngine(rel, paper_vocabulary())
        answers = engine.execute(parse_query("∀x1 ∃x2x3"))
        assert [o.key for o in answers] == ["Madagascar Select"]

    def test_intro_scenario_counts(self):
        store = random_store(60)
        engine = QueryEngine(store, storefront_vocabulary())
        answers = engine.execute(intro_query())
        for box in answers:
            assert all(r["isDark"] for r in box.rows)
            assert any(
                r["isDark"] and r["isSugarFree"] and r["hasNuts"]
                for r in box.rows
            )

    def test_width_mismatch_rejected(self):
        engine = QueryEngine(paper_figure1_relation(), paper_vocabulary())
        with pytest.raises(ValueError):
            engine.execute(parse_query("∃x1x2x3x4"))

    def test_explain_reports_every_expression(self):
        engine = QueryEngine(paper_figure1_relation(), paper_vocabulary())
        query = parse_query("∀x1 ∃x2x3")
        box = paper_figure1_relation().get("Global Ground")
        reports = engine.explain(query, box)
        assert len(reports) == 2
        by_expr = {r.expression: r for r in reports}
        assert not by_expr["∀x1"].satisfied  # white chocolate present
        assert by_expr["∃x2x3"].satisfied  # Madagascar filled exists

    def test_explain_guarantee_detail(self):
        engine = QueryEngine(paper_figure1_relation(), paper_vocabulary())
        query = parse_query("∀x2→x1", n=3)
        box = paper_figure1_relation().get("Europe's Finest")
        reports = engine.explain(query, box)
        # Europe's Finest: 100 and 110 -> implication holds, witness 110.
        assert reports[0].satisfied


class TestBatchEngine:
    def test_execute_batch_matches_execute(self):
        store = random_store(80, random.Random(3))
        engine = QueryEngine(store, storefront_vocabulary())
        for shorthand in ("∀x1 ∃x1x2x3", "∀x2→x1", "∃x3x4", "∀x1x2→x4 ∃x3"):
            query = parse_query(shorthand, n=4)
            assert [o.key for o in engine.execute_batch(query)] == [
                o.key for o in engine.execute(query)
            ]

    def test_matches_many_whole_relation(self):
        store = random_store(40, random.Random(4))
        engine = QueryEngine(store, storefront_vocabulary())
        labels = engine.matches_many(intro_query())
        assert labels == [engine.matches(intro_query(), o) for o in store]

    def test_matches_many_foreign_object(self):
        engine = QueryEngine(paper_figure1_relation(), paper_vocabulary())
        query = parse_query("∀x1 ∃x2x3")
        foreign = paper_figure1_relation().get("Global Ground")
        # Same key as an indexed object but a different instance: must be
        # abstracted on the fly, not looked up by key alone.
        (label,) = engine.matches_many(query, [foreign])
        assert label == engine.matches(query, foreign)

    def test_index_auto_refresh_on_insert(self):
        rel = paper_figure1_relation()
        engine = QueryEngine(rel, paper_vocabulary())
        query = parse_query("∀x1 ∃x2x3")
        assert engine.execute_batch(query) == []
        rel.add_object(
            "Madagascar Select",
            rows=[
                dict(origin="Madagascar", isSugarFree=True, isDark=True,
                     hasFilling=True, hasNuts=False),
            ],
        )
        assert engine.index.is_stale
        assert [o.key for o in engine.execute_batch(query)] == [
            "Madagascar Select"
        ]
        assert not engine.index.is_stale

    def test_shared_index_across_engines(self):
        store = random_store(30, random.Random(5))
        vocab = storefront_vocabulary()
        index = RelationIndex(store, vocab)
        with pytest.warns(DeprecationWarning, match="index=.*deprecated"):
            a = QueryEngine(store, vocab, index=index)
        # The non-deprecated spelling of the same sharing.
        b = QueryEngine(
            store, vocab, backend="bitmask", backend_options={"index": index}
        )
        assert a.index is b.index
        assert [o.key for o in a.execute_batch(intro_query())] == [
            o.key for o in b.execute_batch(intro_query())
        ]

    def test_index_rejects_foreign_relation(self):
        vocab = storefront_vocabulary()
        index = RelationIndex(random_store(5, random.Random(6)), vocab)
        engine = QueryEngine(
            random_store(5, random.Random(8)),
            vocab,
            backend="bitmask",
            backend_options={"index": index},
        )
        with pytest.raises(ValueError):
            engine.backend  # the mismatch surfaces at the lazy build

    def test_batch_width_mismatch_rejected(self):
        engine = QueryEngine(paper_figure1_relation(), paper_vocabulary())
        with pytest.raises(ValueError):
            engine.execute_batch(parse_query("∃x1x2x3x4"))
        with pytest.raises(ValueError):
            engine.matches_many(parse_query("∃x1x2x3x4"))

    def test_execute_validates_once(self, monkeypatch):
        engine = QueryEngine(random_store(20), storefront_vocabulary())
        calls = []
        original = QueryEngine._check
        monkeypatch.setattr(
            QueryEngine,
            "_check",
            lambda self, query: (calls.append(1), original(self, query))[1],
        )
        engine.execute(intro_query())
        assert len(calls) == 1


class TestExampleFactory:
    def test_synthesize_matches_question(self):
        vocab = paper_vocabulary()
        factory = ExampleFactory(vocab)
        q = Question.from_strings("111", "011", "000")
        obj = factory.synthesize(q)
        assert vocab.abstract_object(obj.rows) == q.tuples
        assert len(obj.rows) == 3

    def test_keys_unique(self):
        factory = ExampleFactory(paper_vocabulary())
        q = Question.from_strings("111")
        assert factory.synthesize(q).key != factory.synthesize(q).key

    def test_from_database_prefers_real_rows(self):
        vocab = paper_vocabulary()
        store = paper_figure1_relation()
        factory = ExampleFactory(vocab, database=store)
        q = Question.from_strings("111", "000")
        obj = factory.from_database(q)
        assert vocab.abstract_object(obj.rows) == q.tuples
        # both tuples exist in Fig. 1's data, so rows come from the store
        store_rows = [tuple(sorted(r.items())) for r in store.all_rows()]
        for row in obj.rows:
            assert tuple(sorted(row.items())) in store_rows

    def test_from_database_falls_back_to_synthesis(self):
        vocab = paper_vocabulary()
        store = paper_figure1_relation()
        factory = ExampleFactory(vocab, database=store)
        q = Question.from_strings("101")  # no such chocolate in Fig. 1
        obj = factory.from_database(q)
        assert vocab.abstract_object(obj.rows) == q.tuples

    def test_no_database_degrades_to_synthesis(self):
        factory = ExampleFactory(paper_vocabulary(), database=None)
        q = Question.from_strings("110")
        obj = factory.from_database(q)
        assert paper_vocabulary().abstract_object(obj.rows) == q.tuples

    def test_from_database_sees_rows_inserted_later(self):
        """Regression: the mask→rows index was built lazily once and never
        invalidated, so objects appended after the first ``from_database``
        call were silently ignored."""
        vocab = paper_vocabulary()
        store = paper_figure1_relation()
        factory = ExampleFactory(vocab, database=store)
        q = Question.from_strings("101")  # no such chocolate in Fig. 1 yet
        factory.from_database(q)  # builds the index without 101
        late_row = dict(origin="Madagascar", isSugarFree=False, isDark=True,
                        hasFilling=False, hasNuts=True)
        assert vocab.boolean_tuple(late_row) == Question.from_strings(
            "101"
        ).sorted_tuples()[0]
        store.add_object("Late Arrival", rows=[late_row])
        obj = factory.from_database(q)
        assert obj.rows == [late_row]  # the real row, not a synthetic one

    def test_refresh_forces_reindex_after_inplace_edit(self):
        vocab = paper_vocabulary()
        store = paper_figure1_relation()
        factory = ExampleFactory(vocab, database=store)
        q = Question.from_strings("101")
        factory.from_database(q)
        # In-place row mutation bypasses the version counter...
        target = store.get("Global Ground")
        target.rows.append(
            dict(origin="Madagascar", isSugarFree=False, isDark=True,
                 hasFilling=False, hasNuts=True)
        )
        # ...so an explicit refresh is required to pick it up.
        factory.refresh()
        obj = factory.from_database(q)
        assert obj.rows == [target.rows[-1]]
