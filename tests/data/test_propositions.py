"""Tests for propositions, vocabularies, interference and synthesis (§2)."""

from __future__ import annotations


import pytest

from repro.core import tuples as bt
from repro.core.tuples import Question
from repro.data.chocolate import chocolate_schema, paper_vocabulary
from repro.data.propositions import (
    Between,
    BoolIs,
    Equals,
    GreaterThan,
    InterferenceError,
    LessThan,
    OneOf,
    Proposition,
    Vocabulary,
)
from repro.data.schema import Attribute, FlatSchema

NUM_SCHEMA = FlatSchema(
    "Reading",
    (
        Attribute.integer("count"),
        Attribute.real("weight"),
        Attribute.boolean("flag"),
        Attribute.category("kind", ("a", "b", "c")),
    ),
)


class TestPropositionEvaluation:
    def test_bool_is(self):
        p = BoolIs("flag")
        assert p.evaluate({"flag": True})
        assert not p.evaluate({"flag": False})
        assert BoolIs("flag", value=False).evaluate({"flag": False})

    def test_equals(self):
        p = Equals("kind", "a")
        assert p.evaluate({"kind": "a"})
        assert not p.evaluate({"kind": "b"})

    def test_one_of(self):
        p = OneOf("kind", {"a", "b"})
        assert p.evaluate({"kind": "b"})
        assert not p.evaluate({"kind": "c"})
        with pytest.raises(ValueError):
            OneOf("kind", set())

    def test_comparisons(self):
        assert LessThan("count", 5).evaluate({"count": 4})
        assert not LessThan("count", 5).evaluate({"count": 5})
        assert GreaterThan("weight", 1.5).evaluate({"weight": 2.0})
        assert Between("count", 2, 4).evaluate({"count": 3})
        assert not Between("count", 2, 4).evaluate({"count": 5})
        with pytest.raises(ValueError):
            Between("count", 4, 2)

    def test_names(self):
        assert BoolIs("flag").name == "flag"
        assert BoolIs("flag", value=False).name == "not flag"
        assert Equals("kind", "a", name="is-a").name == "is-a"
        assert "kind in" in OneOf("kind", {"a"}).describe()
        assert "<" in LessThan("count", 5).describe()
        assert ">" in GreaterThan("count", 5).describe()
        assert "<=" in Between("count", 1, 2).describe()


class TestVocabularyAbstraction:
    def test_fig1_boolean_domain(self):
        """Fig. 1: the Global Ground / Europe's Finest abstraction."""
        vocab = paper_vocabulary()
        row = dict(
            origin="Madagascar", isSugarFree=True, isDark=True,
            hasFilling=True, hasNuts=False,
        )
        assert bt.format_tuple(vocab.boolean_tuple(row), 3) == "111"
        row["origin"] = "Belgium"
        row["isDark"] = False
        row["hasFilling"] = False
        assert bt.format_tuple(vocab.boolean_tuple(row), 3) == "000"

    def test_abstract_object_dedupes(self):
        vocab = paper_vocabulary()
        row = dict(
            origin="Belgium", isSugarFree=True, isDark=True,
            hasFilling=False, hasNuts=False,
        )
        assert len(vocab.abstract_object([row, dict(row)])) == 1

    def test_unknown_attribute_rejected(self):
        with pytest.raises(Exception):
            Vocabulary(chocolate_schema(), [BoolIs("notAColumn")])

    def test_needs_propositions(self):
        with pytest.raises(ValueError):
            Vocabulary(chocolate_schema(), [])


class TestProjectedAbstraction:
    """The raw-ingest wire path: ``project_rows`` on the coordinator,
    ``mask_sets_projected`` (positional ``evaluate_value``) on the
    worker, answers exactly those of ``mask_sets``."""

    VOCAB = Vocabulary(
        NUM_SCHEMA,
        [
            LessThan("count", 5),
            Between("weight", 1.0, 2.0),
            BoolIs("flag"),
            OneOf("kind", {"a", "b"}),
        ],
    )

    def _rows(self):
        return [
            {"count": 3, "weight": 1.5, "flag": True, "kind": "a"},
            {"count": 7, "weight": 0.5, "flag": False, "kind": "c"},
            {"count": 3, "weight": 1.5, "flag": True, "kind": "a"},
        ]

    def test_evaluate_value_matches_evaluate(self):
        rows = self._rows()
        for p in self.VOCAB.propositions:
            for row in rows:
                assert p.evaluate_value(row[p.attribute]) == p.evaluate(row)

    def test_default_evaluate_value_delegates(self):
        class IsNegative(Proposition):
            """No override: exercises the base-class delegation."""

            def describe(self):
                return f"{self.attribute} < 0"

            def evaluate(self, row):
                return row[self.attribute] < 0

            def candidates(self, attribute):
                return [-1, 0, 1]

        p = IsNegative("count")
        assert p.evaluate_value(-1) is True
        assert p.evaluate_value(1) is False

    def test_projected_rows_are_value_tuples(self):
        projected = self.VOCAB.project_rows(self._rows())
        keys = self.VOCAB._key_attributes
        assert all(type(r) is tuple and len(r) == len(keys) for r in projected)

    def test_single_attribute_projection_stays_a_tuple(self):
        vocab = Vocabulary(NUM_SCHEMA, [BoolIs("flag")])
        projected = vocab.project_rows([{"flag": True}, {"flag": False}])
        assert projected == [(True,), (False,)]
        assert vocab.mask_sets_projected([projected]) == (
            vocab.mask_sets([[{"flag": True}, {"flag": False}]])
        )

    def test_partial_rows_ship_as_dicts(self):
        # The row-wise fallback keeps the good row projected and ships
        # the partial one whole.
        rows = [{"count": 1, "weight": 1.5, "flag": True, "kind": "a"},
                {"flag": True}]  # missing key attributes
        projected = self.VOCAB.project_rows(rows)
        assert type(projected[0]) is tuple
        assert projected[1] == {"flag": True}

    def test_round_trip_matches_mask_sets(self):
        objects_rows = [self._rows(), self._rows()[:1], []]
        projected = [self.VOCAB.project_rows(rows) for rows in objects_rows]
        assert self.VOCAB.mask_sets_projected(projected) == (
            self.VOCAB.mask_sets(objects_rows)
        )

    def test_unhashable_projected_value_falls_back(self):
        vocab = Vocabulary(NUM_SCHEMA, [Equals("kind", "a")])
        rows = [{"kind": ["a"]}]  # list value: unhashable memo key
        projected = vocab.project_rows(rows)
        assert projected == [(["a"],)]
        assert vocab.mask_sets_projected([projected]) == (
            vocab.mask_sets([rows])
        )


class TestSynthesis:
    """Assumption (i): Boolean tuple -> data row construction."""

    @pytest.fixture
    def vocab(self) -> Vocabulary:
        return Vocabulary(
            NUM_SCHEMA,
            [
                BoolIs("flag"),
                Equals("kind", "a"),
                LessThan("count", 10),
                GreaterThan("weight", 2.0),
            ],
        )

    def test_every_assignment_synthesizable(self, vocab):
        for bits in range(1 << vocab.n):
            row = vocab.synthesize_row(bits)
            NUM_SCHEMA.validate_row(row)
            assert vocab.boolean_tuple(row) == bits

    def test_synthesize_object_roundtrip(self, vocab):
        q = Question.of(vocab.n, [0b1010, 0b0101, 0b1111])
        rows = vocab.synthesize_object(q)
        assert vocab.abstract_object(rows) == q.tuples

    def test_question_width_checked(self, vocab):
        with pytest.raises(ValueError):
            vocab.synthesize_object(Question.of(2, [0b11]))

    def test_multiple_props_same_attribute(self):
        vocab = Vocabulary(
            NUM_SCHEMA,
            [LessThan("count", 10), LessThan("count", 20)],
            check=False,
        )
        # (T,T): count < 10; (F,T): 10 <= count < 20; (F,F): count >= 20
        for bits in (0b11, 0b10, 0b00):
            row = vocab.synthesize_row(bits)
            assert vocab.boolean_tuple(row) == bits
        # (T,F) is interfering: count < 10 implies count < 20
        with pytest.raises(InterferenceError):
            vocab.synthesize_row(0b01)

    def test_paper_vocabulary_full_roundtrip(self):
        vocab = paper_vocabulary()
        for bits in range(1 << 3):
            row = vocab.synthesize_row(bits)
            assert vocab.boolean_tuple(row) == bits


class TestInterference:
    """Assumption (ii): the paper's Madagascar/Belgium example."""

    def test_equality_interference_detected(self):
        with pytest.raises(InterferenceError) as exc:
            Vocabulary(
                chocolate_schema(),
                [
                    Equals("origin", "Madagascar"),
                    Equals("origin", "Belgium"),
                ],
            )
        assert "origin" in str(exc.value)

    def test_reports_available_unchecked(self):
        vocab = Vocabulary(
            chocolate_schema(),
            [Equals("origin", "Madagascar"), Equals("origin", "Belgium")],
            check=False,
        )
        reports = vocab.check_interference()
        # exactly the both-true assignment is unrealizable
        assert len(reports) == 1
        assert reports[0].assignment == (True, True)
        assert "no value" in reports[0].describe()

    def test_independent_propositions_pass(self):
        vocab = paper_vocabulary()
        assert vocab.check_interference() == []

    def test_closed_universe_interference(self):
        schema = FlatSchema(
            "S", (Attribute.category("kind", ("a",), open_universe=False),)
        )
        with pytest.raises(InterferenceError):
            Vocabulary(schema, [Equals("kind", "a")])  # cannot be false

    def test_range_interference(self):
        with pytest.raises(InterferenceError):
            Vocabulary(
                NUM_SCHEMA,
                [LessThan("count", 5), GreaterThan("count", 3),
                 Between("count", 10, 12)],
            )


class TestPresentation:
    def test_legend(self):
        vocab = paper_vocabulary()
        legend = vocab.legend()
        assert "x1: p1: isDark" in legend
        assert "x3: p3: origin = Madagascar" in legend

    def test_render_question_has_all_rows(self):
        vocab = paper_vocabulary()
        q = Question.from_strings("111", "011")
        text = vocab.render_question(q)
        assert text.count("\n") == 2  # header + 2 rows
        assert "origin" in text
