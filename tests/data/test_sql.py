"""Tests for SQL compilation and the SQLite execution backend."""

from __future__ import annotations

import random

import pytest

from repro.core.generators import random_role_preserving
from repro.core.parser import parse_query
from repro.data import QueryEngine
from repro.data.chocolate import (
    paper_figure1_relation,
    paper_vocabulary,
    random_store,
    storefront_vocabulary,
)
from repro.data.propositions import (
    Between,
    BoolIs,
    Equals,
    GreaterThan,
    LessThan,
    OneOf,
    Vocabulary,
)
from repro.data.schema import Attribute, FlatSchema
from repro.data.sql import (
    DIALECTS,
    POSTGRES_DIALECT,
    SQLITE_DIALECT,
    SqlCompileError,
    SqliteEngine,
    get_dialect,
    proposition_to_sql,
    to_sql,
)


class TestPropositionRendering:
    def test_bool_is(self):
        assert proposition_to_sql(BoolIs("isDark")) == "r.isDark = 1"
        assert proposition_to_sql(BoolIs("isDark", value=False)) == (
            "r.isDark = 0"
        )

    def test_equals_escapes_quotes(self):
        sql = proposition_to_sql(Equals("origin", "O'Hare"))
        assert sql == "r.origin = 'O''Hare'"

    def test_one_of(self):
        sql = proposition_to_sql(OneOf("origin", {"Belgium", "Sweden"}))
        assert sql == "r.origin IN ('Belgium', 'Sweden')"

    def test_comparisons(self):
        assert proposition_to_sql(LessThan("count", 5)) == "r.count < 5"
        assert proposition_to_sql(GreaterThan("count", 5)) == "r.count > 5"
        assert (
            proposition_to_sql(Between("count", 1, 3))
            == "r.count BETWEEN 1 AND 3"
        )

    def test_unknown_proposition_rejected(self):
        class Weird(BoolIs):
            pass

        class NotAProp:
            attribute = "isDark"

        with pytest.raises(SqlCompileError):
            proposition_to_sql(NotAProp())  # type: ignore[arg-type]


class TestToSql:
    def test_universal_becomes_not_exists_plus_guarantee(self):
        sql = to_sql(parse_query("∀x1", n=3), paper_vocabulary())
        assert "NOT EXISTS" in sql
        assert sql.count("EXISTS") == 2  # NOT EXISTS + guarantee witness

    def test_guarantee_relaxation_drops_witness(self):
        q = parse_query("∀x1", n=3, require_guarantees=False)
        sql = to_sql(q, paper_vocabulary())
        assert sql.count("EXISTS") == 1

    def test_existential_becomes_exists(self):
        sql = to_sql(parse_query("∃x2x3", n=3), paper_vocabulary())
        assert "NOT EXISTS" not in sql
        assert "hasFilling = 1" in sql and "origin = 'Madagascar'" in sql

    def test_width_mismatch_rejected(self):
        with pytest.raises(SqlCompileError):
            to_sql(parse_query("∃x1x2x3x4"), paper_vocabulary())


class TestDialects:
    """Golden renderings: the same proposition/query per dialect.

    The SQLite dialect must reproduce the PR 3 output byte for byte
    (statement caches and learn transcripts depend on it); the postgres
    dialect makes the spelling differences — boolean literals, reserved
    ``rows``, %s placeholders — observable."""

    def test_bool_is_per_dialect(self):
        prop = BoolIs("isDark")
        assert proposition_to_sql(prop, dialect="sqlite") == "r.isDark = 1"
        assert (
            proposition_to_sql(prop, dialect="postgres") == "r.isDark = TRUE"
        )
        assert (
            proposition_to_sql(BoolIs("isDark", value=False), dialect="postgres")
            == "r.isDark = FALSE"
        )

    def test_reserved_identifier_quoting(self):
        assert SQLITE_DIALECT.identifier("rows") == "rows"
        assert POSTGRES_DIALECT.identifier("rows") == '"rows"'
        assert POSTGRES_DIALECT.identifier("origin") == "origin"
        # Non-plain identifiers are quoted everywhere.
        assert SQLITE_DIALECT.identifier("two words") == '"two words"'
        assert POSTGRES_DIALECT.identifier('odd"name') == '"odd""name"'

    def test_placeholder_styles(self):
        assert SQLITE_DIALECT.placeholders(["a", "b"]) == "?, ?"
        assert POSTGRES_DIALECT.placeholders(["a", "b"]) == "%s, %s"
        pyformat = SQLITE_DIALECT.__class__(
            name="py", paramstyle="pyformat"
        )
        assert pyformat.placeholders(["a", "b"]) == "%(a)s, %(b)s"
        broken = SQLITE_DIALECT.__class__(name="x", paramstyle="numeric")
        with pytest.raises(SqlCompileError, match="paramstyle"):
            broken.placeholder(0)

    def test_column_type_mapping(self):
        from repro.data.schema import AttributeType

        assert SQLITE_DIALECT.column_type(AttributeType.BOOLEAN) == "INTEGER"
        assert POSTGRES_DIALECT.column_type(AttributeType.BOOLEAN) == "BOOLEAN"
        assert SQLITE_DIALECT.column_type(AttributeType.FLOAT) == "REAL"
        assert (
            POSTGRES_DIALECT.column_type(AttributeType.FLOAT)
            == "DOUBLE PRECISION"
        )

    def test_to_sql_golden_per_dialect(self):
        query = parse_query("∀x1→x2", n=3, require_guarantees=False)
        vocab = paper_vocabulary()
        sqlite_sql = to_sql(query, vocab, dialect="sqlite")
        assert sqlite_sql == (
            "SELECT o.object_key FROM objects o\n"
            "WHERE NOT EXISTS (SELECT 1 FROM rows r "
            "WHERE r.object_key = o.object_key AND r.isDark = 1 "
            "AND NOT (r.hasFilling = 1))\n"
            "ORDER BY o.object_key"
        )
        # Default dialect is byte-identical to the explicit sqlite one.
        assert to_sql(query, vocab) == sqlite_sql
        postgres_sql = to_sql(query, vocab, dialect="postgres")
        assert '"rows" r' in postgres_sql
        assert "r.isDark = TRUE" in postgres_sql
        assert "NOT (r.hasFilling = TRUE)" in postgres_sql

    def test_one_of_rendering_per_dialect(self):
        prop = OneOf("origin", {"Belgium", "O'Hare"})
        for name in DIALECTS:
            assert proposition_to_sql(prop, dialect=name) == (
                "r.origin IN ('Belgium', 'O''Hare')"
            )

    def test_get_dialect_resolution(self):
        assert get_dialect(None) is SQLITE_DIALECT
        assert get_dialect("postgres") is POSTGRES_DIALECT
        assert get_dialect(POSTGRES_DIALECT) is POSTGRES_DIALECT
        with pytest.raises(SqlCompileError, match="unknown SQL dialect"):
            get_dialect("oracle9i")


class TestSqliteEngine:
    def test_fig1_boxes(self):
        engine = SqliteEngine(paper_figure1_relation(), paper_vocabulary())
        assert engine.execute(parse_query("∀x1 ∃x2x3")) == []
        # every box has a dark chocolate
        assert engine.execute(parse_query("∃x1", n=3)) == [
            "Europe's Finest",
            "Global Ground",
        ]
        engine.close()

    def test_context_manager(self):
        with SqliteEngine(
            paper_figure1_relation(), paper_vocabulary()
        ) as engine:
            assert engine.execute(parse_query("∃x1", n=3))

    def test_explain_plan_runs(self):
        with SqliteEngine(
            paper_figure1_relation(), paper_vocabulary()
        ) as engine:
            plan = engine.explain_plan(parse_query("∀x1 ∃x2x3"))
            assert plan

    def test_cross_check_against_memory_engine(self):
        """The two evaluators must agree on every random query."""
        store = random_store(60, random.Random(31))
        vocab = storefront_vocabulary()
        memory = QueryEngine(store, vocab)
        rng = random.Random(17)
        with SqliteEngine(store, vocab) as sql_engine:
            for _ in range(40):
                q = random_role_preserving(4, rng, theta=2)
                via_sql = sql_engine.execute(q)
                via_memory = sorted(o.key for o in memory.execute(q))
                assert via_sql == via_memory, q.shorthand()

    def test_cross_check_with_numeric_vocabulary(self):
        schema = FlatSchema(
            "Reading",
            (
                Attribute.integer("count"),
                Attribute.category("kind", ("a", "b")),
                Attribute.boolean("flag"),
            ),
        )
        vocab = Vocabulary(
            schema,
            [
                LessThan("count", 5),
                OneOf("kind", {"a"}),
                BoolIs("flag"),
            ],
        )
        from repro.data.relation import NestedRelation
        from repro.data.schema import NestedSchema

        relation = NestedRelation(NestedSchema("Batch", embedded=schema))
        rng = random.Random(4)
        for i in range(30):
            rows = [
                dict(
                    count=rng.randint(0, 9),
                    kind=rng.choice(["a", "b"]),
                    flag=rng.random() < 0.5,
                )
                for _ in range(rng.randint(1, 5))
            ]
            relation.add_object(f"batch-{i:02d}", rows=rows)
        memory = QueryEngine(relation, vocab)
        with SqliteEngine(relation, vocab) as sql_engine:
            for _ in range(30):
                q = random_role_preserving(3, rng, theta=1)
                assert sql_engine.execute(q) == sorted(
                    o.key for o in memory.execute(q)
                )

    def test_empty_query_matches_everything(self):
        from repro.core.query import QhornQuery

        store = random_store(5, random.Random(2))
        with SqliteEngine(store, storefront_vocabulary()) as engine:
            q = QhornQuery(n=4)
            assert len(engine.execute(q)) == 5


class TestSqlEdgeCases:
    """Edge cases of the SQL translation, cross-checked against both
    bitmask backends (single-index and sharded): empty nested sets,
    all-false vocabulary rows, and guarantee-clause queries."""

    def _vocab_and_relation(self, objects):
        """A 3-proposition boolean domain with the given mask lists."""
        from repro.data.relation import NestedRelation
        from repro.data.schema import NestedSchema

        schema = FlatSchema(
            "bools",
            (
                Attribute.boolean("b1"),
                Attribute.boolean("b2"),
                Attribute.boolean("b3"),
            ),
        )
        vocab = Vocabulary(
            schema, [BoolIs("b1"), BoolIs("b2"), BoolIs("b3")]
        )
        relation = NestedRelation(NestedSchema("objs", embedded=schema))
        for i, masks in enumerate(objects):
            relation.add_object(
                f"obj-{i}",
                rows=[
                    {"b1": bool(m & 1), "b2": bool(m & 2), "b3": bool(m & 4)}
                    for m in masks
                ],
            )
        return vocab, relation

    def _cross_check(self, vocab, relation, queries):
        from repro.data import QueryEngine, create_backend

        reference = QueryEngine(relation, vocab)
        bitmask = create_backend("bitmask", relation, vocab)
        sharded = create_backend("sharded", relation, vocab, shard_size=2)
        with SqliteEngine(relation, vocab) as sql_engine:
            for q in queries:
                expected = sorted(o.key for o in reference.execute(q))
                assert sql_engine.execute(q) == expected, q.shorthand()
                assert sorted(
                    o.key for o in bitmask.execute(q)
                ) == expected, q.shorthand()
                assert sorted(
                    o.key for o in sharded.execute(q)
                ) == expected, q.shorthand()

    def _query_zoo(self):
        from repro.core.query import QhornQuery

        return [
            # guarantee-clause queries: witness demanded per universal
            parse_query("∀x1", n=3),
            parse_query("∀x1→x2", n=3),
            parse_query("∀x1x2→x3", n=3),
            # the footnote-1 relaxation of the same shapes
            parse_query("∀x1", n=3, require_guarantees=False),
            parse_query("∀x1→x2", n=3, require_guarantees=False),
            # existentials and combinations
            parse_query("∃x1x2x3"),
            parse_query("∀x1 ∃x2x3"),
            QhornQuery(n=3),  # empty query
        ]

    def test_empty_nested_sets(self):
        """Objects with zero rows: universals hold vacuously only under the
        relaxation; guarantee clauses and existentials always fail."""
        vocab, relation = self._vocab_and_relation(
            [[], [7], [], [1, 2], []]
        )
        self._cross_check(vocab, relation, self._query_zoo())

    def test_all_false_vocabulary_rows(self):
        """Rows where every proposition is false (mask 0): never witnesses,
        violate any universal with an empty body, satisfy none."""
        vocab, relation = self._vocab_and_relation(
            [[0], [0, 0], [0, 7], [0, 1], [3, 0, 5]]
        )
        self._cross_check(vocab, relation, self._query_zoo())

    def test_guarantee_vs_relaxed_disagree_exactly_on_witnessless_objects(self):
        """An object whose rows never satisfy the body is an answer only
        without the guarantee clause — all four evaluators must place the
        boundary identically."""
        from repro.data import QueryEngine

        vocab, relation = self._vocab_and_relation(
            [[], [0], [2], [1, 3], [3]]
        )
        strict = parse_query("∀x1→x2", n=3)
        relaxed = parse_query("∀x1→x2", n=3, require_guarantees=False)
        reference = QueryEngine(relation, vocab)
        with SqliteEngine(relation, vocab) as sql_engine:
            strict_keys = sql_engine.execute(strict)
            relaxed_keys = sql_engine.execute(relaxed)
        assert strict_keys == sorted(o.key for o in reference.execute(strict))
        assert relaxed_keys == sorted(
            o.key for o in reference.execute(relaxed)
        )
        # obj-0 (empty), obj-1 (all-false row) and obj-2 (head-only row)
        # have no body-satisfying row: answers only under relaxation.
        assert set(relaxed_keys) - set(strict_keys) == {
            "obj-0",
            "obj-1",
            "obj-2",
        }

    def test_mixed_edge_relation_random_queries(self):
        """Seeded sweep over a relation mixing every edge shape at once."""
        from tests.properties.test_prop_engine import random_query

        vocab, relation = self._vocab_and_relation(
            [[], [0], [7], [0, 7], [1, 2, 4], [], [5], [0, 0], [6, 6]]
        )
        rng = random.Random(2013)
        queries = [random_query(rng, 3) for _ in range(60)]
        self._cross_check(vocab, relation, queries)
