"""Tests for the role-preserving learner (§3.2): worked example + bounds."""

from __future__ import annotations


import pytest

from repro.core import tuples as bt
from repro.core.generators import (
    paper_running_query,
    random_qhorn1,
    random_role_preserving,
)
from repro.core.normalize import canonicalize
from repro.core.parser import parse_query
from repro.core.query import QhornQuery
from repro.learning import RolePreservingLearner, learn_role_preserving
from repro.oracle import CountingOracle, QueryOracle
from tests.conftest import assert_equivalent


def learn(target: QhornQuery):
    oracle = CountingOracle(QueryOracle(target))
    result = RolePreservingLearner(oracle).learn()
    return result, oracle


class TestPaperWorkedExample:
    """§3.2.2's six-variable running query, learned end to end."""

    def test_exact_identification(self):
        target = paper_running_query()
        result, _ = learn(target)
        assert_equivalent(result.query, target)

    def test_heads_found(self):
        result, _ = learn(paper_running_query())
        assert result.heads == {4, 5}  # x5, x6

    def test_bodies_found(self):
        result, _ = learn(paper_running_query())
        assert set(result.bodies_per_head[4]) == {
            frozenset({0, 3}),
            frozenset({2, 3}),
        }
        assert set(result.bodies_per_head[5]) == {frozenset({0, 1})}

    def test_terminal_distinguishing_tuples_match_paper(self):
        """The algorithm terminates with {110011, 100110, 111001, 011011,
        011110} (end of §3.2.2)."""
        result, _ = learn(paper_running_query())
        dominant = {
            t
            for t in result.distinguishing_tuples
            if not any(
                bt.is_subset(t, o) and t != o
                for o in result.distinguishing_tuples
            )
        }
        expected = {
            bt.parse_tuple(s)
            for s in ("110011", "100110", "111001", "011011", "011110")
        }
        assert dominant == expected

    def test_causal_density_measured(self):
        result, _ = learn(paper_running_query())
        assert result.causal_density == 2


class TestFixedTargets:
    @pytest.mark.parametrize(
        "text,n",
        [
            ("∀x1", 1),
            ("∃x1", 1),
            ("∀x1 ∀x2", 2),
            ("∀x2→x1 ∃x2", 2),
            ("∀x1x4→x5 ∀x3x4→x5 ∀x2x4→x6 ∃x1x2x3 ∃x1x2x5x6", 6),
            ("∀x1x2→x3 ∀x4x5→x3", 5),  # two bodies, one head
            ("∀x1→x3 ∀x2→x3 ∀x1→x4", 4),  # shared body variables
            ("∃x1x2 ∃x2x3 ∃x1x3", 3),  # pure existential antichain
            ("∀x1 ∃x2", 2),
        ],
    )
    def test_exact_identification(self, text, n):
        target = parse_query(text, n=n)
        result, _ = learn(target)
        assert_equivalent(result.query, target)

    def test_bodyless_head_short_circuit(self):
        target = parse_query("∀x1 ∃x2x3")
        result, oracle = learn(target)
        assert result.bodies_per_head[0] == [frozenset()]
        assert_equivalent(result.query, target)

    def test_empty_frontier_for_variable_free_conjunctions(self):
        # a query whose only conjunction is the full set
        target = parse_query("∃x1x2x3")
        result, _ = learn(target)
        assert_equivalent(result.query, target)


class TestRandomizedExactness:
    def test_random_round_trips(self, rng):
        for _ in range(100):
            n = rng.randint(2, 9)
            target = random_role_preserving(n, rng, theta=rng.randint(1, 3))
            result, _ = learn(target)
            assert_equivalent(result.query, target)

    def test_qhorn1_targets_also_learnable(self, rng):
        """qhorn-1 ⊂ role-preserving: the lattice learner handles both."""
        for _ in range(40):
            n = rng.randint(2, 8)
            target = random_qhorn1(n, rng)
            result, _ = learn(target)
            assert_equivalent(result.query, target)

    def test_learned_query_is_role_preserving(self, rng):
        for _ in range(30):
            target = random_role_preserving(rng.randint(2, 8), rng)
            result, _ = learn(target)
            assert result.query.is_role_preserving()

    def test_learned_query_is_normalized(self, rng):
        """The learner outputs dominant expressions only."""
        for _ in range(30):
            target = random_role_preserving(rng.randint(2, 8), rng)
            result, _ = learn(target)
            canon = canonicalize(result.query)
            assert canon.universals == result.query.universals
            assert canon.conjunctions == {
                e.variables for e in result.query.existentials
            }


class TestQuestionComplexity:
    def test_polynomial_questions_for_constant_theta(self, rng):
        """Thm 3.5 + Thm 3.8: O(n^{θ+1} + kn lg n) questions."""
        import math

        for n in (6, 10, 14):
            worst = 0
            for _ in range(6):
                target = random_role_preserving(n, rng, theta=2)
                _, oracle = learn(target)
                worst = max(worst, oracle.questions_asked)
            k = 2 * n  # generous size bound for these targets
            bound = 4 * (n**3) + 6 * k * n * math.log2(n) + 40
            assert worst <= bound, (n, worst, bound)

    def test_question_tuples_polynomial(self, rng):
        for _ in range(20):
            n = rng.randint(3, 9)
            target = random_role_preserving(n, rng, theta=2)
            _, oracle = learn(target)
            # frontier + discovered + children stays well under n^2 + k
            assert oracle.stats.max_tuples <= n * n + 4 * n + 8


class TestGuards:
    def test_max_bodies_cap(self):
        target = paper_running_query()
        oracle = QueryOracle(target)
        result = RolePreservingLearner(oracle, max_bodies_per_head=1).learn()
        # capped: only one of x5's two bodies is found
        assert len(result.bodies_per_head[4]) == 1

    def test_convenience_wrapper(self):
        target = parse_query("∀x1→x2 ∃x3", n=3)
        result = learn_role_preserving(QueryOracle(target))
        assert_equivalent(result.query, target)
