"""Tests for PAC learning from random examples (§6)."""

from __future__ import annotations

import random

import pytest

from repro.core.generators import enumerate_role_preserving
from repro.core.normalize import brute_force_equivalent
from repro.learning.pac import (
    estimate_error,
    pac_learn,
    pac_sample_bound,
    random_object_sampler,
)


class TestSampleBound:
    def test_formula(self):
        import math

        m = pac_sample_bound(100, epsilon=0.1, delta=0.05)
        assert m == math.ceil((math.log(100) + math.log(20)) / 0.1)

    def test_monotone_in_epsilon(self):
        assert pac_sample_bound(100, 0.01, 0.1) > pac_sample_bound(
            100, 0.1, 0.1
        )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            pac_sample_bound(10, 0.0, 0.1)
        with pytest.raises(ValueError):
            pac_sample_bound(10, 0.1, 1.5)


class TestSampler:
    def test_objects_within_width(self, rng):
        sampler = random_object_sampler(4, max_tuples=3)
        for _ in range(50):
            obj = sampler(rng)
            assert obj.n == 4
            assert 1 <= obj.size <= 4  # +1 possible boosted all-true


class TestPacLearn:
    def test_consistency_and_error(self):
        rng = random.Random(17)
        hypotheses = enumerate_role_preserving(2)
        sampler = random_object_sampler(2)
        target = hypotheses[7]
        m = pac_sample_bound(len(hypotheses), epsilon=0.05, delta=0.1)
        result = pac_learn(target, hypotheses, sampler, m, rng)
        error = estimate_error(
            result.query, target, sampler, trials=2000, rng=rng
        )
        assert error <= 0.05

    def test_error_decreases_with_samples(self):
        rng = random.Random(23)
        hypotheses = enumerate_role_preserving(2)
        sampler = random_object_sampler(2)
        errors = {}
        for m in (1, 64):
            total = 0.0
            for t_idx in (0, 3, 6, 9):
                target = hypotheses[t_idx]
                result = pac_learn(target, hypotheses, sampler, m, rng)
                total += estimate_error(
                    result.query, target, sampler, trials=800, rng=rng
                )
            errors[m] = total / 4
        assert errors[64] <= errors[1]

    def test_enough_samples_reach_exactness(self):
        """With many samples the surviving hypotheses are all equivalent."""
        rng = random.Random(5)
        hypotheses = enumerate_role_preserving(2)
        sampler = random_object_sampler(2)
        for target in hypotheses[:6]:
            result = pac_learn(target, hypotheses, sampler, 400, rng)
            assert brute_force_equivalent(result.query, target)

    def test_target_outside_space_detected(self):
        from repro.core.parser import parse_query

        rng = random.Random(3)
        target = parse_query("∃x1", n=2)
        wrong_space = [parse_query("∀x1 ∀x2", n=2)]
        with pytest.raises(RuntimeError):
            pac_learn(
                target, wrong_space, random_object_sampler(2), 200, rng
            )

    def test_estimate_error_validation(self):
        from repro.core.parser import parse_query

        with pytest.raises(ValueError):
            estimate_error(
                parse_query("∃x1"),
                parse_query("∃x1"),
                random_object_sampler(1),
                trials=0,
                rng=random.Random(0),
            )
