"""Tests for the §6 expression-question oracle and learner."""

from __future__ import annotations

import pytest

from repro.core.generators import paper_running_query, random_role_preserving
from repro.core.normalize import canonicalize
from repro.core.parser import parse_query
from repro.learning.expression_learner import ExpressionLearner
from repro.oracle.expression import CountingExpressionOracle, ExpressionOracle


class TestExpressionOracle:
    def test_requires_conjunction_entailment(self):
        oracle = ExpressionOracle(parse_query("∃x1x2 ∀x3", n=3))
        assert oracle.requires_conjunction([0, 1])
        assert oracle.requires_conjunction([0])
        assert oracle.requires_conjunction([2])  # ∀x3's guarantee
        assert oracle.requires_conjunction([0, 1, 2])  # closure adds x3

    def test_requires_conjunction_negative(self):
        # ∃x1 ∃x2 does not entail ∃x1x2 (the two-tuple object refutes it).
        oracle = ExpressionOracle(parse_query("∃x1 ∃x2", n=2))
        assert not oracle.requires_conjunction([0, 1])
        assert oracle.requires_conjunction([0])

    def test_requires_conjunction_empty_trivial(self):
        oracle = ExpressionOracle(parse_query("∃x1"))
        assert oracle.requires_conjunction([])

    def test_requires_conjunction_respects_r3(self):
        # ∀x1→x2 ∃x1: the intent entails ∃x1x2 by Rule R3.
        oracle = ExpressionOracle(parse_query("∀x1→x2 ∃x1"))
        assert oracle.requires_conjunction([0, 1])

    def test_requires_implication(self):
        oracle = ExpressionOracle(parse_query("∀x1x2→x3 ∃x4", n=4))
        assert oracle.requires_implication([0, 1], 2)
        assert oracle.requires_implication([0, 1, 3], 2)  # superset body
        assert not oracle.requires_implication([0], 2)
        assert not oracle.requires_implication([0, 1], 3)

    def test_requires_implication_bodyless(self):
        oracle = ExpressionOracle(parse_query("∀x1 ∃x2", n=2))
        assert oracle.requires_implication([], 0)
        assert oracle.requires_implication([1], 0)

    def test_head_in_body_trivially_entailed(self):
        oracle = ExpressionOracle(parse_query("∃x1", n=2))
        assert oracle.requires_implication([1], 1)

    def test_rejects_non_role_preserving(self):
        with pytest.raises(ValueError):
            ExpressionOracle(parse_query("∀x1→x2 ∀x2→x1"))

    def test_counting_wrapper(self):
        oracle = CountingExpressionOracle(
            ExpressionOracle(parse_query("∃x1x2"))
        )
        oracle.requires_conjunction([0])
        oracle.requires_implication([0], 1)
        assert oracle.questions_asked == 2


class TestExpressionLearner:
    def test_paper_running_query(self):
        target = paper_running_query()
        result = ExpressionLearner(ExpressionOracle(target)).learn()
        assert canonicalize(result.query) == canonicalize(target)
        assert result.questions_asked > 0

    @pytest.mark.parametrize(
        "text,n",
        [
            ("∀x1", 1),
            ("∃x1x2", 2),
            ("∀x1→x2 ∃x3", 3),
            ("∀x1x2→x3 ∀x4x5→x3", 5),
            ("∃x1x2 ∃x2x3 ∃x1x3", 3),
        ],
    )
    def test_fixed_targets(self, text, n):
        target = parse_query(text, n=n)
        result = ExpressionLearner(ExpressionOracle(target)).learn()
        assert canonicalize(result.query) == canonicalize(target)

    def test_random_targets(self, rng):
        for _ in range(60):
            target = random_role_preserving(rng.randint(2, 9), rng, theta=2)
            result = ExpressionLearner(ExpressionOracle(target)).learn()
            assert canonicalize(result.query) == canonicalize(target)

    def test_question_count_polynomial(self, rng):
        for _ in range(20):
            n = rng.randint(3, 9)
            target = random_role_preserving(n, rng, theta=2)
            result = ExpressionLearner(ExpressionOracle(target)).learn()
            k = len(canonicalize(target).conjunctions) + len(
                canonicalize(target).universals
            )
            assert result.questions_asked <= 3 * n * n + 3 * k * n + 10
