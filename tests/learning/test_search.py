"""Unit tests for the binary-search primitives (Algs. 2, 3, 8)."""

from __future__ import annotations

import math

import pytest

from repro.learning.search import (
    find_all,
    find_one,
    minimal_prefix,
    minimal_satisfying_subset,
)


class Counter:
    """Wraps a predicate and counts evaluations (stand-in for questions)."""

    def __init__(self, fn):
        self.fn = fn
        self.calls = 0

    def __call__(self, arg):
        self.calls += 1
        return self.fn(arg)


class TestFindOne:
    def test_finds_a_target(self):
        targets = {7}
        pred = Counter(lambda s: bool(set(s) & targets))
        assert find_one(pred, list(range(16))) == 7

    def test_none_when_absent(self):
        pred = Counter(lambda s: False)
        assert find_one(pred, list(range(16))) is None
        assert pred.calls == 1  # one question establishes absence

    def test_empty_items_ask_nothing(self):
        pred = Counter(lambda s: True)
        assert find_one(pred, []) is None
        assert pred.calls == 0

    def test_logarithmic_questions(self):
        for size in (8, 64, 256):
            pred = Counter(lambda s: 0 in s)
            find_one(pred, list(range(size)))
            assert pred.calls <= 1 + math.ceil(math.log2(size)) + 1

    def test_single_item(self):
        pred = Counter(lambda s: 3 in s)
        assert find_one(pred, [3]) == 3
        assert pred.calls == 1

    def test_finds_some_target_among_many(self):
        targets = {2, 9, 13}
        found = find_one(lambda s: bool(set(s) & targets), list(range(16)))
        assert found in targets


class TestFindAll:
    def test_finds_every_target(self):
        targets = {1, 5, 11}
        found = find_all(lambda s: bool(set(s) & targets), list(range(12)))
        assert set(found) == targets

    def test_empty_result(self):
        pred = Counter(lambda s: False)
        assert find_all(pred, list(range(8))) == []
        assert pred.calls == 1

    def test_question_bound_m_log_n(self):
        n, targets = 128, {3, 64, 100, 127}
        pred = Counter(lambda s: bool(set(s) & targets))
        found = find_all(pred, list(range(n)))
        assert set(found) == targets
        # O(m lg n) with a generous constant
        assert pred.calls <= 2 * len(targets) * (math.log2(n) + 1)

    def test_all_targets(self):
        items = list(range(4))
        assert find_all(lambda s: bool(s), items) == items


class TestMinimalPrefix:
    def test_shortest_prefix(self):
        # pred true once the prefix contains both 2 and 5
        pred = Counter(lambda s: {2, 5} <= set(s))
        items = [0, 2, 4, 5, 6]
        assert minimal_prefix(pred, items) == [0, 2, 4, 5]

    def test_none_when_unsatisfiable(self):
        assert minimal_prefix(lambda s: False, [1, 2, 3]) is None

    def test_whole_sequence_needed(self):
        items = [1, 2, 3]
        assert minimal_prefix(lambda s: len(s) == 3, items) == items

    def test_logarithmic_calls(self):
        items = list(range(256))
        pred = Counter(lambda s: 40 in s)
        minimal_prefix(pred, items)
        assert pred.calls <= math.ceil(math.log2(256)) + 2


class TestMinimalSatisfyingSubset:
    def test_extracts_exact_witness(self):
        needed = {2, 9}
        pred = Counter(lambda s: needed <= set(s))
        kept = minimal_satisfying_subset(pred, list(range(12)))
        assert set(kept) == needed

    def test_empty_when_pred_vacuous(self):
        assert minimal_satisfying_subset(lambda s: True, [1, 2, 3]) == []

    def test_raises_when_unsatisfiable(self):
        with pytest.raises(ValueError):
            minimal_satisfying_subset(lambda s: False, [1, 2])

    def test_minimality(self):
        needed = {0, 5, 7}
        kept = minimal_satisfying_subset(
            lambda s: needed <= set(s), list(range(8))
        )
        for drop in kept:
            rest = [x for x in kept if x != drop]
            assert not needed <= set(rest)

    def test_question_bound(self):
        n, needed = 128, {1, 60, 100}
        pred = Counter(lambda s: needed <= set(s))
        minimal_satisfying_subset(pred, list(range(n)))
        # |kept| binary searches plus |kept|+1 loop checks
        bound = (len(needed) + 1) + len(needed) * (math.log2(n) + 1)
        assert pred.calls <= bound

    def test_monotone_disjunction(self):
        # pred: contains any of {3, 4}; minimal witness is a single element
        kept = minimal_satisfying_subset(
            lambda s: bool(set(s) & {3, 4}), list(range(8))
        )
        assert len(kept) == 1 and kept[0] in {3, 4}
