"""Tests for the baseline learners (naive, brute force, bounded-tuple)."""

from __future__ import annotations

from itertools import chain, combinations

import pytest

from repro.core.generators import (
    enumerate_role_preserving,
    head_pair_query,
    random_qhorn1,
    uni_alias_query,
)
from repro.core.normalize import canonicalize
from repro.core.parser import parse_query
from repro.core.tuples import Question
from repro.learning import BruteForceLearner, HeadPairLearner, NaiveQhorn1Learner
from repro.oracle import CandidateEliminationAdversary, CountingOracle, QueryOracle
from tests.conftest import assert_equivalent


class TestNaiveQhorn1Learner:
    def test_fixed_targets(self):
        for text, n in [
            ("∀x1x2→x3 ∃x4x5 ∀x6", 6),
            ("∃x1x2x3", 3),
            ("∀x1→x2 ∃x3", 3),
            ("∀x3x4→x1 ∃x3x4x2", 4),
        ]:
            target = parse_query(text, n=n)
            result = NaiveQhorn1Learner(QueryOracle(target)).learn()
            assert_equivalent(result.query, target)

    def test_random_targets(self, rng):
        for _ in range(60):
            n = rng.randint(1, 10)
            target = random_qhorn1(n, rng)
            result = NaiveQhorn1Learner(QueryOracle(target)).learn()
            assert_equivalent(result.query, target)

    def test_unused_variables(self, rng):
        for _ in range(20):
            target = random_qhorn1(8, rng, use_all_variables=False)
            result = NaiveQhorn1Learner(QueryOracle(target)).learn()
            assert_equivalent(result.query, target)

    def test_quadratic_question_count(self, rng):
        """The strawman asks Θ(n²): quadrupling n ⇒ ~16x the questions."""
        import statistics

        means = {}
        for n in (8, 32):
            counts = []
            for _ in range(6):
                target = random_qhorn1(n, rng)
                oracle = CountingOracle(QueryOracle(target))
                NaiveQhorn1Learner(oracle).learn()
                counts.append(oracle.questions_asked)
            means[n] = statistics.mean(counts)
        assert means[32] / means[8] > 8  # clearly superlinear


class TestBruteForceLearner:
    def _all_objects(self, n: int) -> list[Question]:
        universe = list(range(1 << n))
        out = []
        for bits in range(1, 1 << len(universe)):
            out.append(
                Question.of(
                    n, [t for i, t in enumerate(universe) if bits & (1 << i)]
                )
            )
        return out

    def test_identifies_among_enumerated_class(self):
        candidates = enumerate_role_preserving(2)
        pool = self._all_objects(2)
        target = candidates[5]
        learner = BruteForceLearner(QueryOracle(target), candidates, pool)
        learned = learner.learn()
        assert canonicalize(learned) == canonicalize(target)

    def test_identifies_every_two_var_query(self):
        candidates = enumerate_role_preserving(2)
        pool = self._all_objects(2)
        for target in candidates:
            learner = BruteForceLearner(QueryOracle(target), candidates, pool)
            learned = learner.learn()
            assert canonicalize(learned) == canonicalize(target)

    def test_degrades_to_linear_on_theorem21_family(self):
        """Thm 2.1: against the adversary, even the best split learner
        needs |class| - 1 questions on the Uni∧Alias family."""
        n = 3
        candidates = [
            uni_alias_query(n, list(alias))
            for alias in chain.from_iterable(
                combinations(range(n), r) for r in range(n + 1)
            )
        ]
        adversary = CandidateEliminationAdversary(candidates)
        learner = BruteForceLearner(
            adversary, candidates, self._all_objects(n)
        )
        learner.learn()
        assert learner.questions_asked >= len(candidates) - 1

    def test_inconsistent_oracle_detected(self):
        candidates = [parse_query("∃x1", n=1)]
        # oracle that contradicts the only candidate
        class Liar:
            n = 1

            def ask(self, q):
                return False

        learner = BruteForceLearner(Liar(), candidates * 2, self._all_objects(1))
        with pytest.raises(RuntimeError):
            learner.learn()


class TestHeadPairLearner:
    def test_identifies_pairs(self):
        n = 10
        for i, j in [(0, 1), (3, 7), (8, 9)]:
            target = head_pair_query(n, i, j)
            learner = HeadPairLearner(QueryOracle(target), max_tuples=4)
            found = learner.learn()
            assert set(found) == {i, j}

    def test_budget_respected(self):
        n = 12
        target = head_pair_query(n, 2, 9)
        oracle = CountingOracle(QueryOracle(target))
        learner = HeadPairLearner(oracle, max_tuples=4)
        learner.learn()
        assert oracle.stats.max_tuples <= 4

    def test_question_count_scales_inverse_square_in_c(self, rng):
        """Lemma 3.4: ~n²/c² questions; doubling c quarters the count."""
        n = 24
        worst = {}
        for c in (4, 8):
            counts = []
            for i, j in [(20, 23), (22, 23), (21, 22)]:  # late pairs = worst
                target = head_pair_query(n, i, j)
                learner = HeadPairLearner(QueryOracle(target), max_tuples=c)
                learner.learn()
                counts.append(learner.questions_asked)
            worst[c] = max(counts)
        assert worst[4] > worst[8]

    def test_needs_two_tuples(self):
        with pytest.raises(ValueError):
            HeadPairLearner(QueryOracle(head_pair_query(4, 0, 1)), max_tuples=1)
