"""Tests for the version-space assistant."""

from __future__ import annotations

import pytest

from repro.core.generators import enumerate_role_preserving
from repro.core.normalize import canonicalize
from repro.core.parser import parse_query
from repro.core.tuples import Question
from repro.learning.version_space import VersionSpace
from repro.oracle import CountingOracle, QueryOracle


@pytest.fixture()
def space() -> VersionSpace:
    return VersionSpace.full_role_preserving(2)


class TestFiltering:
    def test_full_space_size(self, space):
        assert space.size == 11
        assert space.n == 2

    def test_record_eliminates(self, space):
        killed = space.record(Question.from_strings("11"), True)
        # {11} is an answer to some queries, a non-answer to e.g. ∃x1 ∃x2?
        # no: {11} satisfies everything except... count must be consistent.
        assert killed + space.size == 11

    def test_inconsistent_history_raises(self, space):
        q = Question.from_strings("11")
        # {1^n} is an answer for every qhorn query: claiming non-answer
        # empties the space.
        with pytest.raises(ValueError):
            space.record(q, False)

    def test_empty_space_has_no_n(self):
        with pytest.raises(ValueError):
            VersionSpace(candidates=[]).n


class TestIdentification:
    def test_identified_none_initially(self, space):
        assert space.identified() is None

    def test_run_to_identification_all_targets(self):
        for target in enumerate_role_preserving(2):
            space = VersionSpace.full_role_preserving(2)
            oracle = CountingOracle(QueryOracle(target))
            found, asked = space.run_to_identification(oracle)
            assert canonicalize(found) == canonicalize(target)
            # information floor: lg 11 ≈ 3.5 -> at least 2 questions; the
            # optimal splitter stays in single digits
            assert asked <= 8

    def test_history_recorded(self):
        space = VersionSpace.full_role_preserving(2)
        target = parse_query("∃x1x2")
        space.run_to_identification(QueryOracle(target))
        assert len(space.history) >= 1


class TestSplitQuality:
    def test_split_counts(self, space):
        split = space.split_quality(Question.from_strings("10"))
        assert split.answers + split.non_answers == space.size
        assert split.guaranteed_elimination == min(
            split.answers, split.non_answers
        )

    def test_entropy_bounds(self, space):
        split = space.split_quality(Question.from_strings("10"))
        assert 0.0 <= split.entropy_bits <= 1.0

    def test_useless_question_zero_entropy(self, space):
        # {1^n} is an answer to every query: zero information
        split = space.split_quality(Question.from_strings("11"))
        assert split.entropy_bits == 0.0
        assert split.guaranteed_elimination == 0

    def test_best_question_maximizes_elimination(self, space):
        best = space.best_question()
        assert best is not None
        for obj_q in [
            Question.from_strings("10"),
            Question.from_strings("01"),
            Question.from_strings("10", "01"),
        ]:
            assert (
                best.guaranteed_elimination
                >= space.split_quality(obj_q).guaranteed_elimination
            )

    def test_best_question_none_when_converged(self):
        target = parse_query("∃x1x2")
        space = VersionSpace.full_role_preserving(2)
        space.run_to_identification(QueryOracle(target))
        assert space.identified() is not None
        assert space.best_question() is None
