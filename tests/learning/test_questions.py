"""Unit tests for the membership-question constructors (§3.1)."""

from __future__ import annotations

import pytest

from repro.core import tuples as bt
from repro.core.parser import parse_query
from repro.learning.questions import (
    existential_independence_question,
    matrix_question,
    single_false_question,
    two_tuple_question,
    universal_dependence_question,
    universal_head_question,
)


class TestUniversalHeadQuestion:
    def test_shape(self):
        q = universal_head_question(3, 0)
        assert q.tuples == {bt.parse_tuple("111"), bt.parse_tuple("011")}

    def test_detects_universal_heads_only(self):
        """§3.1.1: {111, 011} is a non-answer iff x1 is a universal head."""
        n = 3
        head_query = parse_query("∀x2x3→x1", n=n)
        assert not head_query.evaluate(universal_head_question(n, 0))
        for text in ("∃x1x2x3", "∀x1→x2 ∃x3", "∃x1"):
            other = parse_query(text, n=n)
            assert other.evaluate(universal_head_question(n, 0)), text

    def test_bodyless_head_detected(self):
        assert not parse_query("∀x1", n=3).evaluate(
            universal_head_question(3, 0)
        )


class TestUniversalDependenceQuestion:
    def test_def_31_shape(self):
        q = universal_dependence_question(4, 0, [2, 3])
        assert q.tuples == {bt.parse_tuple("1111"), bt.parse_tuple("0100")}

    def test_answer_iff_body_intersects_v(self):
        target = parse_query("∀x2x3→x1 ∃x4", n=4)
        # V = {x2}: body intersects -> answer
        assert target.evaluate(universal_dependence_question(4, 0, [1]))
        # V = {x4}: body avoids V -> non-answer
        assert not target.evaluate(universal_dependence_question(4, 0, [3]))

    def test_bodyless_head_never_depends(self):
        target = parse_query("∀x1 ∃x2 ∃x3", n=3)
        assert not target.evaluate(
            universal_dependence_question(3, 0, [1, 2])
        )


class TestExistentialIndependenceQuestion:
    def test_def_32_shape(self):
        q = existential_independence_question(4, [0], [2, 3])
        assert q.tuples == {bt.parse_tuple("0111"), bt.parse_tuple("1100")}

    def test_disjointness_required(self):
        with pytest.raises(ValueError):
            existential_independence_question(4, [0, 1], [1, 2])

    def test_dependent_variables_non_answer(self):
        # x1, x2 in the same conjunction: dependent.
        target = parse_query("∃x1x2 ∃x3", n=3)
        assert not target.evaluate(
            existential_independence_question(3, [0], [1])
        )

    def test_heads_of_same_body_are_independent(self):
        # ∃x1→x2, ∃x1→x3: heads x2, x3 are independent (§3.1.3 case 1).
        target = parse_query("∃x1x2 ∃x1x3", n=3)
        assert target.evaluate(
            existential_independence_question(3, [1], [2])
        )

    def test_unrelated_variables_independent(self):
        target = parse_query("∃x1 ∃x2", n=2)
        assert target.evaluate(
            existential_independence_question(2, [0], [1])
        )


class TestMatrixQuestion:
    def test_def_33_shape(self):
        """{1011, 1101, 1110} is the matrix question on D={x2,x3,x4}."""
        q = matrix_question(4, [1, 2, 3])
        assert q.tuples == {
            bt.parse_tuple("1011"),
            bt.parse_tuple("1101"),
            bt.parse_tuple("1110"),
        }

    def test_needs_variables(self):
        with pytest.raises(ValueError):
            matrix_question(4, [])

    def test_answer_iff_two_heads(self):
        """Lemma 3.3: answer iff >= 2 existential heads in D."""
        n = 4
        # x2, x4 head x1's body: {1011, 1110} satisfy ∃x1x3→x2, ∃x1x3→x4.
        two_heads = parse_query("∃x1x3x2 ∃x1x3x4", n=n)
        assert two_heads.evaluate(matrix_question(n, [1, 2, 3]))
        one_head = parse_query("∃x1x2x3x4", n=n)
        assert not one_head.evaluate(matrix_question(n, [1, 2, 3]))


class TestSimpleQuestions:
    def test_single_false_question(self):
        q = single_false_question(3, 1)
        assert q.tuples == {bt.parse_tuple("101")}
        assert not parse_query("∃x2", n=3).evaluate(q)
        assert parse_query("∃x1", n=3).evaluate(q)

    def test_two_tuple_question(self):
        t = bt.parse_tuple("0101")
        q = two_tuple_question(4, t)
        assert q.tuples == {bt.all_true(4), t}
