"""Tests for the qhorn-1 learner (§3.1): exact identification + bounds."""

from __future__ import annotations

import math

import pytest

from repro.core.generators import random_qhorn1
from repro.core.parser import parse_query
from repro.core.query import QhornQuery
from repro.learning import Qhorn1Learner, learn_qhorn1
from repro.oracle import CountingOracle, QueryOracle
from tests.conftest import assert_equivalent


def learn(target: QhornQuery):
    oracle = CountingOracle(QueryOracle(target))
    result = Qhorn1Learner(oracle).learn()
    return result, oracle


class TestFixedTargets:
    @pytest.mark.parametrize(
        "text,n",
        [
            ("∀x1", 1),
            ("∃x1", 1),
            ("∀x1 ∃x2", 2),
            ("∃x1x2", 2),
            ("∀x1→x2", 2),
            ("∃x1→x2", 2),
            ("∀x1x2→x3", 3),
            ("∃x1x2x3", 3),
            ("∀x1x2→x3 ∃x4x5 ∀x6", 6),
            ("∀x3x4→x1 ∃x3x4x2 ∃x5", 5),  # shared body, mixed quantifiers
            ("∃x1x2x3x4x5x6x7", 7),
            ("∀x1 ∀x2 ∀x3 ∀x4", 4),
            ("∃x1 ∃x2 ∃x3 ∃x4", 4),
        ],
    )
    def test_exact_identification(self, text, n):
        target = parse_query(text, n=n)
        result, _ = learn(target)
        assert_equivalent(result.query, target)

    def test_fig2_query(self):
        """Fig. 2: ∀x1x2→x4 ∃x1x2→x5 ∃x3→x6."""
        target = QhornQuery.build(
            6, universals=[((0, 1), 3)], existentials=[(0, 1, 4), (2, 5)]
        )
        result, oracle = learn(target)
        assert_equivalent(result.query, target)
        assert result.universal_heads == {3}

    def test_partition_construction_example(self):
        """§2.1.3: ∀x1 ∀x2 ∃x3→x4 ∃x5x6→x7 from x1|x2|x3x4|x5x6x7."""
        target = parse_query("∀x1 ∀x2 ∃x3x4 ∃x5x6x7")
        result, _ = learn(target)
        assert_equivalent(result.query, target)


class TestStructuredResult:
    def test_groups_reflect_partition(self):
        target = parse_query("∀x1x2→x3 ∃x4x5", n=5)
        result, _ = learn(target)
        bodies = {g.body for g in result.groups}
        assert frozenset({0, 1}) in bodies
        assert result.unconstrained == frozenset()

    def test_unconstrained_variable_detected(self):
        # x3 appears nowhere in the target.
        target = parse_query("∀x1→x2", n=3)
        result, _ = learn(target)
        assert result.unconstrained == {2}
        assert_equivalent(result.query, target)

    def test_lone_existential_vs_unconstrained(self):
        target = parse_query("∀x1→x2 ∃x3", n=3)
        result, _ = learn(target)
        assert result.unconstrained == frozenset()
        assert_equivalent(result.query, target)


class TestRandomizedExactness:
    def test_random_round_trips(self, rng):
        for _ in range(120):
            n = rng.randint(1, 14)
            target = random_qhorn1(n, rng)
            result, _ = learn(target)
            assert_equivalent(result.query, target)

    def test_random_round_trips_with_unused_variables(self, rng):
        for _ in range(60):
            n = rng.randint(2, 10)
            target = random_qhorn1(n, rng, use_all_variables=False)
            result, _ = learn(target)
            assert_equivalent(result.query, target)

    def test_learned_query_is_qhorn1(self, rng):
        for _ in range(40):
            target = random_qhorn1(rng.randint(2, 10), rng)
            result, _ = learn(target)
            assert result.query.is_qhorn1()


class TestQuestionComplexity:
    def test_o_n_log_n_bound(self, rng):
        """Theorem 3.1 with an explicit constant: <= 12·n·lg n + 12."""
        for n in (8, 16, 32, 64):
            worst = 0
            for _ in range(8):
                target = random_qhorn1(n, rng)
                _, oracle = learn(target)
                worst = max(worst, oracle.questions_asked)
            assert worst <= 12 * n * math.log2(n) + 12, (n, worst)

    def test_question_tuple_sizes_polynomial(self, rng):
        """§2.1.2: questions must stay polynomial — here <= n tuples."""
        for _ in range(20):
            n = rng.randint(2, 12)
            target = random_qhorn1(n, rng)
            _, oracle = learn(target)
            assert oracle.stats.max_tuples <= n

    def test_growth_is_subquadratic(self, rng):
        """Question counts grow like n lg n, far below the naive n²."""
        import statistics

        means = {}
        for n in (16, 64):
            counts = []
            for _ in range(10):
                target = random_qhorn1(n, rng)
                _, oracle = learn(target)
                counts.append(oracle.questions_asked)
            means[n] = statistics.mean(counts)
        # quadrupling n should grow questions well under 16x (n² would be 16x)
        assert means[64] / means[16] < 9


class TestConvenienceWrapper:
    def test_learn_qhorn1(self):
        target = parse_query("∀x1 ∃x2x3")
        oracle = QueryOracle(target)
        result = learn_qhorn1(oracle)
        assert_equivalent(result.query, target)
