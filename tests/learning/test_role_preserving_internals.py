"""White-box tests for the role-preserving learner's internals:
seeded warm starts, prune strategies, root probing."""

from __future__ import annotations

import pytest

from repro.core.generators import paper_running_query, random_role_preserving
from repro.core.normalize import canonicalize
from repro.core.parser import parse_query
from repro.learning import RolePreservingLearner
from repro.oracle import CountingOracle, QueryOracle


class TestSeededBodySearch:
    def test_seed_bodies_skip_rediscovery(self):
        target = paper_running_query()
        oracle = CountingOracle(QueryOracle(target))
        learner = RolePreservingLearner(oracle)
        bodies = learner._learn_bodies(
            4,
            [4, 5],
            seed_bodies=[frozenset({0, 3}), frozenset({2, 3})],
            probe_roots_first=True,
        )
        assert set(bodies) == {frozenset({0, 3}), frozenset({2, 3})}
        # bodyless test + single combined root probe = 2 questions
        assert oracle.questions_asked == 2

    def test_probe_false_falls_through_to_search(self):
        """When a body is missing from the seed, the probe fails and the
        root search finds it."""
        target = paper_running_query()
        learner = RolePreservingLearner(QueryOracle(target))
        bodies = learner._learn_bodies(
            4,
            [4, 5],
            seed_bodies=[frozenset({0, 3})],
            probe_roots_first=True,
        )
        assert frozenset({2, 3}) in set(bodies)

    def test_unseeded_equals_seeded_result(self, rng):
        for _ in range(10):
            target = random_role_preserving(6, rng, theta=2)
            base = RolePreservingLearner(QueryOracle(target)).learn()
            for head in base.heads:
                seeded = RolePreservingLearner(
                    QueryOracle(target)
                )._learn_bodies(
                    head,
                    sorted(base.heads),
                    seed_bodies=base.bodies_per_head[head],
                    probe_roots_first=True,
                )
                assert set(seeded) == set(base.bodies_per_head[head])


class TestSeededConjunctionWalk:
    def test_seeding_all_tuples_costs_almost_nothing(self):
        target = paper_running_query()
        canon = canonicalize(target)
        seeds = [
            sum(1 << v for v in c) for c in canon.conjunctions
        ]
        oracle = CountingOracle(QueryOracle(target))
        learner = RolePreservingLearner(oracle)
        discovered = learner._learn_conjunctions(
            sorted(canon.universals), seed_discovered=seeds
        )
        found = {
            frozenset(i for i in range(6) if t & (1 << i))
            for t in discovered
        }
        dominant = {
            c for c in found if not any(c < other for other in found)
        }
        assert dominant == set(canon.conjunctions)
        # fully seeded: the walk collapses almost immediately
        assert oracle.questions_asked <= 6

    def test_duplicate_seeds_deduplicated(self):
        target = parse_query("∃x1x2", n=2)
        learner = RolePreservingLearner(QueryOracle(target))
        discovered = learner._learn_conjunctions(
            [], seed_discovered=[0b11, 0b11]
        )
        assert discovered.count(0b11) == 1


class TestPruneStrategies:
    def test_linear_prune_exact(self, rng):
        for _ in range(20):
            target = random_role_preserving(7, rng, theta=2)
            result = RolePreservingLearner(
                QueryOracle(target), prune="linear"
            ).learn()
            assert canonicalize(result.query) == canonicalize(target)

    def test_invalid_prune_rejected(self):
        with pytest.raises(ValueError):
            RolePreservingLearner(
                QueryOracle(parse_query("∃x1")), prune="magic"
            )

    def test_guarantee_shortcut_off_still_exact(self, rng):
        for _ in range(20):
            target = random_role_preserving(7, rng, theta=2)
            result = RolePreservingLearner(
                QueryOracle(target), use_guarantee_shortcut=False
            ).learn()
            assert canonicalize(result.query) == canonicalize(target)


class TestQhorn1Ablation:
    def test_shortcut_off_still_exact(self, rng):
        from repro.core.generators import random_qhorn1
        from repro.learning import Qhorn1Learner

        for _ in range(20):
            target = random_qhorn1(8, rng)
            result = Qhorn1Learner(
                QueryOracle(target), use_shared_body_shortcut=False
            ).learn()
            assert canonicalize(result.query) == canonicalize(target)
