"""Tests for class-membership checking (§6 future work)."""

from __future__ import annotations


import pytest

from repro.core.generators import (
    random_qhorn1,
    random_role_preserving,
    uni_alias_query,
)
from repro.core.normalize import canonicalize
from repro.learning.class_check import check_class_membership
from repro.oracle import QueryOracle


class TestConsistentUsers:
    def test_role_preserving_intent_passes(self, rng):
        for _ in range(15):
            target = random_role_preserving(rng.randint(2, 7), rng, theta=2)
            report = check_class_membership(
                QueryOracle(target), "role-preserving", probes=60, rng=rng
            )
            assert report.consistent, report.describe()
            assert canonicalize(report.candidate) == canonicalize(target)

    def test_qhorn1_intent_passes(self, rng):
        for _ in range(15):
            target = random_qhorn1(rng.randint(2, 8), rng)
            report = check_class_membership(
                QueryOracle(target), "qhorn-1", probes=60, rng=rng
            )
            assert report.consistent, report.describe()

    def test_report_describe(self, rng):
        target = random_qhorn1(4, rng)
        report = check_class_membership(
            QueryOracle(target), "qhorn-1", probes=10, rng=rng
        )
        assert "consistent" in report.describe()


class TestInconsistentUsers:
    def test_alias_intent_detected(self, rng):
        """Thm 2.1's Uni∧Alias queries are outside role-preserving qhorn;
        the checker must produce a contradiction certificate."""
        target = uni_alias_query(5, alias_vars=[1, 3, 4])
        report = check_class_membership(
            QueryOracle(target), "role-preserving", probes=400, rng=rng
        )
        assert not report.consistent
        assert report.evidence is not None or report.detail

    def test_role_preserving_but_not_qhorn1_detected(self, rng):
        """θ=2 queries repeat variables; the qhorn-1 checker must notice."""
        from repro.core.parser import parse_query

        target = parse_query("∀x1x2→x3 ∀x2x4→x3 ∃x1x4", n=4)
        assert target.is_role_preserving() and not target.is_qhorn1()
        report = check_class_membership(
            QueryOracle(target), "qhorn-1", probes=400, rng=rng
        )
        assert not report.consistent

    def test_evidence_object_actually_disagrees(self, rng):
        target = uni_alias_query(4, alias_vars=[0, 2])
        oracle = QueryOracle(target)
        report = check_class_membership(
            oracle, "role-preserving", probes=400, rng=rng
        )
        assert not report.consistent
        if report.evidence is not None:
            assert oracle.ask(report.evidence) != report.candidate.evaluate(
                report.evidence
            )


class TestValidation:
    def test_unknown_class_rejected(self, rng):
        target = random_qhorn1(3, rng)
        with pytest.raises(ValueError):
            check_class_membership(QueryOracle(target), "horn-zero")
