"""Tests for the query revision algorithm (§6 future work, implemented)."""

from __future__ import annotations


import pytest

from repro.core.generators import paper_running_query, random_role_preserving
from repro.core.normalize import canonicalize
from repro.core.parser import parse_query
from repro.learning import RolePreservingLearner, revise_query
from repro.oracle import CountingOracle, QueryOracle


def revise(given, intended):
    oracle = CountingOracle(QueryOracle(intended))
    result = revise_query(given, oracle)
    return result, oracle


class TestConfirmation:
    def test_correct_query_confirmed_unchanged(self):
        q = paper_running_query()
        result, oracle = revise(q, q)
        assert not result.changed
        assert canonicalize(result.query) == canonicalize(q)
        assert any("confirmed" in r for r in result.repairs)

    def test_confirmation_cheaper_than_learning(self):
        q = paper_running_query()
        _, revise_oracle = revise(q, q)
        learn_oracle = CountingOracle(QueryOracle(q))
        RolePreservingLearner(learn_oracle).learn()
        assert revise_oracle.questions_asked < learn_oracle.questions_asked

    def test_random_confirmations(self, rng):
        for _ in range(30):
            q = random_role_preserving(rng.randint(3, 8), rng, theta=2)
            result, _ = revise(q, q)
            assert not result.changed


class TestRepairs:
    def test_swapped_body_repaired(self):
        given = paper_running_query()
        intended = parse_query(
            "∀x1x4→x5 ∀x2x3→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6"
        )
        result, _ = revise(given, intended)
        assert canonicalize(result.query) == canonicalize(intended)
        assert result.changed
        assert any("dropped body" in r for r in result.repairs)

    def test_dropped_head(self):
        given = parse_query("∀x1 ∃x2", n=2)
        intended = parse_query("∃x1 ∃x2", n=2)
        result, _ = revise(given, intended)
        assert canonicalize(result.query) == canonicalize(intended)
        assert any("dropped head" in r for r in result.repairs)

    def test_added_head(self):
        given = parse_query("∃x1 ∃x2", n=2)
        intended = parse_query("∀x1 ∃x2", n=2)
        result, _ = revise(given, intended)
        assert canonicalize(result.query) == canonicalize(intended)
        assert any("added head" in r for r in result.repairs)

    def test_shrunk_body(self):
        given = parse_query("∀x1x2→x3", n=3)
        intended = parse_query("∀x1→x3", n=3)
        result, _ = revise(given, intended)
        assert canonicalize(result.query) == canonicalize(intended)

    def test_grown_body(self):
        given = parse_query("∀x1→x3", n=3)
        intended = parse_query("∀x1x2→x3", n=3)
        result, _ = revise(given, intended)
        assert canonicalize(result.query) == canonicalize(intended)

    def test_conjunction_drift(self):
        given = parse_query("∃x1x2 ∃x3", n=4)
        intended = parse_query("∃x1x2x4 ∃x3", n=4)
        result, _ = revise(given, intended)
        assert canonicalize(result.query) == canonicalize(intended)


class TestExactnessRandom:
    def test_random_pairs_always_exact(self, rng):
        for _ in range(80):
            n = rng.randint(2, 8)
            given = random_role_preserving(n, rng, theta=2)
            intended = random_role_preserving(n, rng, theta=2)
            result, _ = revise(given, intended)
            assert canonicalize(result.query) == canonicalize(intended), (
                given.shorthand(),
                intended.shorthand(),
            )

    def test_cost_grows_with_distance(self, rng):
        """Closer queries must be cheaper to revise, on average."""
        import statistics

        near, far = [], []
        for _ in range(40):
            n = 7
            intended = random_role_preserving(n, rng, theta=2)
            _, confirm_oracle = revise(intended, intended)
            near.append(confirm_oracle.questions_asked)
            other = random_role_preserving(n, rng, theta=2)
            if canonicalize(other) == canonicalize(intended):
                continue
            _, far_oracle = revise(other, intended)
            far.append(far_oracle.questions_asked)
        assert statistics.mean(near) < statistics.mean(far)


class TestValidation:
    def test_non_role_preserving_rejected(self):
        cyc = parse_query("∀x1→x2 ∀x2→x1")
        with pytest.raises(ValueError):
            revise_query(cyc, QueryOracle(cyc))

    def test_n_mismatch_rejected(self):
        with pytest.raises(ValueError):
            revise_query(
                parse_query("∃x1", n=2),
                QueryOracle(parse_query("∃x1", n=3)),
            )
