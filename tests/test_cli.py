"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestLearn:
    def test_learn_exact_exit_zero(self, capsys):
        assert main(["learn", "∀x1x2→x3 ∃x4", "--learner", "qhorn1"]) == 0
        out = capsys.readouterr().out
        assert "exact: True" in out
        assert "questions:" in out

    def test_learn_role_preserving_default(self, capsys):
        assert main(["learn", "∀x1x4→x5 ∀x3x4→x5 ∃x1x2"]) == 0
        assert "exact: True" in capsys.readouterr().out

    def test_learn_json_output(self, capsys):
        import json

        assert main(["learn", "∃x1x2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["format"] == "qhorn-query-v1"

    def test_ascii_shorthand(self, capsys):
        assert main(["learn", "A x1 -> x2; E x3", "--learner", "qhorn1"]) == 0


class TestVerify:
    def test_matching_intent_exit_zero(self, capsys):
        assert main(["verify", "∀x1 ∃x2", "∀x1 ∃x2"]) == 0
        assert "verified: True" in capsys.readouterr().out

    def test_mismatch_exit_one(self, capsys):
        assert main(["verify", "∃x1x2", "∃x1 ∃x2"]) == 1
        out = capsys.readouterr().out
        assert "verified: False" in out
        assert "query says" in out


class TestRevise:
    def test_revision_reaches_intent(self, capsys):
        assert main(["revise", "∀x1x2→x3", "∀x1→x3"]) == 0
        out = capsys.readouterr().out
        assert "exact: True" in out


class TestSql:
    def test_sql_output(self, capsys):
        assert main(["sql", "∀x1 ∃x2x3"]) == 0
        out = capsys.readouterr().out
        assert "SELECT o.object_key" in out
        assert "NOT EXISTS" in out


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "matching boxes" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestBackendFlag:
    def test_learn_with_sql_backend(self, capsys):
        assert main(
            ["learn", "∀x1x2→x3 ∃x4", "--learner", "qhorn1", "--backend", "sql"]
        ) == 0
        assert "exact: True" in capsys.readouterr().out

    def test_learn_backends_ask_identical_questions(self, capsys):
        """The backend choice changes who evaluates, never what is asked."""
        outputs = []
        for backend in ("bitmask", "sql"):
            assert main(["learn", "∀x1 ∃x2x3", "--backend", backend]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_verify_with_sql_backend(self, capsys):
        assert main(
            ["verify", "∀x1 ∃x2", "∀x1 ∃x2", "--backend", "sql"]
        ) == 0
        assert "verified: True" in capsys.readouterr().out

    def test_demo_backend_choices(self, capsys):
        for backend in ("bitmask", "sharded", "sql"):
            assert main(["demo", "--backend", backend]) == 0
            out = capsys.readouterr().out
            assert "matching boxes:" in out
            assert backend in out  # describe() names the active backend

    def test_sharded_rejected_for_learn(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["learn", "∃x1", "--backend", "sharded"])

    def test_help_contains_backend_guide(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "evaluation backends (--backend):" in out
        for name in ("bitmask", "sharded", "sql", "dbapi"):
            assert name in out
        assert "--backend-opt" in out
        assert "third-party backends" in out

    def test_choices_derived_from_capability_flags(self):
        """learn/verify offer exactly the supports_oracle backends, demo
        offers everything — no name literals in the CLI."""
        from repro.data.backends import REGISTRY

        parser = build_parser()
        args = parser.parse_args(["learn", "∃x1", "--backend", "dbapi"])
        assert args.backend == "dbapi"
        oracle_names = set(REGISTRY.names_with(supports_oracle=True))
        assert {"bitmask", "sql", "dbapi"} <= oracle_names
        with pytest.raises(SystemExit):
            parser.parse_args(["learn", "∃x1", "--backend", "numpy"])
        parser.parse_args(["demo", "--backend", "numpy"])


class TestBackendOptions:
    def test_learn_dbapi_file_backed_transcript_identical(
        self, capsys, tmp_path
    ):
        """The acceptance criterion: a file-backed dbapi learn produces a
        transcript bit-identical to the bitmask one."""
        uri = f"file:{tmp_path}/learn.sqlite"
        outputs = []
        for extra in ([], ["--backend", "dbapi", "--backend-opt", f"uri={uri}"]):
            assert main(["learn", "∀x1 ∃x2x3"] + extra) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert (tmp_path / "learn.sqlite").exists()

    def test_verify_and_demo_honor_backend_opt(self, capsys, tmp_path):
        uri = f"file:{tmp_path}/v.sqlite"
        assert main(
            ["verify", "∀x1 ∃x2", "∀x1 ∃x2",
             "--backend", "dbapi", "--backend-opt", f"uri={uri}"]
        ) == 0
        assert "verified: True" in capsys.readouterr().out
        assert main(
            ["demo", "--backend", "dbapi",
             "--backend-opt", f"uri=file:{tmp_path}/d.sqlite",
             "--backend-opt", "pool_size=2"]
        ) == 0
        assert "matching boxes:" in capsys.readouterr().out

    def test_malformed_backend_opt_exits_two(self, capsys):
        for command in (
            ["learn", "∃x1", "--backend-opt", "pool_size"],
            ["verify", "∃x1", "∃x1", "--backend-opt", "=x"],
            ["demo", "--backend-opt", "justakey"],
        ):
            assert main(command) == 2
            captured = capsys.readouterr()
            assert "key=value" in captured.err
            assert captured.out == ""

    def test_unsupported_option_exits_two(self, capsys):
        # bitmask does not speak SQL: passing uri= is a typed error, not
        # a crash.
        assert main(
            ["learn", "∃x1", "--backend", "bitmask",
             "--backend-opt", "uri=file:/nope.db"]
        ) == 2
        assert "backend" in capsys.readouterr().err

    def test_typed_coercion_reaches_backend(self, capsys):
        # pool_size must arrive as an int for range checks to work.
        assert main(
            ["demo", "--backend", "dbapi", "--backend-opt", "pool_size=0"]
        ) == 2
        assert "positive" in capsys.readouterr().err


class TestThirdPartyBackends:
    PLUGIN = """
        class EchoBackend:
            name = "echo"
            capabilities = {"supports_sql": False}

            def __init__(self, relation, vocabulary, **options):
                raise NotImplementedError
    """

    def test_env_plugin_appears_in_demo_choices(
        self, tmp_path, monkeypatch, capsys
    ):
        """Acceptance criterion: REPRO_BACKENDS plugins join the
        --backend choices without editing repro.data.backends."""
        import textwrap

        from repro.data.backends import REGISTRY

        (tmp_path / "cli_plugin.py").write_text(textwrap.dedent(self.PLUGIN))
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_BACKENDS", "echo=cli_plugin:EchoBackend")
        try:
            args = build_parser().parse_args(["demo", "--backend", "echo"])
            assert args.backend == "echo"
        finally:
            REGISTRY.unregister("echo")
            monkeypatch.setenv("REPRO_BACKENDS", "")
            REGISTRY.names()  # re-sync the env-discovery cache


class TestParallelFlag:
    def test_learn_parallel_matches_sequential(self, capsys):
        """--parallel changes who evaluates, never the interaction: the
        full printed transcript (questions, rounds, result) is identical."""
        outputs = []
        for extra in ([], ["--parallel", "2"]):
            assert main(["learn", "∀x1x2→x3 ∃x4"] + extra) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_verify_parallel(self, capsys):
        assert main(
            ["verify", "∀x1 ∃x2", "∀x1 ∃x2", "--parallel", "2"]
        ) == 0
        assert "verified: True" in capsys.readouterr().out

    def test_learn_parallel_sql_backend(self, capsys):
        assert main(
            ["learn", "∃x1x2", "--backend", "sql", "--parallel", "2"]
        ) == 0
        assert "exact: True" in capsys.readouterr().out

    def test_demo_parallel_uses_worker_pool(self, capsys):
        assert main(["demo", "--parallel", "2"]) == 0
        out = capsys.readouterr().out
        assert "matching boxes:" in out
        assert "2-process pool" in out  # describe() names the pool

    def test_demo_parallel_rejects_conflicting_backend(self, capsys):
        """The silent backend="sharded" override of an explicitly passed
        --backend is now an explicit error (DESIGN.md §2i)."""
        for backend in ("sql", "bitmask", "dbapi"):
            assert main(
                ["demo", "--backend", backend, "--parallel", "2"]
            ) == 2
            captured = capsys.readouterr()
            assert "conflicts with --backend" in captured.err
            assert backend in captured.err
            assert captured.out == ""  # rejected before any work ran

    def test_demo_parallel_accepts_explicit_sharded(self, capsys):
        assert main(
            ["demo", "--backend", "sharded", "--parallel", "2"]
        ) == 0
        assert "2-process pool" in capsys.readouterr().out

    def test_help_contains_parallel_guide(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        assert "process parallelism (--parallel N" in capsys.readouterr().out


class TestServeStdio:
    """End-to-end remote-session story: the CLI serves learner rounds as
    JSON lines over a real pipe; this test is the remote user."""

    def _spawn(self, tmp_path, *extra):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        src = os.path.abspath("src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "learn",
                "--serve-stdio",
                "--n",
                "4",
                "--learner",
                "qhorn1",
                *extra,
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )

    def test_serve_snapshot_resume_round_trip(self, tmp_path):
        import json

        from repro.core.serialize import question_from_dict
        from repro.oracle import QueryOracle
        from repro.core.parser import parse_query

        intent = parse_query("∀x1 ∃x2x3", n=4)
        oracle = QueryOracle(intent)
        proc = self._spawn(tmp_path)
        snapshot = None
        rounds = 0
        try:
            while True:
                message = json.loads(proc.stdout.readline())
                if message["type"] == "finished":
                    break
                assert message["type"] == "round"
                rounds += 1
                if rounds == 2:
                    proc.stdin.write('{"type":"snapshot"}\n')
                    proc.stdin.flush()
                    reply = json.loads(proc.stdout.readline())
                    assert reply["type"] == "snapshot"
                    snapshot = reply["snapshot"]
                questions = [
                    question_from_dict(d) for d in message["questions"]
                ]
                answers = [oracle.ask(question) for question in questions]
                proc.stdin.write(
                    json.dumps({"type": "answers", "answers": answers}) + "\n"
                )
                proc.stdin.flush()
            assert message["query"] == intent.shorthand()
            assert proc.wait(timeout=30) == 0
        finally:
            proc.kill()

        assert snapshot is not None and rounds > 2
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(snapshot))
        proc = self._spawn(tmp_path, "--resume", str(path))
        try:
            replayed = 0
            while True:
                message = json.loads(proc.stdout.readline())
                if message["type"] == "finished":
                    break
                replayed += 1
                questions = [
                    question_from_dict(d) for d in message["questions"]
                ]
                answers = [oracle.ask(question) for question in questions]
                proc.stdin.write(
                    json.dumps({"type": "answers", "answers": answers}) + "\n"
                )
                proc.stdin.flush()
            # the parked prefix is replayed, not re-asked: fewer live rounds
            assert replayed == rounds - 1
            assert message["query"] == intent.shorthand()
            assert proc.wait(timeout=30) == 0
        finally:
            proc.kill()

    def test_serve_requires_n(self, capsys):
        assert main(["learn", "--serve-stdio"]) == 2
        assert "--n is required" in capsys.readouterr().err

    def test_learn_requires_target_without_serve(self, capsys):
        assert main(["learn"]) == 2
        assert "target query is required" in capsys.readouterr().err


class TestServeCommand:
    """`repro serve` end to end: a real server subprocess on an ephemeral
    port, driven by the load generator, shut down with SIGTERM."""

    def test_serve_loadgen_clean_shutdown(self, tmp_path):
        import asyncio
        import json
        import os
        import signal
        import subprocess
        import sys

        from repro.server.loadgen import random_intents, run_load

        env = dict(os.environ)
        src = os.path.abspath("src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        store = tmp_path / "sessions.sqlite"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--store",
                str(store),
            ],
            stdin=subprocess.DEVNULL,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            listening = json.loads(proc.stdout.readline())
            assert listening["type"] == "listening"
            port = listening["port"]
            intents = random_intents(4, 3, seed=7)
            report = asyncio.run(
                run_load("127.0.0.1", port, intents, think_time=0.001)
            )
            assert all(u.finished for u in report.users)
            assert store.exists()  # round boundaries hit the store
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            assert "shut down clean" in proc.stderr.read()
        finally:
            proc.kill()


class TestServeFleetFlags:
    """The §2h CLI surface that doesn't need a live fleet subprocess
    (the fleet itself is covered by tests/server/test_multiproc.py and
    the CI serve smoke)."""

    def test_workers_require_a_file_store(self, capsys):
        assert main(["serve", "--port", "0", "--workers", "2"]) == 2
        assert "file-backed --store" in capsys.readouterr().err

    def test_stats_require_a_file_store(self, capsys):
        assert main(["serve", "--stats"]) == 2
        assert "--store FILE" in capsys.readouterr().err

    def test_stats_print_the_merged_fleet_counters(self, tmp_path, capsys):
        import json

        from repro.server import SessionStore

        store_path = tmp_path / "sessions.sqlite"
        with SessionStore(store_path) as store:
            store.save_worker_stats("w0", {"sessions_finished": 3})
            store.save_worker_stats("w1", {"sessions_finished": 4})
        assert main(["serve", "--store", str(store_path), "--stats"]) == 0
        merged = json.loads(capsys.readouterr().out)
        assert merged == {"workers": 2, "sessions_finished": 7}
