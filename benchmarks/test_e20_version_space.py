"""E20 — the information floor, approached: optimal-split questioning.

A version-space learner that always asks the object splitting the
surviving candidates most evenly is the information-theoretic yardstick on
an enumerable class.  Measured on the full two-variable role-preserving
class (11 queries, lg 11 ≈ 3.46 bits): how many questions the optimal
splitter needs per target, vs the paper's structured lattice learner —
quantifying the price the structured learner pays for running in
polynomial time at *any* n (the splitter needs the explicit hypothesis
list and 2^(2^n) candidate questions, which dies immediately beyond
n = 3).
"""

from __future__ import annotations

import math
import statistics

from repro.analysis import render_table
from repro.core.generators import enumerate_role_preserving
from repro.core.normalize import canonicalize
from repro.learning import RolePreservingLearner
from repro.learning.version_space import VersionSpace
from repro.oracle import CountingOracle, QueryOracle


def test_e20_optimal_split_vs_structured(report, benchmark):
    hypotheses = enumerate_role_preserving(2)
    floor = math.log2(len(hypotheses))
    rows = []
    optimal_counts, structured_counts = [], []
    for target in sorted(hypotheses, key=lambda q: q.shorthand()):
        space = VersionSpace.full_role_preserving(2)
        vs_oracle = CountingOracle(QueryOracle(target))
        found, asked = space.run_to_identification(vs_oracle)
        assert canonicalize(found) == canonicalize(target)
        optimal_counts.append(asked)

        learner_oracle = CountingOracle(QueryOracle(target))
        result = RolePreservingLearner(learner_oracle).learn()
        assert canonicalize(result.query) == canonicalize(target)
        structured_counts.append(learner_oracle.questions_asked)
        rows.append(
            [target.shorthand(), asked, learner_oracle.questions_asked]
        )
    table = render_table(
        ["target", "optimal-split questions", "lattice learner questions"],
        rows,
        title=(
            "E20 — information-optimal questioning vs the structured "
            f"learner on the 11-query two-variable class (floor: lg 11 = "
            f"{floor:.2f} bits)"
        ),
    )
    table += (
        f"\nmeans: optimal {statistics.mean(optimal_counts):.1f}, "
        f"structured {statistics.mean(structured_counts):.1f} — the "
        "structured learner pays a constant factor for polynomial-time "
        "question generation at any n"
    )
    report("e20_version_space", table)
    assert statistics.mean(optimal_counts) >= floor - 1
    assert statistics.mean(optimal_counts) <= statistics.mean(
        structured_counts
    )

    def run_once():
        target = hypotheses[5]
        VersionSpace.full_role_preserving(2).run_to_identification(
            QueryOracle(target)
        )

    benchmark(run_once)
