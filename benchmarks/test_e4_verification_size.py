"""E4 — §4: verification needs O(k) questions, learning needs
O(n^{θ+1} + kn lg n).

For each target we build the verification set and also learn the query from
scratch, reporting both question counts side by side — the paper's central
economy argument for verification over learning.
"""

from __future__ import annotations

import random
import statistics

from repro.analysis import fit_model, render_table
from repro.core.generators import random_role_preserving
from repro.core.normalize import canonicalize
from repro.learning import RolePreservingLearner
from repro.oracle import CountingOracle, QueryOracle
from repro.verification import build_verification_set


def _k(query) -> int:
    canon = canonicalize(query)
    return len(canon.universals) + len(canon.conjunctions)


def test_e4_verification_vs_learning(report, benchmark):
    rng = random.Random(4000)
    buckets: dict[int, list[tuple[int, int]]] = {}
    for _ in range(80):
        n = rng.randint(6, 12)
        target = random_role_preserving(
            n, rng, theta=2, n_conjunctions=rng.randint(1, 5)
        )
        k = _k(target)
        vs = build_verification_set(target)
        oracle = CountingOracle(QueryOracle(target))
        RolePreservingLearner(oracle).learn()
        buckets.setdefault(k, []).append((vs.size, oracle.questions_asked))
    rows, ks, sizes = [], [], []
    for k in sorted(buckets):
        entries = buckets[k]
        mean_vs = statistics.mean(v for v, _ in entries)
        mean_learn = statistics.mean(l for _, l in entries)
        ks.append(k)
        sizes.append(mean_vs)
        rows.append(
            [k, len(entries), f"{mean_vs:.1f}", f"{mean_learn:.1f}",
             f"{mean_learn / mean_vs:.1f}x"]
        )
    fit = fit_model(ks, sizes, "n")  # linear in k
    table = render_table(
        ["k (normalized size)", "targets", "verification questions",
         "learning questions", "learning/verification"],
        rows,
        title="E4 / §4 — verification set size vs learning cost (paper: O(k) vs O(n^{θ+1}+kn lg n))",
    )
    table += f"\nlinear fit of verification size in k: {fit.describe()}"
    report("e4_verification_size", table)
    assert fit.r_squared > 0.8
    # verification strictly cheaper than learning on every bucket
    for row in rows:
        assert float(row[3]) > float(row[2])

    target = random_role_preserving(10, random.Random(7), theta=2)
    benchmark(build_verification_set, target)
