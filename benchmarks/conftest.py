"""Shared infrastructure for the benchmark/experiment suite.

Every experiment (E1–E14, see DESIGN.md §3) regenerates one of the paper's
theorems or figures as a table.  Tables are printed *and* written to
``benchmarks/results/<experiment>.txt`` so the numbers survive pytest's
output capture and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Returns a writer: ``report(experiment_id, text)`` prints the table and
    persists it under benchmarks/results/."""

    def write(experiment: str, text: str) -> None:
        print(f"\n{text}\n")
        path = results_dir / f"{experiment}.txt"
        path.write_text(text + "\n")

    return write
