"""Shared infrastructure for the benchmark/experiment suite.

Every experiment (E1–E22, see DESIGN.md §3) regenerates one of the paper's
theorems or figures as a table.  Tables are printed *and* written to disk
so the numbers survive pytest's output capture and can be pasted into
EXPERIMENTS.md.  By default they land in the untracked
``benchmarks/out/`` directory; only an explicit ``--update-results`` run
refreshes the committed tables under ``benchmarks/results/`` — so routine
local runs and CI never churn the committed tables (CI asserts they stay
byte-identical).

The engine-scale experiments (E13, E21) share session-scoped stores and a
mixed qhorn workload over the 4-proposition storefront vocabulary, sized
at 10–100× the seed relation sizes to exercise the batch bitmask path.
"""

from __future__ import annotations

import pathlib
import random

import pytest

from repro.core.query import QhornQuery
from repro.data.chocolate import (
    intro_query,
    random_store,
    storefront_vocabulary,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def results_dir(request) -> pathlib.Path:
    target = (
        RESULTS_DIR
        if request.config.getoption("--update-results")
        else OUT_DIR
    )
    target.mkdir(exist_ok=True)
    return target


@pytest.fixture
def report(results_dir):
    """Returns a writer: ``report(experiment_id, text)`` prints the table and
    persists it under benchmarks/results/."""

    def write(experiment: str, text: str) -> None:
        print(f"\n{text}\n")
        path = results_dir / f"{experiment}.txt"
        path.write_text(text + "\n")

    return write


@pytest.fixture(scope="session")
def storefront_vocab():
    """The 4-proposition storefront vocabulary shared by E13/E21."""
    return storefront_vocabulary()


@pytest.fixture(scope="session")
def store_factory():
    """Session-cached seeded stores: ``store_factory(size)`` builds each
    (size, seed) store once, so E13 and E21 can share the big relations."""
    cache: dict[tuple[int, int], object] = {}

    def make(size: int, seed: int = 2100):
        key = (size, seed)
        if key not in cache:
            cache[key] = random_store(size, random.Random(seed + size))
        return cache[key]

    return make


@pytest.fixture(scope="session")
def engine_workload() -> list[QhornQuery]:
    """A mixed qhorn workload over the storefront vocabulary (n=4):
    universal-only, existential-only, combined, bodyless and relaxed
    (``require_guarantees=False``) shapes — the query mix an interactive
    learning session sends to the engine."""
    return [
        intro_query(),
        QhornQuery.build(4, universals=[((0,), 1)]),
        QhornQuery.build(4, existentials=[(2, 3)]),
        QhornQuery.build(
            4, universals=[((), 0), ((0,), 3)], existentials=[(1, 2)]
        ),
        QhornQuery.build(4, universals=[((1,), 2)], require_guarantees=False),
        QhornQuery.build(4, existentials=[(0,), (1, 3)]),
        QhornQuery.build(4, universals=[((2, 3), 0)]),
        QhornQuery.build(4, universals=[((), 1)], existentials=[(0, 2, 3)]),
    ]


# ----------------------------------------------------------------------
# Machine-readable performance trend (BENCH_e2x.json)
# ----------------------------------------------------------------------
#
# The rendered tables are for humans; CI additionally wants a stable,
# machine-readable file so the performance trajectory can be tracked
# across runs (the artifact is uploaded by the benchmark-smoke job).
# Two sources feed it: explicit `trend(...)` records from the scale
# experiments (speedups, gate medians) and every pytest-benchmark
# median collected during the session.

#: Explicit trend records: benchmark name → metric dict.
_TREND: dict[str, dict[str, float]] = {}

TREND_FILE = "BENCH_e2x.json"


@pytest.fixture
def trend():
    """Returns a recorder: ``trend(name, median_s=..., speedup=...)``
    adds one benchmark's metrics to the session trend file."""

    def record(name: str, **metrics: float) -> None:
        _TREND.setdefault(name, {}).update(
            {key: float(value) for key, value in metrics.items()}
        )

    return record


def pytest_sessionfinish(session, exitstatus):
    """Write the trend file, merging explicit records with the medians
    of every pytest-benchmark run this session."""
    import json

    entries = {name: dict(metrics) for name, metrics in _TREND.items()}
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is not None:
        for bench in bench_session.benchmarks:
            try:
                median = float(bench.stats.median)
            except (AttributeError, TypeError):  # errored benchmark
                continue
            entries.setdefault(bench.name, {})["median_s"] = median
    if not entries:
        return
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / TREND_FILE
    path.write_text(json.dumps(entries, indent=2, sort_keys=True) + "\n")
