"""E26 — the packed numpy kernel vs the pure-python ``evaluate_inverted``.

The measurement the ``repro.data.backends.vectorized`` module (DESIGN.md
§2g) exists to answer: at 100 000 objects, how much faster is warm
query evaluation once the inverted index lives in packed uint64 words
with superset-union (zeta) tables?

Two workloads, because the answer depends on the mask-space density:

* **storefront** (n=4, ≤16 distinct masks) — the repo's default domain.
  CPython's big-int bitwise loops are already memory-bandwidth bound
  here, so the kernel records only a modest edge; the row is
  informational.
* **wide** (n=10, ~1024 distinct masks) — the regime the vectorized
  kernel is for.  The python kernel re-reads all ``D`` bitset rows per
  quantifier; the zeta tables make the numpy kernel touch one
  precomputed row instead, so the gap grows with ``D``.  This row is
  the gate: committed runs record >10x, CI enforces
  ``SPEEDUP_FLOOR`` (the structural floor is machine-independent —
  both kernels are single-core and bandwidth-bound).

Answers are asserted bit-identical between the kernels on every query
of both workloads (the full cross-backend identity lives in
``tests/properties/test_prop_backends.py``).
"""

from __future__ import annotations

import random
import time

from repro.analysis import render_table
from repro.data import (
    BoolIs,
    NestedRelation,
    Vocabulary,
    create_backend,
)
from repro.data.index import evaluate_inverted
from repro.data.schema import Attribute, FlatSchema, NestedSchema
from repro.core.query import QhornQuery

SIZE = 100_000
WIDE_N = 10
SPEEDUP_FLOOR = 2.0
PASSES = 3


def _wide_relation(n: int, count: int, seed: int):
    """A relation dense in mask space: ``count`` objects whose rows are
    random Boolean tuples over ``n`` propositions (~``2^n`` distinct
    masks), next to the storefront's ~16."""
    flat = FlatSchema(
        name="wide",
        attributes=tuple(Attribute.boolean(f"b{i + 1}") for i in range(n)),
    )
    vocab = Vocabulary(flat, [BoolIs(f"b{i + 1}") for i in range(n)])
    relation = NestedRelation(NestedSchema(name="wide_objects", embedded=flat))
    rng = random.Random(seed)
    for i in range(count):
        relation.add_object(
            f"w{i}",
            rows=[
                {
                    f"b{j + 1}": bool(rng.getrandbits(1))
                    for j in range(n)
                }
                for _ in range(rng.randrange(1, 4))
            ],
        )
    return relation, vocab


def _wide_workload(n: int, seed: int) -> list[QhornQuery]:
    """Seeded mixed qhorn queries over the wide vocabulary."""
    rng = random.Random(seed)
    out: list[QhornQuery] = []
    for _ in range(8):
        universals = []
        for _ in range(rng.randrange(1, 3)):
            head = rng.randrange(n)
            body = tuple(
                v
                for v in rng.sample(range(n), rng.randrange(0, 3))
                if v != head
            )
            universals.append((body, head))
        existentials = [
            tuple(rng.sample(range(n), rng.randrange(1, 3)))
            for _ in range(rng.randrange(0, 2))
        ]
        out.append(
            QhornQuery.build(
                n, universals=universals, existentials=existentials
            )
        )
    return out


def _measure(compiled, evaluate):
    """Best-of-``PASSES`` warm wall time for one full workload sweep."""
    times, answers = [], None
    for _ in range(PASSES):
        t0 = time.perf_counter()
        run = [evaluate(c) for c in compiled]
        times.append((time.perf_counter() - t0) * 1000)
        if answers is None:
            answers = run
    return min(times), answers


def _kernel_row(label, relation, vocab, workload, gated):
    """Warm python-kernel vs numpy-kernel sweep on one workload; returns
    the table row and the measured speedup."""
    compiled = [q.compile() for q in workload]
    index = create_backend("bitmask", relation, vocab).index
    inverted, all_bits = index._inverted, index._all_bits
    numpy_backend = create_backend("numpy", relation, vocab)
    numpy_backend.refresh(force=True)
    numpy_backend.matching_bits(compiled[0])  # build the zeta tables

    python_ms, python_answers = _measure(
        compiled, lambda c: evaluate_inverted(c, inverted, all_bits)
    )
    numpy_ms, numpy_answers = _measure(compiled, numpy_backend.matching_bits)
    assert numpy_answers == python_answers, (
        f"{label}: numpy kernel answers diverge from evaluate_inverted"
    )
    speedup = python_ms / numpy_ms if numpy_ms else float("inf")
    row = [
        label,
        str(index.distinct_masks),
        f"{python_ms:.2f}",
        f"{numpy_ms:.2f}",
        f"{speedup:.1f}x",
        "yes" if gated else "-",
    ]
    return row, speedup, numpy_backend


def test_e26_numpy_kernel(
    report, trend, benchmark, storefront_vocab, store_factory, engine_workload
):
    store_row, store_speedup, _ = _kernel_row(
        "storefront (n=4)",
        store_factory(SIZE),
        storefront_vocab,
        engine_workload,
        gated=False,
    )
    wide_relation, wide_vocab = _wide_relation(WIDE_N, SIZE, seed=1303)
    wide_workload = _wide_workload(WIDE_N, seed=2026)
    wide_row, wide_speedup, wide_backend = _kernel_row(
        f"wide (n={WIDE_N})",
        wide_relation,
        wide_vocab,
        wide_workload,
        gated=True,
    )
    assert wide_speedup >= SPEEDUP_FLOOR, (
        f"numpy kernel only {wide_speedup:.1f}x the python kernel on the "
        f"wide workload at {SIZE} objects (floor {SPEEDUP_FLOOR}x)"
    )
    trend("e26_numpy_kernel", speedup=wide_speedup)
    trend("e26_numpy_kernel_storefront", speedup=store_speedup)

    table = render_table(
        ["workload", "distinct masks", "python ms", "numpy ms", "speedup", "gated"],
        [store_row, wide_row],
        title=(
            f"E26 — packed numpy kernel vs pure-python evaluate_inverted "
            f"at {SIZE} objects (8-query warm sweep, best-of-{PASSES}; "
            f"answers bit-identical on every query; gate: wide workload "
            f"≥ {SPEEDUP_FLOOR:.0f}x)"
        ),
    )
    report("e26_numpy_kernel", table)

    # pytest-benchmark median on the gated warm path.
    compiled = wide_workload[0].compile()
    benchmark(wide_backend.matching_bits, compiled)
