"""E10 — Fig. 7: verification sets for every role-preserving qhorn query on
two variables.

The paper tabulates, per query, which membership questions appear in each
verification-set row (A1/A2/A4/N1/N2; A3 never fires at n=2).  We enumerate
all 11 semantically distinct two-variable queries (Fig. 7 shows 7 — one per
orbit under swapping x1 and x2) and regenerate the full table.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import tuples as bt
from repro.core.generators import enumerate_role_preserving
from repro.core.normalize import canonicalize
from repro.verification import build_verification_set


def _cell(questions) -> str:
    if not questions:
        return "-"
    return " | ".join(
        "{" + ",".join(
            bt.format_tuple(t, q.question.n)
            for t in q.question.sorted_tuples()
        ) + "}"
        for q in questions
    )


def _swap_mask(t: int) -> int:
    return ((t & 1) << 1) | ((t >> 1) & 1)


def test_e10_fig7_table(report, benchmark):
    queries = sorted(
        enumerate_role_preserving(2), key=lambda q: q.shorthand()
    )
    assert len(queries) == 11

    rows = []
    for q in queries:
        vs = build_verification_set(q)
        rows.append(
            [
                q.shorthand(),
                _cell(vs.by_kind("A1")),
                _cell(vs.by_kind("A2")),
                _cell(vs.by_kind("A4")),
                _cell(vs.by_kind("N1")),
                _cell(vs.by_kind("N2")),
            ]
        )
        # Fig. 7: no A3 questions exist on two variables.
        assert not vs.by_kind("A3")

    table = render_table(
        ["query", "A1", "A2", "A4", "N1", "N2"],
        rows,
        title=(
            "E10 / Fig. 7 — verification sets of all role-preserving "
            "queries on two variables (paper lists the 7 orbits under "
            "x1<->x2 symmetry; we list all 11 queries)"
        ),
    )

    # the 11 queries collapse to 7 orbits under variable swap, as in Fig. 7
    def orbit_key(q):
        swapped = canonicalize(
            type(q)(
                n=2,
                universals=frozenset(
                    type(u)(head=1 - u.head,
                            body=frozenset(1 - v for v in u.body))
                    for u in q.universals
                ),
                existentials=frozenset(
                    type(e)(frozenset(1 - v for v in e.variables))
                    for e in q.existentials
                ),
            )
        )
        return min(str(canonicalize(q)), str(swapped))

    orbits = {orbit_key(q) for q in queries}
    table += f"\norbits under x1<->x2 swap: {len(orbits)} (Fig. 7 columns: 7)"
    report("e10_fig7_two_var_sets", table)
    assert len(orbits) == 7

    benchmark(lambda: [build_verification_set(q) for q in queries])
