"""E3 — Theorems 3.5 + 3.8: role-preserving qhorn learning costs
O(n^{θ+1}) questions for universal Horn expressions plus O(kn lg n) for
existential conjunctions.

Two sweeps: n for fixed θ ∈ {1, 2, 3} (polynomial degree grows with θ), and
k (number of conjunctions) for fixed n (linear growth).
"""

from __future__ import annotations

import random
import statistics

from repro.analysis import empirical_exponent, render_table
from repro.core.generators import random_role_preserving
from repro.core.normalize import canonicalize
from repro.learning import RolePreservingLearner
from repro.oracle import CountingOracle, QueryOracle

NS = (6, 9, 12, 15, 18)
SEEDS = 6


def _mean_questions(n: int, theta: int, n_conjunctions: int = 2) -> float:
    rng = random.Random(3000 + 97 * n + theta)
    counts = []
    for _ in range(SEEDS):
        target = random_role_preserving(
            n, rng, n_heads=2, theta=theta, n_conjunctions=n_conjunctions,
            allow_bodyless=False,
        )
        oracle = CountingOracle(QueryOracle(target))
        result = RolePreservingLearner(oracle).learn()
        assert canonicalize(result.query) == canonicalize(target)
        counts.append(oracle.questions_asked)
    return statistics.mean(counts)


def test_e3_scaling_in_n_per_theta(report, benchmark):
    rows = []
    exponents = {}
    for theta in (1, 2, 3):
        means = [_mean_questions(n, theta) for n in NS]
        exponents[theta] = empirical_exponent(list(NS), means)
        rows.append(
            [f"θ={theta}"]
            + [f"{m:.0f}" for m in means]
            + [f"{exponents[theta]:.2f}"]
        )
    table = render_table(
        ["", *(f"n={n}" for n in NS), "log-log slope"],
        rows,
        title=(
            "E3a / Thm 3.5 — role-preserving learning questions vs n "
            "(paper: O(n^{θ+1} + kn lg n))"
        ),
    )
    report("e3a_role_preserving_vs_n", table)
    # higher causal density must cost more, and every slope must respect
    # the paper's θ+1 exponent (plus the kn lg n term's slack)
    assert exponents[1] <= exponents[3] + 0.5
    for theta, exp in exponents.items():
        assert exp < theta + 1.7, (theta, exp)

    def run_once():
        rng = random.Random(1)
        t = random_role_preserving(10, rng, n_heads=2, theta=2)
        RolePreservingLearner(QueryOracle(t)).learn()

    benchmark(run_once)


def _antichain_target(n: int, k: int, rng: random.Random):
    """Exactly k incomparable conjunctions at level n/2 — the normalized
    query size is k by construction, so the sweep controls k directly."""
    from repro.core.query import QhornQuery

    half = n // 2
    chosen: set[frozenset[int]] = set()
    while len(chosen) < k:
        chosen.add(frozenset(rng.sample(range(n), half)))
    return QhornQuery.build(n, existentials=[sorted(c) for c in chosen])


def test_e3_scaling_in_k(report, benchmark):
    n = 12
    rows, ks, means = [], [], []
    for k in (1, 2, 4, 8, 16):
        rng = random.Random(3500 + k)
        counts = []
        for _ in range(SEEDS):
            target = _antichain_target(n, k, rng)
            oracle = CountingOracle(QueryOracle(target))
            result = RolePreservingLearner(oracle).learn()
            assert canonicalize(result.query) == canonicalize(target)
            counts.append(oracle.questions_asked)
        mean = statistics.mean(counts)
        ks.append(k)
        means.append(mean)
        import math

        rows.append([k, f"{mean:.0f}", f"{mean / (k * n * math.log2(n)):.2f}"])
    table = render_table(
        ["k (dominant conjunctions)", "mean questions", "ratio to k·n·lg n"],
        rows,
        title=(
            "E3b / Thm 3.8 — questions vs number of dominant existential "
            "conjunctions at n=12 (paper: O(kn lg n))"
        ),
    )
    slope = empirical_exponent(ks, means)
    table += f"\nlog-log slope in k: {slope:.2f} (paper: ≤ 1)"
    report("e3b_role_preserving_vs_k", table)
    assert slope < 1.2

    benchmark(
        lambda: RolePreservingLearner(
            QueryOracle(_antichain_target(n, 4, random.Random(2)))
        ).learn()
    )
