"""E25c — fleet scaling: sessions/sec and round latency vs worker count.

The §2h measurement: the same simulated-user workload (E25's load shape,
plus worker-hopping reconnects) is replayed against a ``ServerFleet`` of
1, 2 and 4 worker processes sharing one ``SO_REUSEPORT`` host:port and
one file-backed ``SessionStore``.  The load generator itself fans out
over client processes (:func:`run_load_multiprocess`) so a single client
event loop never becomes the bottleneck being measured.

Hard gates:

* **Equivalence at every width** — every dialogue finishes at every
  worker count, and every wire transcript (questions *and* answers, in
  order — including the rounds answered across worker hops) is
  bit-identical to the synchronous in-process ``LearningSession.run()``
  path for the same intent.
* **Scaling** (only on >= 4-core runners; informational below) —
  sessions/sec at 4 workers is >= 2x the 1-worker figure.  One
  ``RoundServer`` is one event loop is one core; the fleet exists to
  break exactly that ceiling, and the store handoff is cheap enough not
  to eat the win.
"""

from __future__ import annotations

import os

from repro.analysis import render_table
from repro.interactive import LearningSession
from repro.learning import Qhorn1Learner
from repro.oracle import QueryOracle
from repro.server import ServerFleet
from repro.server.loadgen import random_intents, run_load_multiprocess

WORKER_COUNTS = [1, 2, 4]
N_USERS = 96
N_VARS = 5
SEED = 2550
HOP_EVERY = 3
CLIENT_PROCESSES = 4
#: The >=2x gate (and the recorded trend speedup) only means anything
#: when the host can actually run 4 workers on 4 cores.
SCALING_FLOOR = 2.0
GATE_CORES = 4


def _sync_reference(intent):
    session = LearningSession(
        lambda oracle: Qhorn1Learner(oracle), oracle=QueryOracle(intent)
    )
    return session.run()


def _assert_bit_identical(user, reference):
    questions = [q for qs, _ in user.transcript for q in qs]
    answers = [a for _, ans in user.transcript for a in ans]
    assert questions == [e.question for e in reference.transcript]
    assert answers == reference.transcript.responses()
    assert user.learned == reference.query.shorthand()


def test_e25c_fleet_scale(report, trend, tmp_path):
    intents = random_intents(N_USERS, N_VARS, seed=SEED)
    # One synchronous reference per intent, shared across every width —
    # the transcripts must not depend on the worker count at all.  Keyed
    # by the intent that actually answered the rounds (the client
    # processes' pickle round-trip can reorder shorthand rendering, so
    # the user's own intent object is the authoritative one).
    references: dict[str, object] = {}

    results = {}
    for workers in WORKER_COUNTS:
        store_path = tmp_path / f"fleet_{workers}w.sqlite"
        with ServerFleet(store_path, workers=workers) as fleet:
            load = run_load_multiprocess(
                fleet.host,
                fleet.port,
                intents,
                processes=CLIENT_PROCESSES,
                seed=SEED,
                hop_every=HOP_EVERY,
            )
            stats = fleet.stop()
        assert all(user.finished for user in load.users)
        assert stats["sessions_finished"] == N_USERS
        assert stats["claims_rejected"] == 0
        for user in load.users:
            key = user.intent.shorthand()
            if key not in references:
                references[key] = _sync_reference(user.intent)
            _assert_bit_identical(user, references[key])
        if workers > 1:
            assert len(load.workers_seen) == workers
            assert load.total_hops > 0
        results[workers] = load

    base = results[WORKER_COUNTS[0]].sessions_per_s
    cores = os.cpu_count() or 1
    gated = cores >= GATE_CORES
    rows = []
    for workers in WORKER_COUNTS:
        load = results[workers]
        summary = load.to_dict()
        rows.append(
            [
                workers,
                f"{load.sessions_per_s:.1f}",
                summary["p50_round_ms"],
                summary["p99_round_ms"],
                summary["hops"],
                f"{load.sessions_per_s / base:.2f}x" if base else "n/a",
            ]
        )
    speedup_4w = (
        results[4].sessions_per_s / base if base else 0.0
    )
    if gated:
        assert speedup_4w >= SCALING_FLOOR, (
            f"4-worker fleet reached only {speedup_4w:.2f}x the 1-worker "
            f"throughput on a {cores}-core host (floor {SCALING_FLOOR}x)"
        )

    table = render_table(
        ["workers", "sessions/s", "p50 ms", "p99 ms", "hops", "speedup"],
        rows,
        title=(
            f"E25c — fleet scaling: {N_USERS} simulated users (n={N_VARS} "
            f"qhorn-1 intents, hop every {HOP_EVERY} rounds, "
            f"{CLIENT_PROCESSES} client processes) vs worker count on a "
            f"{cores}-core host; transcripts bit-identical to the "
            "synchronous path at every width"
            + ("" if gated else " [scaling informational: < 4 cores]")
        ),
    )
    report("e25c_fleet_scale", table)
    metrics = {
        "sessions_per_s_1w": results[1].sessions_per_s,
        "sessions_per_s_4w": results[4].sessions_per_s,
        "p99_round_ms_4w": results[4].to_dict()["p99_round_ms"],
    }
    if gated:
        # Below 4 cores the "speedup" is noise, not a measurement; the
        # baseline band entry is required:false for exactly this case.
        metrics["speedup"] = speedup_4w
    trend("e25c_fleet_scale", **metrics)
