"""E2 — §3.1.2's strawman: serial dependence testing costs Θ(n²).

"The most straightforward way to learn the body variables ... is with O(n²)
questions ... We can do better."  This experiment measures the gap between
that straightforward learner and the binary-search learner on identical
targets.
"""

from __future__ import annotations

import random
import statistics

from repro.analysis import empirical_exponent, render_table
from repro.core.generators import random_qhorn1
from repro.core.normalize import canonicalize
from repro.learning import NaiveQhorn1Learner, Qhorn1Learner
from repro.oracle import CountingOracle, QueryOracle

NS = (8, 16, 32, 64)
SEEDS = 8


def _mean_questions(learner_cls, n: int) -> float:
    rng = random.Random(2000 + n)
    counts = []
    for _ in range(SEEDS):
        target = random_qhorn1(n, rng)
        oracle = CountingOracle(QueryOracle(target))
        result = learner_cls(oracle).learn()
        assert canonicalize(result.query) == canonicalize(target)
        counts.append(oracle.questions_asked)
    return statistics.mean(counts)


def test_e2_naive_vs_binary_search(report, benchmark):
    rows, ns, fast_means, naive_means = [], [], [], []
    for n in NS:
        fast = _mean_questions(Qhorn1Learner, n)
        naive = _mean_questions(NaiveQhorn1Learner, n)
        ns.append(n)
        fast_means.append(fast)
        naive_means.append(naive)
        rows.append([n, f"{fast:.1f}", f"{naive:.1f}", f"{naive / fast:.2f}x"])
    table = render_table(
        ["n", "O(n lg n) learner", "serial Θ(n²) learner", "gap"],
        rows,
        title=(
            "E2 / §3.1.2 — binary search vs the serial strawman "
            "(paper: n² -> n lg n)"
        ),
    )
    fast_exp = empirical_exponent(ns, fast_means)
    naive_exp = empirical_exponent(ns, naive_means)
    table += (
        f"\nlog-log exponents: binary-search {fast_exp:.2f}, "
        f"serial {naive_exp:.2f} (paper: ~1+lg-factor vs 2)"
    )
    report("e2_baseline_gap", table)
    assert naive_exp > fast_exp + 0.25
    assert all(nv > fv for fv, nv in zip(fast_means, naive_means))

    def run_once():
        rng = random.Random(0)
        NaiveQhorn1Learner(QueryOracle(random_qhorn1(16, rng))).learn()

    benchmark(run_once)
