"""E15 — §6 (future work, implemented): query revision.

"Given a query which is close to the user's intended query, our goal is to
determine the intended query through few membership questions — polynomial
in the distance between the given query and the intended query."

Measured: revision cost vs the lattice revision distance (§6's suggested
metric, `analysis.revision_distance`), against learning from scratch.
"""

from __future__ import annotations

import random
import statistics

from repro.analysis import render_table, revision_distance
from repro.core.generators import random_role_preserving
from repro.core.normalize import canonicalize
from repro.learning import RolePreservingLearner, revise_query
from repro.oracle import CountingOracle, QueryOracle


def test_e15_revision_cost_vs_distance(report, benchmark):
    rng = random.Random(15000)
    buckets: dict[str, list[tuple[int, int]]] = {}
    for _ in range(120):
        n = rng.randint(5, 10)
        intended = random_role_preserving(n, rng, theta=2)
        if rng.random() < 0.4:
            given = intended  # distance 0
        else:
            given = random_role_preserving(n, rng, theta=2)
        distance = revision_distance(given, intended)
        bucket = (
            "0"
            if distance == 0
            else "1-4"
            if distance <= 4
            else "5-9"
            if distance <= 9
            else "10+"
        )
        oracle = CountingOracle(QueryOracle(intended))
        result = revise_query(given, oracle)
        assert canonicalize(result.query) == canonicalize(intended)
        learn_oracle = CountingOracle(QueryOracle(intended))
        RolePreservingLearner(learn_oracle).learn()
        buckets.setdefault(bucket, []).append(
            (oracle.questions_asked, learn_oracle.questions_asked)
        )
    rows = []
    means = {}
    for bucket in ("0", "1-4", "5-9", "10+"):
        entries = buckets.get(bucket, [])
        if not entries:
            continue
        mean_rev = statistics.mean(q for q, _ in entries)
        mean_learn = statistics.mean(l for _, l in entries)
        means[bucket] = mean_rev
        rows.append(
            [bucket, len(entries), f"{mean_rev:.1f}", f"{mean_learn:.1f}",
             f"{mean_learn / mean_rev:.2f}x"]
        )
    table = render_table(
        ["revision distance", "pairs", "revision questions",
         "learning questions", "saving"],
        rows,
        title=(
            "E15 / §6 — revision cost grows with lattice distance and "
            "undercuts learning from scratch (all revisions exact)"
        ),
    )
    report("e15_revision", table)
    assert means["0"] < means["10+"]
    # confirming a correct query must beat relearning it
    zero_entries = buckets["0"]
    assert statistics.mean(q for q, _ in zero_entries) < statistics.mean(
        l for _, l in zero_entries
    )

    def confirm_once():
        r = random.Random(1)
        q = random_role_preserving(8, r, theta=2)
        revise_query(q, QueryOracle(q))

    benchmark(confirm_once)
