"""E7 — Theorem 3.6: learning the θ universal Horn expressions of one head
requires Ω((n/θ)^{θ-1}) questions.

The family: θ−1 disjoint bodies of size n/(θ−1) plus a large body Bθ
overlapping each in all but one variable.  Per the proof, the only
informative questions falsify exactly one variable of each small body; each
"answer" eliminates a single candidate Bθ.  We play that game against the
candidate-elimination adversary and also measure the actual lattice
learner's (upper-bound) cost on the same family.
"""

from __future__ import annotations

from itertools import product

from repro.analysis import render_table
from repro.core import tuples as bt
from repro.core.generators import theta_body_query
from repro.core.normalize import canonicalize
from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.learning import RolePreservingLearner
from repro.oracle import CandidateEliminationAdversary, CountingOracle, QueryOracle


def _candidate_family(n_body: int, theta: int) -> list[QhornQuery]:
    """All queries of the Thm 3.6 family: fixed small bodies, every choice
    of Bθ = union of (block minus one variable)."""
    block = n_body // (theta - 1)
    head = n_body
    blocks = [
        list(range(b * block, (b + 1) * block)) for b in range(theta - 1)
    ]
    out = []
    for removal in product(range(block), repeat=theta - 1):
        big = [
            v
            for b, blk in enumerate(blocks)
            for i, v in enumerate(blk)
            if i != removal[b]
        ]
        out.append(
            QhornQuery.build(
                n_body + 1,
                universals=[(blk, head) for blk in blocks] + [(big, head)],
            )
        )
    return out


def test_e7_adversarial_lower_bound(report, benchmark):
    rows = []
    for n_body, theta in ((6, 3), (8, 3), (9, 4), (8, 5)):
        block = n_body // (theta - 1)
        cands = _candidate_family(n_body, theta)
        adv = CandidateEliminationAdversary(cands)
        head = n_body
        blocks = [
            list(range(b * block, (b + 1) * block)) for b in range(theta - 1)
        ]
        top = bt.all_true(n_body + 1)
        for removal in product(range(block), repeat=theta - 1):
            if adv.is_identified():
                break
            falsify = [blocks[b][i] for b, i in enumerate(removal)] + [head]
            adv.ask(
                Question.of(n_body + 1, [top, bt.with_false(top, falsify)])
            )
        bound = block ** (theta - 1) - 1
        rows.append(
            [n_body, theta, len(cands), adv.questions_asked, bound,
             "yes" if adv.questions_asked >= bound else "no"]
        )
        assert adv.questions_asked >= bound
    table = render_table(
        ["body vars", "θ", "candidates", "questions to identify",
         "(n/(θ-1))^{θ-1} - 1", "bound met"],
        rows,
        title=(
            "E7a / Thm 3.6 — adversarial lower bound for learning the θ "
            "bodies of one head (paper: Ω((n/θ)^{θ-1}))"
        ),
    )
    report("e7a_universal_lower_bound", table)

    benchmark(_candidate_family, 8, 3)


def test_e7_learner_upper_bound(report, benchmark):
    """Thm 3.5's upper bound on the same family: O(n^θ) questions."""
    rows = []
    for n_body, theta in ((6, 2), (6, 3), (12, 4)):
        target = theta_body_query(n_body, theta)
        oracle = CountingOracle(QueryOracle(target))
        result = RolePreservingLearner(oracle).learn()
        assert canonicalize(result.query) == canonicalize(target)
        n = n_body + 1
        rows.append(
            [n_body, theta, oracle.questions_asked, n**theta]
        )
        assert oracle.questions_asked <= n**theta
    table = render_table(
        ["body vars", "θ", "learner questions", "n^θ (upper bound)"],
        rows,
        title="E7b / Thm 3.5 — measured learner cost on the Thm 3.6 family",
    )
    report("e7b_universal_upper_bound", table)

    benchmark(
        lambda: RolePreservingLearner(
            QueryOracle(theta_body_query(6, 3))
        ).learn()
    )
