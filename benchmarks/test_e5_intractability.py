"""E5 — Theorem 2.1: learning qhorn with variable repetition needs Ω(2^n)
membership questions.

Two measurements on the ``Uni(X) ∧ Alias(Y)`` family:

* exhaustive (n ≤ 3): *every* possible membership question eliminates at
  most one of the 2^n candidates when the adversary answers with the
  majority — the counting heart of the proof;
* adversarial play (n up to 10): a sound learner interrogating the
  adversary cannot identify the target before 2^n − 1 questions.
"""

from __future__ import annotations

from itertools import chain, combinations

from repro.analysis import render_table
from repro.core import tuples as bt
from repro.core.generators import uni_alias_query
from repro.core.tuples import Question
from repro.oracle import CandidateEliminationAdversary, max_elimination


def _candidates(n: int):
    return [
        uni_alias_query(n, list(alias))
        for alias in chain.from_iterable(
            combinations(range(n), r) for r in range(n + 1)
        )
    ]


def _all_questions(n: int):
    universe = list(range(1 << n))
    for bits in range(1, 1 << len(universe)):
        yield Question.of(
            n, [t for i, t in enumerate(universe) if bits & (1 << i)]
        )


def test_e5_exhaustive_elimination_bound(report, benchmark):
    rows = []
    for n in (2, 3):
        cands = _candidates(n)
        worst = max_elimination(cands, _all_questions(n))
        rows.append([n, len(cands), 2 ** (2**n) - 1, worst])
        assert worst <= 1
    table = render_table(
        ["n", "candidates (2^n)", "questions examined", "max eliminated by any question"],
        rows,
        title=(
            "E5a / Thm 2.1 — exhaustive check: no membership question "
            "eliminates more than one Uni∧Alias candidate"
        ),
    )
    report("e5a_intractability_exhaustive", table)

    benchmark(
        lambda: max_elimination(_candidates(3), _all_questions(3))
    )


def test_e5_adversarial_play(report, benchmark):
    rows = []
    for n in (4, 6, 8, 10):
        cands = _candidates(n)
        adv = CandidateEliminationAdversary(cands)
        top = bt.all_true(n)
        # the only informative question shape: {1^n, alias-pattern}
        for alias in chain.from_iterable(
            combinations(range(n), r) for r in range(n + 1)
        ):
            if adv.is_identified():
                break
            adv.ask(Question.of(n, [top, bt.with_false(top, list(alias))]))
        rows.append(
            [n, len(cands), adv.questions_asked, 2**n - 1,
             "yes" if adv.questions_asked >= 2**n - 1 else "no"]
        )
        assert adv.questions_asked >= 2**n - 1
    table = render_table(
        ["n", "candidates", "questions to identify", "2^n - 1", "bound met"],
        rows,
        title=(
            "E5b / Thm 2.1 — adversarial play: identifying the target takes "
            "2^n − 1 questions (paper: Ω(2^n))"
        ),
    )
    report("e5b_intractability_adversary", table)

    def play_once():
        cands = _candidates(8)
        adv = CandidateEliminationAdversary(cands)
        top = bt.all_true(8)
        for alias in chain.from_iterable(
            combinations(range(8), r) for r in range(9)
        ):
            if adv.is_identified():
                break
            adv.ask(Question.of(8, [top, bt.with_false(top, list(alias))]))

    benchmark(play_once)
