"""E1 — Theorem 3.1: qhorn-1 is exactly learnable with O(n lg n) questions.

Regenerates the theorem as a scaling table: mean/max membership questions
over seeded random qhorn-1 targets for growing n, the measured n-lg-n fit,
and the information-theoretic floor lg B_n from §2.1.3.
"""

from __future__ import annotations

import random
import statistics

from repro.analysis import (
    empirical_exponent,
    fit_model,
    qhorn1_lower_bound_bits,
    render_table,
)
from repro.core.generators import random_qhorn1
from repro.core.normalize import canonicalize
from repro.learning import Qhorn1Learner
from repro.oracle import CountingOracle, QueryOracle

NS = (8, 16, 32, 64, 96)
SEEDS = 12


def _measure(n: int) -> tuple[float, int]:
    rng = random.Random(1000 + n)
    counts = []
    for _ in range(SEEDS):
        target = random_qhorn1(n, rng)
        oracle = CountingOracle(QueryOracle(target))
        result = Qhorn1Learner(oracle).learn()
        assert canonicalize(result.query) == canonicalize(target)
        counts.append(oracle.questions_asked)
    return statistics.mean(counts), max(counts)


def test_e1_question_scaling(report, benchmark):
    rows = []
    ns, means = [], []
    for n in NS:
        mean, worst = _measure(n)
        ns.append(n)
        means.append(mean)
        import math

        rows.append(
            [
                n,
                f"{mean:.1f}",
                worst,
                f"{mean / (n * math.log2(n)):.3f}",
                f"{qhorn1_lower_bound_bits(n):.1f}",
            ]
        )
    fit = fit_model(ns, means, "n log n")
    exponent = empirical_exponent(ns, means)
    table = render_table(
        ["n", "mean questions", "max", "ratio to n·lg n", "lg B_n (floor)"],
        rows,
        title=(
            "E1 / Theorem 3.1 — qhorn-1 learning questions "
            "(paper: O(n lg n), exact identification)"
        ),
    )
    table += f"\nfit: {fit.describe()}\nlog-log exponent: {exponent:.2f}"
    report("e1_qhorn1_scaling", table)
    assert fit.r_squared > 0.98
    assert exponent < 1.6  # far from quadratic

    # wall-clock for one representative learning run
    def run_once():
        rng = random.Random(0)
        target = random_qhorn1(32, rng)
        Qhorn1Learner(QueryOracle(target)).learn()

    benchmark(run_once)
