"""E22 — the oracle side at scale: sequential ``ask`` vs batched
``ask_many`` on a ground-truth :class:`~repro.oracle.base.QueryOracle`.

Not a paper experiment, but the measurement behind the batch-first
protocol (DESIGN.md §2b): a learner-shaped question stream — many
questions, heavy repetition across phases and restarts — answered one
call at a time versus as mask-native batches.  Sequential ``ask`` runs
the reference evaluator per call (re-deriving expression masks every
time); ``ask_many`` compiles the hidden target once and evaluates each
*distinct* question's mask set exactly once, reusing answers for
duplicates.  Responses are asserted identical, always.

Workloads draw from a bounded pool of distinct questions (pool = size/20,
the repetition a caching/replaying session exhibits) plus one
all-distinct control row showing the compile-only speedup without any
dedup leverage.  The acceptance gate: batched answering is ≥ 5× faster
than sequential ``ask`` on every repetitive workload of ≥ 1000 questions.
"""

from __future__ import annotations

import random
import time

from repro.analysis import render_table
from repro.core import tuples as bt
from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.oracle import QueryOracle

N_VARS = 16
SIZES = (1000, 4000, 10000)
SPEEDUP_FLOOR = 5.0
GATE_MIN_QUESTIONS = 1000


def _target() -> QhornQuery:
    """A mixed qhorn target (k=10): shared-body universals, a bodyless
    head, and overlapping conjunctions — the expression mix that makes
    sequential re-evaluation expensive."""
    return QhornQuery.build(
        N_VARS,
        universals=[
            ((0, 1), 2),
            ((0, 1), 3),
            ((4,), 5),
            ((4, 6), 7),
            ((), 8),
            ((9, 10), 11),
        ],
        existentials=[(6, 7), (9, 10, 12), (12, 13), (13, 14, 15)],
    )


def _question_pool(rng: random.Random, count: int) -> list[Question]:
    """Distinct learner-shaped questions: 3–10 mostly-true tuples.

    Learner questions are the all-true tuple with a handful of variables
    falsified (head tests, dependence probes, lattice roots), so the
    evaluator walks most expressions before deciding — unlike uniformly
    random tuples, which violate some universal almost immediately.
    """
    top = bt.all_true(N_VARS)
    pool: set[Question] = set()
    while len(pool) < count:
        tuples = [
            bt.with_false(top, rng.sample(range(N_VARS), rng.randint(0, 3)))
            for _ in range(rng.randint(3, 10))
        ]
        pool.add(Question.of(N_VARS, tuples))
    return sorted(pool, key=lambda q: sorted(q.tuples))


def _workload(
    rng: random.Random, size: int, pool_size: int
) -> list[Question]:
    pool = _question_pool(rng, pool_size)
    if pool_size >= size:  # all-distinct control: every question unique
        rng.shuffle(pool)
        return pool[:size]
    return [rng.choice(pool) for _ in range(size)]


def test_e22_oracle_batching(report, trend, benchmark):
    target = _target()
    rows = []
    workloads = [
        (size, max(50, size // 20)) for size in SIZES
    ] + [(SIZES[-1], SIZES[-1])]  # all-distinct control row
    largest_batchable = None
    for size, pool_size in workloads:
        questions = _workload(random.Random(2200 + size), size, pool_size)
        distinct = len(set(questions))

        sequential_oracle = QueryOracle(target)
        t0 = time.perf_counter()
        sequential = [sequential_oracle.ask(q) for q in questions]
        sequential_ms = (time.perf_counter() - t0) * 1000

        batched_oracle = QueryOracle(target)
        t0 = time.perf_counter()
        batched = batched_oracle.ask_many(questions)
        batched_ms = (time.perf_counter() - t0) * 1000

        assert batched == sequential  # identical responses, always

        speedup = (
            sequential_ms / batched_ms if batched_ms else float("inf")
        )
        repetitive = distinct < size
        if repetitive and size >= GATE_MIN_QUESTIONS:
            assert speedup >= SPEEDUP_FLOOR, (
                f"ask_many only {speedup:.1f}x faster than sequential ask "
                f"on {size} questions / {distinct} distinct "
                f"(floor {SPEEDUP_FLOOR}x)"
            )
        if repetitive:
            largest_batchable = questions
            if size == max(SIZES):
                trend(
                    "e22_oracle_batching",
                    median_s=batched_ms / 1000,
                    speedup=speedup,
                )
        rows.append(
            [
                size,
                distinct,
                f"{sequential_ms:.2f}",
                f"{batched_ms:.2f}",
                f"{speedup:.0f}x",
                "yes" if repetitive and size >= GATE_MIN_QUESTIONS else "-",
            ]
        )
    table = render_table(
        [
            "questions",
            "distinct",
            "sequential ask ms",
            "ask_many ms",
            "speedup",
            "gated",
        ],
        rows,
        title=(
            "E22 — membership-question workloads: sequential QueryOracle"
            ".ask vs mask-native ask_many (one compile + one evaluation "
            "per distinct question; responses always identical; gate: "
            f"≥{SPEEDUP_FLOOR:.0f}x on repetitive workloads "
            f"≥{GATE_MIN_QUESTIONS} questions)"
        ),
    )
    report("e22_oracle_batching", table)

    # pytest-benchmark on the batched path over the largest workload.
    benchmark(QueryOracle(target).ask_many, largest_batchable)
