"""E17 — §6 (future work, implemented): PAC learning from random examples.

"We plan to investigate Probably Approximately Correct learning: we use
randomly-generated membership questions to learn a query with a certain
probability of error."

Measured: generalization error of the consistency learner over the full
two-variable role-preserving class as the random sample grows, against the
classic (1/ε)(ln|H| + ln 1/δ) bound — plus the contrast with the paper's
exact learners, which need *chosen* (not random) questions.
"""

from __future__ import annotations

import random
import statistics

from repro.analysis import render_table
from repro.core.generators import enumerate_role_preserving
from repro.learning.pac import (
    estimate_error,
    pac_learn,
    pac_sample_bound,
    random_object_sampler,
)

SAMPLES = (1, 4, 16, 64, 256)


def test_e17_pac_error_curve(report, benchmark):
    hypotheses = enumerate_role_preserving(2)
    sampler = random_object_sampler(2)
    rng = random.Random(17000)
    rows = []
    errors_by_m = {}
    for m in SAMPLES:
        errors, survivors = [], []
        for t_idx in range(len(hypotheses)):
            target = hypotheses[t_idx]
            result = pac_learn(target, hypotheses, sampler, m, rng)
            errors.append(
                estimate_error(result.query, target, sampler, 1500, rng)
            )
            survivors.append(result.consistent_hypotheses)
        errors_by_m[m] = statistics.mean(errors)
        rows.append(
            [
                m,
                f"{statistics.mean(errors):.4f}",
                f"{max(errors):.4f}",
                f"{statistics.mean(survivors):.1f}",
            ]
        )
    bound = pac_sample_bound(len(hypotheses), epsilon=0.05, delta=0.1)
    table = render_table(
        ["m (random examples)", "mean error", "max error",
         "consistent hypotheses left"],
        rows,
        title=(
            "E17 / §6 — PAC consistency learning over the 11-query "
            "two-variable class (error under the sampling distribution)"
        ),
    )
    table += (
        f"\nclassic bound for ε=0.05, δ=0.1: m ≥ {bound} — measured error "
        f"at m=64 is already {errors_by_m[64]:.4f}"
    )
    report("e17_pac", table)
    assert errors_by_m[256] <= errors_by_m[1]
    assert errors_by_m[256] < 0.05

    benchmark(
        lambda: pac_learn(
            hypotheses[5], hypotheses, sampler, 64, random.Random(1)
        )
    )
