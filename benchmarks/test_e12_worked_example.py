"""E12 — §3.2.2's worked lattice walk, replayed end to end.

Learn the six-variable running query and check every artifact the paper
narrates: the head variables, the two bodies of x5 and one of x6, the five
terminal distinguishing tuples, and the exact normalized query.
"""

from __future__ import annotations

from repro.analysis import render_kv
from repro.core import tuples as bt
from repro.core.generators import paper_running_query
from repro.core.normalize import canonicalize
from repro.learning import RolePreservingLearner
from repro.oracle import CountingOracle, QueryOracle

PAPER_TUPLES = {"110011", "100110", "111001", "011011", "011110"}


def test_e12_worked_example(report, benchmark):
    target = paper_running_query()
    oracle = CountingOracle(QueryOracle(target))
    result = RolePreservingLearner(oracle).learn()

    assert canonicalize(result.query) == canonicalize(target)
    assert result.heads == {4, 5}
    assert set(result.bodies_per_head[4]) == {
        frozenset({0, 3}), frozenset({2, 3})
    }
    assert set(result.bodies_per_head[5]) == {frozenset({0, 1})}

    dominant = {
        bt.format_tuple(t, 6)
        for t in result.distinguishing_tuples
        if not any(
            bt.is_subset(t, o) and t != o
            for o in result.distinguishing_tuples
        )
    }
    assert dominant == PAPER_TUPLES

    text = render_kv(
        [
            ("target", target.shorthand()),
            ("learned", result.query.shorthand()),
            ("heads", "x5, x6"),
            ("bodies of x5", "{x1,x4}, {x3,x4}"),
            ("bodies of x6", "{x1,x2}"),
            ("distinguishing tuples", ", ".join(sorted(dominant))),
            ("paper's tuples", ", ".join(sorted(PAPER_TUPLES))),
            ("questions asked", oracle.questions_asked),
            ("max tuples per question", oracle.stats.max_tuples),
            ("exact identification", "yes"),
        ],
        title=(
            "E12 / §3.2.2 — the paper's worked lattice walk, replayed "
            "(terminal tuples must be {110011,100110,111001,011011,011110})"
        ),
    )
    report("e12_worked_example", text)

    benchmark(
        lambda: RolePreservingLearner(QueryOracle(target)).learn()
    )
