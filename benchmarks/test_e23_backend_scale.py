"""E23 — evaluation backends at scale: single bitmask index vs sharded
blocks vs SQL batch execution vs the pooled file-backed dbapi backend.

Not a paper experiment, but the measurement the `EvaluationBackend` seam
(DESIGN.md §2c) exists to answer: which backend serves an oracle-style
workload — build the evaluation structure, then label **every object of
the relation** for each query of the 8-query mixed workload — fastest as
the relation grows?

The single :class:`RelationIndex` historically paid two super-linear
costs at scale: building accumulates ``1 << position`` into
relation-width big-int bitsets (`O(W²)`-flavoured), and — before the
shared :func:`~repro.data.index.labels_of` helper — a full labeling pass
extracted ``W`` bits with ``O(W)`` shifts each.  Label extraction is
linear everywhere now, so only the build accumulation separates the
layouts and the sharded edge narrowed from the pre-linear-extraction
2.8-3.3x to a noisy 1.2-1.9x band whose low edge touches parity.  The
sharded backend bounds every bitset to ``shard_size`` bits, making the
build linear too; SQL runs the workload in SQLite round trips; the
``dbapi`` row (DESIGN.md §2i) runs the same round trips on a
*file-backed* SQLite URI through the bounded connection pool —
informational (trend entry ``e23_dbapi``), since disk and pool overhead
are machine-dependent.  Answers are asserted identical across all four
on every tier (the differential contract).

Acceptance gate: on the largest tier (≥ 10× the seed benchmark size)
the sharded backend's end-to-end throughput (build + labeling) must
stay within the parity floor below of the single index's — a guard
against a sharded-layer regression, not a speedup claim.  Sharding's
structural wins live elsewhere now: bounded bitset width, the worker
pool, and parallel ingest (E24's build gate) and the per-shard numpy
kernel (E26).
"""

from __future__ import annotations

import time

from repro.analysis import render_table
from repro.data import create_backend
from repro.data.chocolate import intro_query

SEED_STORE_BOXES = 400  # the seed E21 benchmark store size
SIZES = (4000, 20000, 40000)
SHARDED_SPEEDUP_FLOOR = 0.9  # parity guard; measured band is 1.2-1.9x

BACKENDS = (
    ("bitmask", {}),
    ("sharded", {}),  # DEFAULT_SHARD_SIZE blocks
    ("sql", {}),
    ("dbapi", {}),  # pooled + file-backed; uri= filled in per run
)


def _measure(backend, workload):
    """(build_ms, label_ms, labels): cold build + full-relation labeling.

    Both phases are taken best-of-two — ``refresh(force=True)`` rebuilds
    from scratch, and with linear label extraction the totals are
    build-dominated, so a one-off scheduler hiccup in either phase could
    otherwise flip the gate.  Answers come from the first labeling pass.
    """
    builds = []
    for _ in range(2):
        t0 = time.perf_counter()
        backend.refresh(force=True)
        builds.append((time.perf_counter() - t0) * 1000)
    build_ms = min(builds)
    passes = []
    labels = None
    for attempt in range(2):
        t0 = time.perf_counter()
        run = [backend.matches_many(q) for q in workload]
        passes.append((time.perf_counter() - t0) * 1000)
        if labels is None:
            labels = run
    return build_ms, min(passes), labels


def test_e23_backend_scaling(
    report,
    trend,
    benchmark,
    storefront_vocab,
    store_factory,
    engine_workload,
    tmp_path,
):
    rows = []
    sharded_backend = None
    for size in SIZES:
        store = store_factory(size)
        timings = {}
        reference_labels = None
        for name, options in BACKENDS:
            if name == "dbapi":
                # The pooled external-database row (DESIGN.md §2i) runs
                # against a file-backed SQLite URI, not shared memory —
                # the deployment-shaped configuration.
                options = dict(
                    options, uri=f"file:{tmp_path}/e23-{size}.sqlite"
                )
            backend = create_backend(
                name, store, storefront_vocab, **options
            )
            build_ms, label_ms, labels = _measure(backend, engine_workload)
            if reference_labels is None:
                reference_labels = labels
            # Identical answers on identical state, whatever the backend.
            assert labels == reference_labels, name
            timings[name] = (build_ms, label_ms)
            if name == "sharded":
                sharded_backend = backend
            elif name == "dbapi":
                backend.close()

        single_total = sum(timings["bitmask"])
        sharded_total = sum(timings["sharded"])
        sharded_speedup = single_total / sharded_total
        # The gate applies to the largest tier (well beyond 10x the seed
        # benchmark size); smaller tiers chart the crossover region.
        if size == max(SIZES):
            trend(
                "e23_backend_scale_sharded",
                median_s=sharded_total / 1000,
                speedup=sharded_speedup,
            )
            # Informational: the pooled file-backed dbapi row, relative
            # to the single index (required:false in the baseline band —
            # disk + pool overhead is machine-dependent, no gate).
            dbapi_total = sum(timings["dbapi"])
            trend(
                "e23_dbapi",
                median_s=dbapi_total / 1000,
                speedup=single_total / dbapi_total,
            )
            assert size >= 10 * SEED_STORE_BOXES
            assert sharded_speedup >= SHARDED_SPEEDUP_FLOOR, (
                f"sharded backend only {sharded_speedup:.1f}x faster than the "
                f"single index at {size} boxes "
                f"(floor {SHARDED_SPEEDUP_FLOOR}x)"
            )
        answers = sum(reference_labels[0])
        rows.append(
            [
                size,
                answers,
                f"{timings['bitmask'][0]:.1f}",
                f"{timings['bitmask'][1]:.1f}",
                f"{timings['sharded'][0]:.1f}",
                f"{timings['sharded'][1]:.1f}",
                f"{timings['sql'][0]:.1f}",
                f"{timings['sql'][1]:.1f}",
                f"{timings['dbapi'][0]:.1f}",
                f"{timings['dbapi'][1]:.1f}",
                f"{sharded_speedup:.1f}x",
            ]
        )
    table = render_table(
        [
            "boxes",
            "answers(q0)",
            "single build ms",
            "single label ms",
            "sharded build ms",
            "sharded label ms",
            "sql build ms",
            "sql label ms",
            "dbapi build ms",
            "dbapi label ms",
            "sharded speedup",
        ],
        rows,
        title=(
            "E23 — backend throughput on the oracle workload (cold build + "
            "full-relation labeling of the 8-query mix; answers identical "
            "across backends; speedup = single-index total / sharded total)"
        ),
    )
    report("e23_backend_scale", table)

    # pytest-benchmark on the warm sharded labeling path, largest store.
    benchmark(sharded_backend.matches_many, intro_query())
