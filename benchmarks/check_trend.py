#!/usr/bin/env python
"""Perf-trend regression gate: diff BENCH_e2x.json against a baseline band.

Usage::

    python benchmarks/check_trend.py [CURRENT] [BASELINE]

defaults: ``benchmarks/out/BENCH_e2x.json`` (written by every benchmark
session, see ``benchmarks/conftest.py``) vs the committed
``benchmarks/results/BENCH_baseline.json``.

The baseline pins a *band*, not a point: raw medians vary wildly across
machines, but the explicit speedup records (warm-vs-cold, batched
vs sequential, sharded vs whole-relation…) are dimensionless and stable,
so each baseline entry carries ``min_speedup`` — the floor below which a
run is a regression — derived from the committed result tables with
generous tolerance under the per-experiment gates.  Entries marked
``"required": false`` may be absent from the current run (benchmarks that
self-skip, e.g. the 4-worker gate below 4 cores) but still fail when
present-and-regressed.

Exit status: 0 clean, 1 regression(s) found, 2 usage/IO error.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_CURRENT = Path(__file__).parent / "out" / "BENCH_e2x.json"
DEFAULT_BASELINE = Path(__file__).parent / "results" / "BENCH_baseline.json"


def compare(current: dict, baseline: dict) -> list[str]:
    """Return one message per violated baseline entry (empty = clean)."""
    problems: list[str] = []
    for name, band in sorted(baseline.items()):
        floor = band.get("min_speedup")
        if floor is None:
            continue  # informational entry, nothing to gate
        entry = current.get(name)
        speedup = entry.get("speedup") if isinstance(entry, dict) else None
        if speedup is None:
            if band.get("required", True):
                problems.append(
                    f"{name}: missing from the current run "
                    f"(baseline requires speedup >= {floor}x)"
                )
            continue
        if speedup < floor:
            problems.append(
                f"{name}: speedup regressed to {speedup:.2f}x "
                f"(baseline floor {floor}x)"
            )
    return problems


def main(argv: list[str]) -> int:
    current_path = Path(argv[1]) if len(argv) > 1 else DEFAULT_CURRENT
    baseline_path = Path(argv[2]) if len(argv) > 2 else DEFAULT_BASELINE
    try:
        current = json.loads(current_path.read_text())
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"check_trend: {error}", file=sys.stderr)
        return 2
    problems = compare(current, baseline)
    checked = sum(1 for band in baseline.values() if "min_speedup" in band)
    if problems:
        for problem in problems:
            print(f"REGRESSION {problem}")
        return 1
    print(
        f"perf trend clean: {checked} speedup band(s) of "
        f"{baseline_path.name} hold in {current_path.name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
