"""E6 — Lemma 3.4: with at most c tuples per question, learning existential
expressions takes Ω(n²/c²) questions.

The head-pair learner realizes the lemma's optimal strategy (only class-2
tuples are informative; each non-answer kills C(c,2)-ish pairs).  We measure
its worst case over head-pair placements for each (n, c) and compare with
the n²/c² prediction; doubling c should quarter the count.
"""

from __future__ import annotations

from itertools import combinations

from repro.analysis import render_table
from repro.core.generators import head_pair_query
from repro.learning import HeadPairLearner
from repro.oracle import QueryOracle


def _worst_case(n: int, c: int) -> int:
    worst = 0
    for i, j in combinations(range(n), 2):
        learner = HeadPairLearner(
            QueryOracle(head_pair_query(n, i, j)), max_tuples=c
        )
        pair = learner.learn()
        assert set(pair) == {i, j}
        worst = max(worst, learner.questions_asked)
    return worst


def test_e6_question_count_vs_tuple_budget(report, benchmark):
    rows = []
    worst: dict[tuple[int, int], int] = {}
    for n in (8, 16, 24):
        for c in (4, 8):
            worst[(n, c)] = _worst_case(n, c)
            rows.append(
                [n, c, worst[(n, c)], f"{n * n / (c * c):.0f}"]
            )
    table = render_table(
        ["n", "c (tuples/question)", "worst-case questions", "n²/c²"],
        rows,
        title=(
            "E6 / Lemma 3.4 — constant-tuple questions force Ω(n²/c²) "
            "(paper: Ω(n²) for constant c)"
        ),
    )
    report("e6_constant_tuples", table)
    # The bound is asymptotic: the O(c²) pinpointing tail dominates at
    # small n, so compare budgets only once n >> c.
    for n in (16, 24):
        assert worst[(n, 4)] > worst[(n, 8)], (n, worst)
    # quadratic growth in n at fixed c
    assert worst[(24, 4)] >= 4 * worst[(8, 4)]

    benchmark(_worst_case, 12, 4)
