"""E13 — §2.1.2's interactivity requirement: question generation and
learning run in polynomial time.

pytest-benchmark timings for the operations a DataPlay-style UI performs
per interaction: building each question shape, evaluating a query over an
object, one full learning session, one verification session, and the
Boolean→data synthesis bridge — plus the batch bitmask engine paths
(index build, warm batch execution, bulk labeling) at 10× the seed scan
size.
"""

from __future__ import annotations

import random

from repro.core import tuples as bt
from repro.core.generators import paper_running_query, random_qhorn1
from repro.core.tuples import Question
from repro.data.chocolate import random_store, storefront_vocabulary
from repro.learning import Qhorn1Learner
from repro.learning.questions import matrix_question, universal_head_question
from repro.oracle import QueryOracle
from repro.verification import build_verification_set, verify_query

N = 64


def test_e13_question_generation_head(benchmark):
    benchmark(universal_head_question, N, 17)


def test_e13_question_generation_matrix(benchmark):
    benchmark(matrix_question, N, list(range(N)))


def test_e13_query_evaluation(benchmark):
    rng = random.Random(5)
    query = random_qhorn1(N, rng)
    obj = Question.of(
        N, [rng.randrange(1 << N) | bt.all_true(N) >> 1 for _ in range(16)]
    )
    benchmark(query.evaluate, obj)


def test_e13_full_learning_session(benchmark):
    rng = random.Random(6)
    target = random_qhorn1(48, rng)

    benchmark(lambda: Qhorn1Learner(QueryOracle(target)).learn())


def test_e13_verification_session(benchmark):
    query = paper_running_query()

    def run():
        vs = build_verification_set(query)
        outcome = verify_query(query, QueryOracle(query))
        assert outcome.verified
        return vs

    benchmark(run)


def test_e13_data_synthesis(benchmark):
    vocab = storefront_vocabulary()
    question = Question.of(4, range(16))
    benchmark(vocab.synthesize_object, question)


def test_e13_engine_scan(benchmark):
    from repro.data import QueryEngine
    from repro.data.chocolate import intro_query

    store = random_store(200, random.Random(9))
    engine = QueryEngine(store, storefront_vocabulary())
    benchmark(engine.execute, intro_query())


def test_e13_index_build(benchmark, storefront_vocab, store_factory):
    from repro.data import RelationIndex

    store = store_factory(2000)  # 10x the seed per-object scan
    benchmark(lambda: RelationIndex(store, storefront_vocab))


def test_e13_engine_batch_scan(benchmark, storefront_vocab, store_factory):
    from repro.data import QueryEngine
    from repro.data.chocolate import intro_query

    engine = QueryEngine(store_factory(2000), storefront_vocab)
    engine.index  # build outside the timed region: warm batch path
    benchmark(engine.execute_batch, intro_query())


def test_e13_engine_matches_many(benchmark, storefront_vocab, store_factory):
    from repro.data import QueryEngine
    from repro.data.chocolate import intro_query

    engine = QueryEngine(store_factory(2000), storefront_vocab)
    engine.index
    benchmark(engine.matches_many, intro_query())


def test_e13_batch_workload(
    benchmark, storefront_vocab, store_factory, engine_workload
):
    from repro.data import QueryEngine

    engine = QueryEngine(store_factory(2000), storefront_vocab)
    engine.index

    def run():
        return [len(engine.execute_batch(q)) for q in engine_workload]

    benchmark(run)
