"""E18 — ablations of the design choices the paper calls out.

Three switches, each corresponding to a sentence in the paper:

* **Pruning strategy** (§3.2.2): "we asked O(n) questions to determine
  which tuples to safely prune. We can do better … O(lg n) questions for
  each tuple we need to keep" — binary-search pruning vs the linear scan.
* **Guarantee-closure shortcut** (§3.2.2's final optimization): recognizing
  a frontier tuple as a known guarantee clause saves the question and the
  search of its dominated downset.
* **Shared-body shortcut** (Lemma 3.2): "For each additional head variable
  h'i that shares Bi, we require at most 1·lg n questions" — searching the
  known bodies first vs re-deriving every body with FindAll.
"""

from __future__ import annotations

import random
import statistics

from repro.analysis import render_table
from repro.core.generators import random_role_preserving
from repro.core.normalize import canonicalize
from repro.core.query import QhornQuery
from repro.learning import Qhorn1Learner, RolePreservingLearner
from repro.oracle import CountingOracle, QueryOracle


def _mean(fn, targets) -> float:
    counts = []
    for t in targets:
        oracle = CountingOracle(QueryOracle(t))
        result = fn(oracle).learn()
        assert canonicalize(result.query) == canonicalize(t)
        counts.append(oracle.questions_asked)
    return statistics.mean(counts)


def test_e18_prune_strategy(report, benchmark):
    rows = []
    ratios = {}
    for n in (8, 12, 16, 20):
        rng = random.Random(18000 + n)
        targets = [
            random_role_preserving(n, rng, theta=1, n_conjunctions=3)
            for _ in range(8)
        ]
        binary = _mean(lambda o: RolePreservingLearner(o), targets)
        linear = _mean(
            lambda o: RolePreservingLearner(o, prune="linear"), targets
        )
        ratios[n] = linear / binary
        rows.append(
            [n, f"{binary:.1f}", f"{linear:.1f}", f"{linear / binary:.2f}x"]
        )
    table = render_table(
        ["n", "binary-search prune", "linear prune", "overhead"],
        rows,
        title=(
            "E18a / §3.2.2 — Alg. 8's binary-search pruning vs the "
            "remove-one-at-a-time scan (advantage is asymptotic: the "
            "crossover sits around n≈8)"
        ),
    )
    report("e18a_prune_strategy", table)
    # the paper's lg-factor advantage must show and widen as n grows
    assert ratios[20] > ratios[8]
    assert ratios[16] > 1.1 and ratios[20] > 1.2

    rng = random.Random(4)
    t = random_role_preserving(9, rng, theta=1)
    benchmark(
        lambda: RolePreservingLearner(
            QueryOracle(t), prune="linear"
        ).learn()
    )


def test_e18_guarantee_shortcut(report, benchmark):
    rows = []
    for n in (6, 9, 12):
        rng = random.Random(18100 + n)
        targets = [
            random_role_preserving(
                n, rng, n_heads=2, theta=2, n_conjunctions=2,
                allow_bodyless=False,
            )
            for _ in range(8)
        ]
        with_opt = _mean(lambda o: RolePreservingLearner(o), targets)
        without = _mean(
            lambda o: RolePreservingLearner(o, use_guarantee_shortcut=False),
            targets,
        )
        rows.append(
            [n, f"{with_opt:.1f}", f"{without:.1f}",
             f"{without - with_opt:.1f}"]
        )
        assert without >= with_opt
    table = render_table(
        ["n", "with shortcut", "without", "questions saved"],
        rows,
        title=(
            "E18b / §3.2.2 — recognizing guarantee-clause tuples saves the "
            "downset search (the paper's final optimization)"
        ),
    )
    report("e18b_guarantee_shortcut", table)

    rng = random.Random(5)
    t = random_role_preserving(9, rng, n_heads=2, theta=2)
    benchmark(
        lambda: RolePreservingLearner(
            QueryOracle(t), use_guarantee_shortcut=False
        ).learn()
    )


def test_e18_shared_body_shortcut(report, benchmark):
    """Targets with one body shared by many heads maximize Lemma 3.2's
    claimed saving."""
    rows = []
    for n_heads in (2, 4, 6):
        n = 4 + n_heads
        body = list(range(4))
        target = QhornQuery.build(
            n, universals=[(body, 4 + i) for i in range(n_heads)]
        )
        with_opt = CountingOracle(QueryOracle(target))
        r1 = Qhorn1Learner(with_opt).learn()
        without = CountingOracle(QueryOracle(target))
        r2 = Qhorn1Learner(
            without, use_shared_body_shortcut=False
        ).learn()
        assert canonicalize(r1.query) == canonicalize(r2.query)
        rows.append(
            [
                n_heads,
                with_opt.questions_asked,
                without.questions_asked,
                f"{without.questions_asked / with_opt.questions_asked:.2f}x",
            ]
        )
        assert without.questions_asked >= with_opt.questions_asked
    table = render_table(
        ["heads sharing one body", "with shortcut", "without", "overhead"],
        rows,
        title=(
            "E18c / Lemma 3.2 — binary-searching known bodies for each "
            "additional head vs re-deriving the body"
        ),
    )
    report("e18c_shared_body_shortcut", table)

    shared = QhornQuery.build(
        8, universals=[(list(range(4)), 4 + i) for i in range(4)]
    )
    benchmark(
        lambda: Qhorn1Learner(
            QueryOracle(shared), use_shared_body_shortcut=False
        ).learn()
    )
