"""E9 — Fig. 6 + §4.2: the verification set of the paper's worked example.

Regenerates the complete verification set of the six-variable running query
and checks the questions §4.2 spells out literally (A1's five tuples, the
A2/N2 universal questions, the A3 search-root question, A4).
"""

from __future__ import annotations

from repro.analysis import render_kv
from repro.core import tuples as bt
from repro.core.generators import paper_running_query
from repro.oracle import QueryOracle
from repro.verification import Verifier, build_verification_set


def _strs(question):
    return {bt.format_tuple(t, question.n) for t in question.tuples}


def test_e9_fig6_verification_set(report, benchmark):
    query = paper_running_query()
    vs = build_verification_set(query)

    # §4.2 A1: the five dominant existential distinguishing tuples.
    (a1,) = vs.by_kind("A1")
    assert _strs(a1.question) == {
        "111001", "011110", "110011", "011011", "100110"
    }
    # §4.2 N2: {111111, 100101} etc.
    n2 = {frozenset(_strs(q.question)) for q in vs.by_kind("N2")}
    assert frozenset({"111111", "100101"}) in n2
    # §4.2 A3: {111111, 010101, 111001} for body x3x4 inside ∃x2x3x4x5.
    a3 = {frozenset(_strs(q.question)) for q in vs.by_kind("A3")}
    assert frozenset({"111111", "010101", "111001"}) in a3

    outcome = Verifier(query).run(QueryOracle(query))
    assert outcome.verified

    counts = vs.counts()
    lines = [
        render_kv(
            sorted(counts.items()) + [("total", vs.size)],
            title=(
                "E9 / Fig. 6 + §4.2 — verification set of the running "
                "query (paper shows A1=1, N1=4, A2=3, N2=3, A4=1 and one "
                "A3 pair; our builder emits every dominating (C, h) pair "
                "for A3, hence 4)"
            ),
        ),
        "",
        vs.format(),
    ]
    report("e9_fig6_verification_set", "\n".join(lines))
    assert counts == {"A1": 1, "N1": 4, "A2": 3, "N2": 3, "A3": 4, "A4": 1}

    benchmark(build_verification_set, query)
