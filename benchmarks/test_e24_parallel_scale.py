"""E24 — process-parallel shard evaluation: speedup vs worker count.

Not a paper experiment, but the measurement the `repro.parallel`
subsystem (DESIGN.md §2d) exists to answer: once shard state lives in
persistent worker processes, how does the steady-state **evaluation**
workload — full-relation labeling of the 8-query mix, the oracle-style
pass of E23 — scale with workers?

The phases are timed separately because they parallelize differently:

* **build** (coordinator-side shard construction) is identical in every
  mode — it happens once per relation version;
* **ship** (first pool call: fork workers + broadcast the built shard
  payloads) is a one-off; per evaluation only the compiled query crosses
  outward and extracted label lists come back;
* **labeling** (warm, best-of-two passes) is the per-query hot path and
  the thing the workers actually parallelize — kernel *and* label
  extraction run worker-side.

Answers are asserted identical to the serial sharded backend on every
worker count (the §2d unobservability contract).  The labeling rows are
**informational**: linear ``labels_of`` extraction made the serial
8-query sweep sub-5 ms at this size, so the fixed per-query pipe round
trip (plus the bool-list return wire) can no longer be amortized —
process parallelism pays in the *build* phase now, which is where the
hard gate lives (``test_e24_parallel_ingest_build``, raw ≥ 1.5x built
on ≥ 4-core runners).  What the labeling rows still enforce is an
overhead *ceiling*: the pooled path must stay within ``10x`` of the
serial sweep, which catches pathological regressions (e.g. a backend
that re-ships shard state per query) on any machine.
"""

from __future__ import annotations

import os
import time

from repro.analysis import render_table
from repro.data import create_backend
from repro.data.chocolate import intro_query

SIZE = 40000
WORKER_COUNTS = (1, 2, 4)
GATE_WORKERS = 4
OVERHEAD_CEILING = 10.0
LABEL_PASSES = 2


def _label_pass(backend, workload):
    """One full-relation labeling sweep; returns (elapsed_ms, labels)."""
    t0 = time.perf_counter()
    labels = [backend.matches_many(q) for q in workload]
    return (time.perf_counter() - t0) * 1000, labels


def _measure_labeling(backend, workload):
    """Best-of-N warm labeling time plus the first pass's labels."""
    times, labels = [], None
    for _ in range(LABEL_PASSES):
        elapsed, run = _label_pass(backend, workload)
        times.append(elapsed)
        if labels is None:
            labels = run
    return min(times), labels


def test_e24_parallel_scaling(
    report, trend, benchmark, storefront_vocab, store_factory, engine_workload
):
    store = store_factory(SIZE)
    cpus = os.cpu_count() or 1

    serial = create_backend("sharded", store, storefront_vocab)
    t0 = time.perf_counter()
    serial.refresh(force=True)
    build_ms = (time.perf_counter() - t0) * 1000
    serial_ms, reference = _measure_labeling(serial, engine_workload)

    rows = [["serial", f"{build_ms:.1f}", "-", f"{serial_ms:.1f}", "1.0x"]]
    gated_speedup = None
    last_backend = None
    for workers in WORKER_COUNTS:
        backend = create_backend(
            "sharded", store, storefront_vocab, processes=workers
        )
        t0 = time.perf_counter()
        backend.refresh(force=True)
        pool_build_ms = (time.perf_counter() - t0) * 1000
        # First call forks the workers and broadcasts the shard payloads.
        t0 = time.perf_counter()
        backend.matches_many(engine_workload[0])
        ship_ms = (time.perf_counter() - t0) * 1000
        label_ms, labels = _measure_labeling(backend, engine_workload)
        assert labels == reference, (
            f"{workers}-worker labels diverge from serial"  # §2d contract
        )
        speedup = serial_ms / label_ms if label_ms else float("inf")
        # Informational speedup, hard overhead *ceiling* (module
        # docstring): a pooled sweep an order of magnitude slower than
        # serial means the parallel layer regressed pathologically
        # (e.g. shard state re-shipped per query), on any machine.
        assert label_ms <= serial_ms * OVERHEAD_CEILING, (
            f"{workers}-worker labeling took {label_ms:.1f}ms vs "
            f"{serial_ms:.1f}ms serial at {SIZE} objects — over the "
            f"{OVERHEAD_CEILING:.0f}x pool-overhead ceiling"
        )
        if workers == GATE_WORKERS:
            gated_speedup = speedup
        rows.append(
            [
                f"{workers} worker(s)",
                f"{pool_build_ms:.1f}",
                f"{ship_ms:.1f}",
                f"{label_ms:.1f}",
                f"{speedup:.1f}x",
            ]
        )
        trend(
            f"e24_parallel_{workers}w",
            median_s=label_ms / 1000,
            speedup=speedup,
        )
        if workers == max(WORKER_COUNTS):
            last_backend = backend
        else:
            backend.close()

    table = render_table(
        [
            "mode",
            "build ms",
            "fork+ship ms",
            f"label ms ({len(engine_workload)}q)",
            "speedup",
        ],
        rows,
        title=(
            f"E24 — process-parallel shard evaluation at {SIZE} boxes "
            f"(full-relation labeling of the 8-query mix, warm best-of-"
            f"{LABEL_PASSES}; answers identical to serial on every row; "
            f"speedups informational — linear labels_of made the serial "
            f"sweep too fast to amortize the pipe, the hard gate moved "
            f"to the build split below; ceiling: pooled ≤ "
            f"{OVERHEAD_CEILING:.0f}x serial — this run: {cpus} cpu)"
        ),
    )
    report("e24_parallel_scale", table)
    assert gated_speedup is not None

    # pytest-benchmark on the warm pooled labeling path, then clean up.
    try:
        benchmark(last_backend.matches_many, intro_query())
    finally:
        last_backend.close()


BUILD_PASSES = 2
BUILD_SPEEDUP_FLOOR = 1.5
BUILD_SIZE = 40000


def _continuous_store(count, seed):
    """A store whose abstraction is genuinely expensive: four continuous
    attributes under eight numeric propositions, so every row projects
    to a distinct memo key and ``Vocabulary.mask_sets``'s distinct-row
    memo never hits — the regime worker-side (parallel) ingest exists
    for.  The storefront's four booleans are the opposite extreme: ~16
    distinct projections make the coordinator build nearly free, so
    there is nothing left to parallelize.  A threshold and a ``Between``
    band on the same attribute are independent (all four truth
    combinations have witnesses), so each attribute carries two
    propositions — abstraction cost without extra wire cost.
    """
    import random

    from repro.data.propositions import (
        Between,
        GreaterThan,
        LessThan,
        Vocabulary,
    )
    from repro.data.relation import NestedRelation
    from repro.data.schema import Attribute, FlatSchema, NestedSchema

    flat = FlatSchema(
        name="lots",
        attributes=(
            Attribute.real("price"),
            Attribute.real("weightG"),
            Attribute.real("cocoaPct"),
            Attribute.real("rating"),
        ),
    )
    vocab = Vocabulary(
        flat,
        [
            LessThan("price", 6.0),
            Between("price", 3.0, 9.0),
            GreaterThan("weightG", 55.0),
            Between("weightG", 35.0, 75.0),
            GreaterThan("cocoaPct", 0.65),
            Between("cocoaPct", 0.45, 0.85),
            LessThan("rating", 3.0),
            Between("rating", 2.0, 4.0),
        ],
    )
    relation = NestedRelation(NestedSchema(name="lot_objects", embedded=flat))
    rng = random.Random(seed)
    uniform = rng.uniform
    for i in range(count):
        relation.add_object(
            f"lot{i}",
            rows=[
                {
                    "price": uniform(1.0, 12.0),
                    "weightG": uniform(20.0, 90.0),
                    "cocoaPct": uniform(0.3, 1.0),
                    "rating": uniform(1.0, 5.0),
                }
                for _ in range(rng.randrange(3, 7))
            ],
        )
    return relation, vocab


def _time_to_first_answer(store, vocab, ingest, query):
    """Cold build with a fresh pool: refresh (coordinator-side work) plus
    the first evaluation (fork + ship + worker-side work), in ms."""
    backend = create_backend(
        "sharded", store, vocab, processes=GATE_WORKERS, ingest=ingest
    )
    try:
        t0 = time.perf_counter()
        backend.refresh(force=True)
        build_ms = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        bits = backend.matching_bits(query)
        ship_ms = (time.perf_counter() - t0) * 1000
    finally:
        backend.close()
    return build_ms, ship_ms, bits


def test_e24_parallel_ingest_build(report, trend):
    """The build-phase split of the two ingest modes (DESIGN.md §2d/§2g):

    * ``ingest="built"`` — the coordinator abstracts every object's rows
      single-core, then ships the built shard payloads;
    * ``ingest="raw"`` (the pool default) — the coordinator ships
      projected raw shard rows and the vocabulary, and the workers run
      the abstraction on all cores.

    Measured on the continuous-attribute store (see
    :func:`_continuous_store`), cold to first answer with a fresh pool
    each pass (fork cost lands on both modes equally), best-of-
    ``BUILD_PASSES``; answers are asserted identical.  The gate —
    parallel ingest ≥ 1.5x the coordinator build — applies where the
    machine can deliver it (``os.cpu_count() >= 4``).
    """
    from repro.core.query import QhornQuery

    store, vocab = _continuous_store(BUILD_SIZE, seed=2400)
    cpus = os.cpu_count() or 1
    query = QhornQuery.build(
        vocab.n, universals=[((0,), 2), ((1, 3), 6)], existentials=[(4, 7)]
    ).compile()
    reference = create_backend("sharded", store, vocab).matching_bits(query)

    totals: dict[str, float] = {}
    rows = []
    for ingest in ("built", "raw"):
        best = None
        for _ in range(BUILD_PASSES):
            build_ms, ship_ms, bits = _time_to_first_answer(
                store, vocab, ingest, query
            )
            assert bits == reference, f"{ingest}-ingest answers diverge"
            if best is None or build_ms + ship_ms < sum(best):
                best = (build_ms, ship_ms)
        totals[ingest] = sum(best)
        rows.append(
            [
                f"{ingest} ingest",
                f"{best[0]:.1f}",
                f"{best[1]:.1f}",
                f"{totals[ingest]:.1f}",
            ]
        )

    speedup = totals["built"] / totals["raw"] if totals["raw"] else 0.0
    gate = "-"
    if cpus >= GATE_WORKERS:
        gate = "yes"
        assert speedup >= BUILD_SPEEDUP_FLOOR, (
            f"raw (worker-side) ingest only {speedup:.1f}x the coordinator "
            f"build at {BUILD_SIZE} objects (floor {BUILD_SPEEDUP_FLOOR}x)"
        )
    else:
        gate = f"skipped ({cpus} cpu)"
    rows.append(["raw vs built", "-", "-", f"{speedup:.1f}x ({gate})"])
    trend("e24_parallel_build", speedup=speedup)

    table = render_table(
        ["mode", "coordinator ms", "fork+ship+first answer ms", "total ms"],
        rows,
        title=(
            f"E24 — ingest-mode build split at {BUILD_SIZE} objects with "
            f"continuous attributes (memo-defeating abstraction), "
            f"{GATE_WORKERS} workers (cold to first answer, best-of-"
            f"{BUILD_PASSES}; gate: raw ≥ {BUILD_SPEEDUP_FLOOR}x built "
            f"when the machine has ≥ {GATE_WORKERS} cores — this run: "
            f"{cpus})"
        ),
    )
    report("e24_parallel_ingest", table)
