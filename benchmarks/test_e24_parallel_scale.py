"""E24 — process-parallel shard evaluation: speedup vs worker count.

Not a paper experiment, but the measurement the `repro.parallel`
subsystem (DESIGN.md §2d) exists to answer: once shard state lives in
persistent worker processes, how does the steady-state **evaluation**
workload — full-relation labeling of the 8-query mix, the oracle-style
pass of E23 — scale with workers?

The phases are timed separately because they parallelize differently:

* **build** (coordinator-side shard construction) is identical in every
  mode — it happens once per relation version;
* **ship** (first pool call: fork workers + broadcast the built shard
  payloads) is a one-off; per evaluation only the compiled query crosses
  outward and extracted label lists come back;
* **labeling** (warm, best-of-two passes) is the per-query hot path and
  the thing the workers actually parallelize — kernel *and* label
  extraction run worker-side.

Answers are asserted identical to the serial sharded backend on every
worker count (the §2d unobservability contract); the speedup gate —
4 workers ≥ 2× the single-process labeling throughput at 40 000 objects
— is enforced wherever the machine can physically deliver it
(``os.cpu_count() >= 4``; the CI benchmark-smoke runners qualify).  On
smaller machines the table and trend entries still record the measured
ratio, and the equivalence assertions always run.
"""

from __future__ import annotations

import os
import time

from repro.analysis import render_table
from repro.data import create_backend
from repro.data.chocolate import intro_query

SIZE = 40000
WORKER_COUNTS = (1, 2, 4)
GATE_WORKERS = 4
SPEEDUP_FLOOR = 2.0
LABEL_PASSES = 2


def _label_pass(backend, workload):
    """One full-relation labeling sweep; returns (elapsed_ms, labels)."""
    t0 = time.perf_counter()
    labels = [backend.matches_many(q) for q in workload]
    return (time.perf_counter() - t0) * 1000, labels


def _measure_labeling(backend, workload):
    """Best-of-N warm labeling time plus the first pass's labels."""
    times, labels = [], None
    for _ in range(LABEL_PASSES):
        elapsed, run = _label_pass(backend, workload)
        times.append(elapsed)
        if labels is None:
            labels = run
    return min(times), labels


def test_e24_parallel_scaling(
    report, trend, benchmark, storefront_vocab, store_factory, engine_workload
):
    store = store_factory(SIZE)
    cpus = os.cpu_count() or 1

    serial = create_backend("sharded", store, storefront_vocab)
    t0 = time.perf_counter()
    serial.refresh(force=True)
    build_ms = (time.perf_counter() - t0) * 1000
    serial_ms, reference = _measure_labeling(serial, engine_workload)

    rows = [
        ["serial", f"{build_ms:.1f}", "-", f"{serial_ms:.1f}", "1.0x", "-"]
    ]
    gated_speedup = None
    last_backend = None
    for workers in WORKER_COUNTS:
        backend = create_backend(
            "sharded", store, storefront_vocab, processes=workers
        )
        t0 = time.perf_counter()
        backend.refresh(force=True)
        pool_build_ms = (time.perf_counter() - t0) * 1000
        # First call forks the workers and broadcasts the shard payloads.
        t0 = time.perf_counter()
        backend.matches_many(engine_workload[0])
        ship_ms = (time.perf_counter() - t0) * 1000
        label_ms, labels = _measure_labeling(backend, engine_workload)
        assert labels == reference, (
            f"{workers}-worker labels diverge from serial"  # §2d contract
        )
        speedup = serial_ms / label_ms if label_ms else float("inf")
        gate = "-"
        if workers == GATE_WORKERS:
            gated_speedup = speedup
            if cpus >= GATE_WORKERS:
                gate = "yes"
                assert speedup >= SPEEDUP_FLOOR, (
                    f"{workers}-worker labeling only {speedup:.1f}x the "
                    f"single-process pass at {SIZE} objects "
                    f"(floor {SPEEDUP_FLOOR}x)"
                )
            else:
                gate = f"skipped ({cpus} cpu)"
        rows.append(
            [
                f"{workers} worker(s)",
                f"{pool_build_ms:.1f}",
                f"{ship_ms:.1f}",
                f"{label_ms:.1f}",
                f"{speedup:.1f}x",
                gate,
            ]
        )
        trend(
            f"e24_parallel_{workers}w",
            median_s=label_ms / 1000,
            speedup=speedup,
        )
        if workers == max(WORKER_COUNTS):
            last_backend = backend
        else:
            backend.close()

    table = render_table(
        [
            "mode",
            "build ms",
            "fork+ship ms",
            f"label ms ({len(engine_workload)}q)",
            "speedup",
            "gated",
        ],
        rows,
        title=(
            f"E24 — process-parallel shard evaluation at {SIZE} boxes "
            f"(full-relation labeling of the 8-query mix, warm best-of-"
            f"{LABEL_PASSES}; answers identical to serial on every row; "
            f"gate: {GATE_WORKERS} workers ≥ {SPEEDUP_FLOOR:.0f}x when "
            f"the machine has ≥ {GATE_WORKERS} cores — this run: {cpus})"
        ),
    )
    report("e24_parallel_scale", table)
    assert gated_speedup is not None

    # pytest-benchmark on the warm pooled labeling path, then clean up.
    try:
        benchmark(last_backend.matches_many, intro_query())
    finally:
        last_backend.close()
