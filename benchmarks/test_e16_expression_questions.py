"""E16 — §6 (future work, implemented): richer question types.

"One possibility is to ask questions to directly determine how propositions
interact such as: 'do you think p1 and p2 both have to be satisfied by at
least one tuple?'"

Measured: the expression-question learner vs the membership-question
learner on identical targets.  Both question types carry one bit, so the
asymptotics match; the measurement shows membership questions are actually
*cheaper* in expectation — the lattice walk's multi-tuple questions cover
several conjunctions at once, while expression questions probe one
candidate expression each.
"""

from __future__ import annotations

import random
import statistics

from repro.analysis import render_table
from repro.core.generators import random_role_preserving
from repro.core.normalize import canonicalize
from repro.learning import RolePreservingLearner
from repro.learning.expression_learner import ExpressionLearner
from repro.oracle import CountingOracle, QueryOracle
from repro.oracle.expression import CountingExpressionOracle, ExpressionOracle

NS = (4, 6, 8, 10, 12)
SEEDS = 10


def test_e16_expression_vs_membership(report, benchmark):
    rows = []
    for n in NS:
        rng = random.Random(16000 + n)
        member, expression = [], []
        for _ in range(SEEDS):
            target = random_role_preserving(n, rng, theta=2)
            m_oracle = CountingOracle(QueryOracle(target))
            m_result = RolePreservingLearner(m_oracle).learn()
            assert canonicalize(m_result.query) == canonicalize(target)
            member.append(m_oracle.questions_asked)
            e_oracle = CountingExpressionOracle(ExpressionOracle(target))
            e_result = ExpressionLearner(e_oracle).learn()
            assert canonicalize(e_result.query) == canonicalize(target)
            expression.append(e_oracle.questions_asked)
        rows.append(
            [
                n,
                f"{statistics.mean(member):.1f}",
                f"{statistics.mean(expression):.1f}",
                f"{statistics.mean(expression) / statistics.mean(member):.2f}x",
            ]
        )
    table = render_table(
        ["n", "membership questions", "expression questions",
         "expression/membership"],
        rows,
        title=(
            "E16 / §6 — direct expression questions vs membership "
            "questions (both 1 bit; exactness preserved by both)"
        ),
    )
    table += (
        "\nfinding: richer-looking questions do not beat membership "
        "questions — each still yields one bit, and membership questions "
        "amortize over many expressions at once"
    )
    report("e16_expression_questions", table)

    def run_once():
        rng = random.Random(3)
        target = random_role_preserving(8, rng, theta=2)
        ExpressionLearner(ExpressionOracle(target)).learn()

    benchmark(run_once)
