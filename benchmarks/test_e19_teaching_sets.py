"""E19 — §5's Goldman–Kearns connection: verification sets as teaching sets.

"Verification sets are analogous to the teaching sequences of Goldman and
Kearns."  Measured on the full two-variable class: every Fig. 6
verification set eliminates all rival hypotheses (it *is* a teaching
sequence), and its size sits within a small factor of the exact minimum
teaching set.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core.generators import enumerate_role_preserving
from repro.verification.teaching import (
    distinguishes_all,
    greedy_teaching_set,
    teaching_set,
    verification_set_as_examples,
)


def test_e19_teaching_vs_verification(report, benchmark):
    hypotheses = enumerate_role_preserving(2)
    rows = []
    for target in sorted(hypotheses, key=lambda q: q.shorthand()):
        vs = verification_set_as_examples(target)
        assert distinguishes_all(vs, target, hypotheses)
        greedy = greedy_teaching_set(target, hypotheses)
        exact = teaching_set(target, hypotheses, max_size=len(greedy))
        assert exact is not None
        rows.append(
            [
                target.shorthand(),
                len(exact),
                len(greedy),
                len(vs),
                f"{len(vs) / max(1, len(exact)):.1f}x",
            ]
        )
    table = render_table(
        ["query", "teaching number", "greedy", "Fig. 6 set",
         "verification/teaching"],
        rows,
        title=(
            "E19 / §5 — Fig. 6 verification sets are teaching sequences; "
            "sizes vs the exact teaching number (two-variable class)"
        ),
    )
    report("e19_teaching_sets", table)
    # verification sets stay within 4x of the optimum on this class
    assert all(float(r[4][:-1]) <= 4.0 for r in rows)

    benchmark(
        lambda: greedy_teaching_set(hypotheses[5], hypotheses)
    )
