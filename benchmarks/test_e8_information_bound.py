"""E8 — Theorem 3.9 and §2's counting arguments, measured.

Three tables:

* the doubly exponential wall for unrestricted Boolean queries (§2);
* qhorn-1's 2^Θ(n lg n) size sandwich via Bell numbers (§2.1.3);
* Thm 3.9's Ω(nk) floor for learning k existential conjunctions, against
  the lattice learner's measured O(kn lg n) cost on k conjunctions placed
  at the lattice's widest level (where the bound is tight).
"""

from __future__ import annotations

import math
import random

from repro.analysis import (
    existential_bound_bits,
    existential_bound_closed_form,
    qhorn1_lower_bound_bits,
    qhorn1_upper_bound_bits,
    render_table,
    unrestricted_query_bits,
)
from repro.core.normalize import canonicalize
from repro.core.query import QhornQuery
from repro.learning import RolePreservingLearner
from repro.oracle import CountingOracle, QueryOracle


def test_e8_unrestricted_wall(report, benchmark):
    rows = [
        [n, f"2^{unrestricted_query_bits(n)}", unrestricted_query_bits(n)]
        for n in (2, 3, 4, 5, 10)
    ]
    table = render_table(
        ["n", "distinguishable queries", "questions needed (= 2^n)"],
        rows,
        title=(
            "E8a / §2 — unrestricted Boolean queries need doubly "
            "exponential counting (22^n queries, 2^n questions)"
        ),
    )
    report("e8a_unrestricted_wall", table)

    benchmark(unrestricted_query_bits, 24)


def test_e8_qhorn1_size_sandwich(report, benchmark):
    rows = []
    for n in (4, 8, 16, 32, 64):
        lo = qhorn1_lower_bound_bits(n)
        hi = qhorn1_upper_bound_bits(n)
        nlg = n * math.log2(n)
        rows.append(
            [n, f"{lo:.1f}", f"{hi:.1f}", f"{nlg:.1f}",
             f"{lo / nlg:.2f}..{hi / nlg:.2f}"]
        )
    table = render_table(
        ["n", "lg B_n (floor)", "2n + lg B_n (ceil)", "n lg n",
         "ratio window"],
        rows,
        title=(
            "E8b / §2.1.3 — |qhorn-1| = 2^Θ(n lg n): Bell-number sandwich"
        ),
    )
    report("e8b_qhorn1_size", table)

    from repro.analysis.information import bell_number

    def uncached_bell():
        bell_number.cache_clear()
        return bell_number(64)

    benchmark(uncached_bell)


def _middle_level_target(n: int, k: int, rng: random.Random) -> QhornQuery:
    """k incomparable conjunctions at level n/2 — Thm 3.9's hard spot."""
    half = n // 2
    chosen: set[frozenset[int]] = set()
    while len(chosen) < k:
        chosen.add(frozenset(rng.sample(range(n), half)))
    return QhornQuery.build(n, existentials=[sorted(c) for c in chosen])


def test_e8_existential_floor_vs_measured(report, benchmark):
    rows = []
    rng = random.Random(8000)
    for n, k in ((8, 2), (8, 4), (10, 4), (12, 6)):
        floor_exact = existential_bound_bits(n, k)
        floor_closed = existential_bound_closed_form(n, k)
        measured = []
        for _ in range(5):
            target = _middle_level_target(n, k, rng)
            oracle = CountingOracle(QueryOracle(target))
            result = RolePreservingLearner(oracle).learn()
            assert canonicalize(result.query) == canonicalize(target)
            measured.append(oracle.questions_asked)
        mean = sum(measured) / len(measured)
        ceiling = k * n * math.log2(n)
        rows.append(
            [n, k, f"{floor_closed:.0f}", f"{floor_exact:.0f}",
             f"{mean:.0f}", f"{ceiling:.0f}"]
        )
        # the learner must respect the information floor and the paper's
        # O(kn lg n) ceiling (constant < 4 observed)
        assert mean >= floor_exact * 0.9
        assert mean <= 4 * ceiling
    table = render_table(
        ["n", "k", "nk/2 - k lg k", "lg C(C(n,n/2),k) (floor)",
         "measured questions", "kn lg n (paper ceiling)"],
        rows,
        title=(
            "E8c / Thm 3.9 — information floor vs measured lattice-learner "
            "cost for k middle-level conjunctions"
        ),
    )
    report("e8c_existential_bound", table)

    rng2 = random.Random(1)
    target = _middle_level_target(10, 4, rng2)
    benchmark(
        lambda: RolePreservingLearner(QueryOracle(target)).learn()
    )
