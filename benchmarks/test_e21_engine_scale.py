"""E21 — the database side at scale: per-object scan vs batch bitmask index
vs compiled SQL.

Not a paper experiment, but the measurement a database reader asks for:
executing a learned-query workload over growing nested relations.  Three
paths answer every query identically:

* the seed per-object evaluator (``QueryEngine.execute``), which
  re-abstracts every row through the vocabulary on every call;
* the batch bitmask path (``QueryEngine.execute_batch``), which builds a
  ``RelationIndex`` once and evaluates compiled queries over distinct
  masks with big-integer set algebra;
* the SQL compilation running on SQLite (spot-checked on one query).

E21 reports the per-object and batch timings for an 8-query workload, the
one-off index build cost, and the warm speedup.  The acceptance gate:
the batch path is ≥ 5× faster than the seed per-object path on a relation
at least 10× the seed benchmark size (4000 boxes vs the seed 400).
"""

from __future__ import annotations

import time

from repro.analysis import render_table
from repro.data import QueryEngine
from repro.data.chocolate import intro_query
from repro.data.sql import SqliteEngine

SEED_STORE_BOXES = 400  # the seed E21 benchmark store size
SIZES = (400, 1600, 4000)
SPEEDUP_FLOOR = 5.0


def test_e21_engine_scaling(
    report, trend, benchmark, storefront_vocab, store_factory, engine_workload
):
    rows = []
    engine = None
    for size in SIZES:
        store = store_factory(size)
        engine = QueryEngine(store, storefront_vocab)

        t0 = time.perf_counter()
        per_object = [
            sorted(o.key for o in engine.execute(q)) for q in engine_workload
        ]
        scan_ms = (time.perf_counter() - t0) * 1000

        t0 = time.perf_counter()
        engine.index  # one-off build, timed separately from execution
        build_ms = (time.perf_counter() - t0) * 1000

        t0 = time.perf_counter()
        batch = [
            sorted(o.key for o in engine.execute_batch(q))
            for q in engine_workload
        ]
        batch_ms = (time.perf_counter() - t0) * 1000

        assert batch == per_object  # identical answers, always

        with SqliteEngine(store, storefront_vocab) as db:
            t0 = time.perf_counter()
            via_sql = db.execute(intro_query())
            sql_ms = (time.perf_counter() - t0) * 1000
        assert sorted(via_sql) == batch[0]

        warm_speedup = scan_ms / batch_ms if batch_ms else float("inf")
        cold_speedup = scan_ms / (build_ms + batch_ms)
        if size == max(SIZES):
            trend(
                "e21_engine_scale_warm",
                median_s=batch_ms / 1000,
                speedup=warm_speedup,
            )
        if size >= 10 * SEED_STORE_BOXES:
            assert warm_speedup >= SPEEDUP_FLOOR, (
                f"batch path only {warm_speedup:.1f}x faster than per-object "
                f"scan at {size} boxes (floor {SPEEDUP_FLOOR}x)"
            )
        rows.append(
            [
                size,
                len(batch[0]),
                f"{scan_ms:.2f}",
                f"{build_ms:.2f}",
                f"{batch_ms:.3f}",
                f"{sql_ms:.2f}",
                f"{warm_speedup:.0f}x",
                f"{cold_speedup:.1f}x",
            ]
        )
    table = render_table(
        [
            "boxes",
            "answers(q0)",
            "per-object ms",
            "index build ms",
            "batch ms",
            "SQLite ms (q0)",
            "speedup (warm)",
            "speedup (cold)",
        ],
        rows,
        title=(
            "E21 — 8-query workload at scale: seed per-object evaluator vs "
            "batch bitmask index vs compiled SQL (answers always identical; "
            "warm = index built, cold = build included)"
        ),
    )
    report("e21_engine_scale", table)

    # pytest-benchmark on the warm batch path over the largest store.
    benchmark(engine.execute_batch, intro_query())
