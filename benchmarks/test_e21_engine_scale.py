"""E21 — the database side at scale: in-process engine vs compiled SQL.

Not a paper experiment, but the measurement a database reader asks for:
executing learned qhorn queries over growing nested relations, comparing
the in-process evaluator with the SQL compilation running on SQLite (both
must return identical answers; E21 reports throughput).
"""

from __future__ import annotations

import random
import time

from repro.analysis import render_table
from repro.data import QueryEngine
from repro.data.chocolate import (
    intro_query,
    random_store,
    storefront_vocabulary,
)
from repro.data.sql import SqliteEngine

SIZES = (100, 400, 1600)


def test_e21_engine_scaling(report, benchmark):
    vocab = storefront_vocabulary()
    query = intro_query()
    rows = []
    for size in SIZES:
        store = random_store(size, random.Random(2100 + size))
        memory = QueryEngine(store, vocab)
        t0 = time.perf_counter()
        via_memory = sorted(o.key for o in memory.execute(query))
        mem_ms = (time.perf_counter() - t0) * 1000
        with SqliteEngine(store, vocab) as db:
            t0 = time.perf_counter()
            via_sql = db.execute(query)
            sql_ms = (time.perf_counter() - t0) * 1000
        assert via_sql == via_memory
        rows.append(
            [
                size,
                len(via_memory),
                f"{mem_ms:.2f}",
                f"{sql_ms:.2f}",
                f"{1000 * mem_ms / size:.1f}",
            ]
        )
    table = render_table(
        ["boxes", "answers", "in-process ms", "SQLite ms", "µs/object (mem)"],
        rows,
        title=(
            "E21 — query execution at scale: in-process evaluator vs "
            "compiled SQL on SQLite (answers always identical)"
        ),
    )
    report("e21_engine_scale", table)

    store = random_store(400, random.Random(7))
    engine = QueryEngine(store, vocab)
    benchmark(engine.execute, query)
