"""E14 — §5 "Noisy Users": history review + restart-from-error recovers the
exact query under response noise.

The paper's proposed UI keeps a history of responses so the user can fix a
mistake, "trigger[ing] the query learning algorithm to restart query
learning from the point of error".  We simulate users who flip each label
with probability p and report restarts needed until a clean transcript —
recovery must be exact at every noise level.
"""

from __future__ import annotations

import random
import statistics

from repro.analysis import render_table
from repro.core.generators import random_qhorn1
from repro.core.normalize import canonicalize
from repro.interactive import CorrectionLoop
from repro.learning import Qhorn1Learner

TRIALS = 15
N = 8


def test_e14_noise_recovery(report, benchmark):
    rows = []
    for p in (0.0, 0.02, 0.05, 0.1, 0.2):
        rng = random.Random(int(14000 + p * 1000))
        restarts, successes, questions = [], 0, []
        for _ in range(TRIALS):
            target = random_qhorn1(N, rng)
            loop = CorrectionLoop(
                Qhorn1Learner, target, p_flip=p, rng=rng, max_restarts=500
            )
            result = loop.run()
            if canonicalize(result.query) == canonicalize(target):
                successes += 1
            restarts.append(result.restarts)
            questions.append(result.questions_asked)
        rows.append(
            [
                f"{p:.2f}",
                f"{successes}/{TRIALS}",
                f"{statistics.mean(restarts):.1f}",
                max(restarts),
                f"{statistics.mean(questions):.0f}",
            ]
        )
        assert successes == TRIALS
    table = render_table(
        ["p(flip)", "exact recoveries", "mean restarts", "max restarts",
         "mean questions (final run)"],
        rows,
        title=(
            "E14 / §5 — noisy users with history correction: restart from "
            "the point of error until the transcript is clean (n=8)"
        ),
    )
    report("e14_noise_recovery", table)

    def one_noisy_session():
        rng = random.Random(99)
        target = random_qhorn1(N, rng)
        CorrectionLoop(
            Qhorn1Learner, target, p_flip=0.05, rng=rng, max_restarts=500
        ).run()

    benchmark(one_noisy_session)
