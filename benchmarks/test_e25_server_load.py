"""E25 — multi-session server load: sessions/sec and p99 round latency.

Not a paper experiment, but the measurement the `repro.server` subsystem
(DESIGN.md §2f) exists to answer: one event loop multiplexing N
simulated users who each answer their rounds with think-time — the load
shape the paper's interaction model implies (many humans, each slow,
each cheap per round).  Rounds are the billable unit of user interaction
(Drachsler-Cohen et al.; Bshouty et al. — PAPERS.md), so the report is
denominated in sessions/sec and per-round latency percentiles.

Two hard gates:

* **Concurrency + equivalence** — ≥ 100 concurrent dialogues complete in
  one event loop, and every wire transcript (questions *and* answers, in
  order) is bit-identical to the synchronous in-process
  ``LearningSession.run()`` path for the same intent.
* **Restart durability** — with a file-backed ``SessionStore``, killing
  the server mid-dialogue and starting a fresh one resumes *every*
  parked session at its exact parked round; the stitched
  before/after transcripts again match the synchronous path, and the
  finished metering counts the whole dialogue, not just the post-resume
  half.
"""

from __future__ import annotations

import asyncio

from repro.analysis import render_table
from repro.interactive import LearningSession
from repro.learning import Qhorn1Learner
from repro.oracle import QueryOracle
from repro.server import RoundServer, SessionStore
from repro.server.loadgen import random_intents, run_load

N_USERS = 120
CONCURRENCY_FLOOR = 100
N_VARS = 3
THINK_TIME = 0.002
SEED = 2500
RESTART_USERS = 40


def _sync_reference(intent):
    """The synchronous path the wire must be bit-identical to."""
    session = LearningSession(
        lambda oracle: Qhorn1Learner(oracle), oracle=QueryOracle(intent)
    )
    return session.run()


def _assert_bit_identical(wire_transcript, intent, learned=None):
    reference = _sync_reference(intent)
    questions = [q for qs, _ in wire_transcript for q in qs]
    answers = [a for _, ans in wire_transcript for a in ans]
    assert questions == [e.question for e in reference.transcript]
    assert answers == reference.transcript.responses()
    if learned is not None:
        assert learned == reference.query.shorthand()
    return reference


def test_e25_server_load(report, trend):
    assert N_USERS >= CONCURRENCY_FLOOR
    intents = random_intents(N_USERS, N_VARS, seed=SEED)

    async def main():
        with SessionStore() as store:
            server = RoundServer(store)
            await server.start()
            load = await run_load(
                "127.0.0.1",
                server.port,
                intents,
                think_time=THINK_TIME,
                seed=SEED,
            )
            stats = server.stats()
            await server.close()
            return load, stats

    load, stats = asyncio.run(main())

    # Gate 1: every dialogue finished, in one loop, bit-identically.
    assert all(user.finished for user in load.users)
    assert stats["sessions_finished"] == N_USERS
    for user in load.users:
        _assert_bit_identical(user.transcript, user.intent, user.learned)

    summary = load.to_dict()
    table = render_table(
        ["metric", "value"],
        [
            ["concurrent users", N_USERS],
            ["finished", summary["finished"]],
            ["elapsed s", f"{load.elapsed_s:.3f}"],
            ["sessions/sec", f"{load.sessions_per_s:.1f}"],
            ["rounds", load.total_rounds],
            ["questions", load.total_questions],
            ["think-time per round ms", f"{THINK_TIME * 1000:.1f}"],
            ["p50 round latency ms", summary["p50_round_ms"]],
            ["p99 round latency ms", summary["p99_round_ms"]],
        ],
        title=(
            f"E25 — asyncio round server under load: {N_USERS} concurrent "
            f"simulated users (n={N_VARS} qhorn-1 intents, jittered "
            f"{THINK_TIME * 1000:.0f}ms think-time) on one event loop; "
            "every wire transcript bit-identical to the synchronous path"
        ),
    )
    report("e25_server_load", table)
    trend(
        "e25_server_load",
        sessions_per_s=load.sessions_per_s,
        p99_round_ms=summary["p99_round_ms"],
        median_s=load.elapsed_s,
    )


def test_e25_restart_resumes_every_session(report, tmp_path):
    intents = random_intents(RESTART_USERS, N_VARS, seed=SEED + 1)
    path = tmp_path / "sessions.sqlite"

    async def phase_one():
        store = SessionStore(path)
        server = RoundServer(store)
        await server.start()
        load = await run_load(
            "127.0.0.1",
            server.port,
            intents,
            think_time=0.0,
            seed=SEED + 1,
            stop_after_rounds=1,
        )
        await server.close()  # the "kill": all live state is gone
        store.close()
        return load

    async def phase_two(parked_intents, session_ids):
        store = SessionStore(path)
        server = RoundServer(store)
        await server.start()
        load = await run_load(
            "127.0.0.1",
            server.port,
            parked_intents,
            think_time=0.0,
            seed=SEED + 1,
            session_ids=session_ids,
        )
        stats = server.stats()
        await server.close()
        store.close()
        return load, stats

    before = asyncio.run(phase_one())
    # One-round dialogues finish before they can park; every dialogue
    # still mid-session at the kill must survive it.
    parked = [user for user in before.users if not user.finished]
    assert len(parked) >= RESTART_USERS // 2
    session_ids = [user.session_id for user in parked]
    assert len(set(session_ids)) == len(parked)

    after, stats = asyncio.run(
        phase_two([user.intent for user in parked], session_ids)
    )
    # Every parked session resumed from the store on the fresh server.
    assert stats["sessions_resumed"] == len(parked)
    assert stats["sessions_finished"] == len(parked)
    resumed_rounds = 0
    for user_before, user_after in zip(parked, after.users):
        assert user_after.finished
        stitched = user_before.transcript + user_after.transcript
        reference = _assert_bit_identical(
            stitched, user_before.intent, user_after.learned
        )
        # Metering spans the restart: the finished summary counts the
        # whole dialogue, not just the post-resume half.
        assert user_after.questions == reference.questions_asked
        assert user_after.metering["resumes"] == 1
        resumed_rounds += user_after.rounds

    table = render_table(
        ["metric", "value"],
        [
            ["dialogues before kill", RESTART_USERS],
            ["parked mid-session", len(parked)],
            ["answered rounds before kill", before.total_rounds],
            ["resumed on fresh server", stats["sessions_resumed"]],
            ["finished after restart", stats["sessions_finished"]],
            ["total rounds (lifetime)", resumed_rounds],
        ],
        title=(
            f"E25b — kill-server/restart durability: of {RESTART_USERS} "
            "dialogues, every one parked mid-session in the sqlite "
            "SessionStore resumes at its exact parked round on a fresh "
            "server (stitched transcripts bit-identical to the "
            "synchronous path)"
        ),
    )
    report("e25b_server_restart", table)
