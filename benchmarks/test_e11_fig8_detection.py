"""E11 — Fig. 8 + Theorem 4.2: every wrong (given, intended) pair is
detected, and by which question family.

Regenerates Fig. 8 as the full 11×11 matrix over all semantically distinct
two-variable role-preserving queries, then spot-checks completeness on
random pairs at larger n.
"""

from __future__ import annotations

import random

from repro.analysis import render_table
from repro.core.generators import enumerate_role_preserving, random_role_preserving
from repro.core.normalize import canonicalize
from repro.verification.verifier import detecting_kinds


def test_e11_fig8_matrix(report, benchmark):
    queries = sorted(
        enumerate_role_preserving(2), key=lambda q: q.shorthand()
    )
    labels = [q.shorthand() for q in queries]
    rows = []
    undetected = 0
    for intended in queries:
        row = [intended.shorthand()]
        for given in queries:
            if canonicalize(given) == canonicalize(intended):
                row.append("=")
                continue
            kinds = detecting_kinds(given, intended)
            if not kinds:
                undetected += 1
                row.append("MISS")
            else:
                row.append(",".join(sorted(kinds)))
        rows.append(row)
    table = render_table(
        ["intended \\ given"] + labels,
        rows,
        title=(
            "E11 / Fig. 8 + Thm 4.2 — which verification questions expose "
            "each (given, intended) mismatch on two variables"
        ),
    )
    table += f"\nundetected pairs: {undetected} (paper: 0)"
    report("e11_fig8_detection", table)
    assert undetected == 0

    def larger_n_spot_check():
        rng = random.Random(11000)
        misses = 0
        for _ in range(30):
            n = rng.randint(3, 6)
            a = random_role_preserving(n, rng, theta=2)
            b = random_role_preserving(n, rng, theta=2)
            if canonicalize(a) == canonicalize(b):
                continue
            if not detecting_kinds(a, b):
                misses += 1
        return misses

    assert benchmark(larger_n_spot_check) == 0
