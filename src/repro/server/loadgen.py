"""E25 load generator: N simulated users answering rounds with think-time.

Each simulated user opens one TCP connection to a
:class:`~repro.server.core.RoundServer` (or a whole
:class:`~repro.server.multiproc.ServerFleet`), starts (or reconnects) a
dialogue, and answers every round from a ground-truth
:class:`~repro.oracle.QueryOracle` over their intended query after an
optional think-time sleep — the load shape the paper's interaction model
implies (many humans, each slow, each cheap per round).  The generator
records per-round latency (answers sent → next round received) and the
full wire transcript, so callers can assert bit-identical transcripts
against the synchronous in-process path.

Two fleet-era load shapes (§2h):

* ``hop_every=k`` parks the dialogue (quit) after every ``k`` answered
  rounds, drops the connection, and reconnects on a fresh one — under a
  multi-process fleet each reconnect is kernel-balanced onto whichever
  worker accepts, so dialogues deliberately hop workers and exercise the
  store's ownership handoff.  ``UserResult.workers`` records every
  worker id that served the user.
* :func:`run_load_multiprocess` fans the users over C client processes,
  so the load generator itself stops being the single-core bottleneck
  when measuring a fleet (E25c).

Run standalone against a live server (the CI smoke does)::

    python -m repro.server.loadgen --port 40001 --users 8 --n 4 \
        --hop-every 1 --expect-workers 2
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.generators import random_qhorn1
from repro.core.query import QhornQuery
from repro.oracle import QueryOracle
from repro.protocol.wire import payload_from_dict

__all__ = [
    "UserResult",
    "LoadReport",
    "simulate_user",
    "run_load",
    "run_load_multiprocess",
    "random_intents",
    "load_scenarios",
]


@dataclass
class UserResult:
    """One simulated user's finished (or parked) dialogue."""

    session_id: str
    intent: QhornQuery
    learned: str | None = None
    questions: int = 0
    rounds: int = 0
    #: Wire transcript: (questions, answers) per answered round.
    transcript: list = field(default_factory=list)
    #: Seconds from sending answers to receiving the next message.
    round_latencies: list = field(default_factory=list)
    metering: dict = field(default_factory=dict)
    #: Every worker id that served this user (fleet mode).
    workers: set = field(default_factory=set)
    #: Park-and-reconnect hops this user performed.
    hops: int = 0

    @property
    def finished(self) -> bool:
        return self.learned is not None


@dataclass
class LoadReport:
    """Aggregate of one load run."""

    users: list
    elapsed_s: float

    @property
    def sessions_per_s(self) -> float:
        return len(self.users) / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def total_rounds(self) -> int:
        return sum(u.rounds for u in self.users)

    @property
    def total_questions(self) -> int:
        return sum(u.questions for u in self.users)

    @property
    def total_hops(self) -> int:
        return sum(u.hops for u in self.users)

    @property
    def workers_seen(self) -> set:
        return set().union(*(u.workers for u in self.users), set())

    def latency_percentile(self, q: float) -> float:
        """The ``q``-quantile round latency in seconds (0 <= q <= 1)."""
        latencies = sorted(
            latency for u in self.users for latency in u.round_latencies
        )
        if not latencies:
            return 0.0
        index = min(int(q * len(latencies)), len(latencies) - 1)
        return latencies[index]

    def to_dict(self) -> dict:
        return {
            "users": len(self.users),
            "finished": sum(1 for u in self.users if u.finished),
            "elapsed_s": round(self.elapsed_s, 4),
            "sessions_per_s": round(self.sessions_per_s, 2),
            "rounds": self.total_rounds,
            "questions": self.total_questions,
            "hops": self.total_hops,
            "workers": sorted(self.workers_seen),
            "p50_round_ms": round(self.latency_percentile(0.50) * 1000, 3),
            "p99_round_ms": round(self.latency_percentile(0.99) * 1000, 3),
        }


async def _read_message(reader) -> dict:
    line = await reader.readline()
    if not line:
        raise ConnectionError("server closed the connection")
    return json.loads(line)


async def _open(host: str, port: int, hello: dict):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write((json.dumps(hello) + "\n").encode())
    await writer.drain()
    return reader, writer


async def _close(writer) -> None:
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


async def simulate_user(
    host: str,
    port: int,
    intent: QhornQuery,
    learner: str = "qhorn1",
    think_time: float = 0.0,
    rng: random.Random | None = None,
    session_id: str | None = None,
    stop_after_rounds: int | None = None,
    hop_every: int | None = None,
) -> UserResult:
    """Drive one dialogue to completion (or park it after
    ``stop_after_rounds`` answered rounds, for restart experiments).

    With ``session_id`` the user reconnects to a parked dialogue instead
    of opening a new one — the resumed rounds continue the same
    transcript.  With ``hop_every=k`` the user parks (quit) after every
    ``k`` answered rounds and reconnects on a brand-new connection —
    against a fleet, that connection lands on whichever worker the
    kernel (or the shard router) picks, so the dialogue hops workers.
    The quit's ``closed`` reply is awaited before reconnecting: the park
    releases the session's ownership claim, so the next worker's rebuild
    is guaranteed to find it released.  ``think_time`` sleeps before
    each answer batch, jittered ±50% when ``rng`` is given.
    """
    truth = QueryOracle(intent)
    result = UserResult(session_id=session_id or "", intent=intent)
    if session_id is None:
        hello: dict = {"type": "open", "n": intent.n, "learner": learner}
    else:
        hello = {"type": "reconnect", "session": session_id}
    reader, writer = await _open(host, port, hello)
    answered = 0
    answered_since_hop = 0
    try:
        while True:
            sent_at = time.perf_counter()
            message = await _read_message(reader)
            latency = time.perf_counter() - sent_at
            kind = message.get("type")
            if kind == "finished":
                result.learned = message["query"]
                result.questions = message["questions"]
                result.rounds = message["rounds"]
                result.metering = message.get("metering", {})
                if "worker" in message:
                    result.workers.add(message["worker"])
                return result
            if kind != "round":
                raise AssertionError(f"unexpected server message: {message}")
            result.session_id = message["session"]
            if "worker" in message:
                result.workers.add(message["worker"])
            if stop_after_rounds is not None and answered >= stop_after_rounds:
                writer.write(
                    json.dumps(
                        {"type": "quit", "session": result.session_id}
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                result.rounds = message["index"]
                return result
            if hop_every is not None and answered_since_hop >= hop_every:
                # Park here, resume over there: quit (awaiting the
                # "closed" reply, which guarantees the claim release
                # happened), drop the connection, reconnect fresh.
                writer.write(
                    json.dumps(
                        {"type": "quit", "session": result.session_id}
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                closed = await _read_message(reader)
                assert closed.get("type") == "closed", closed
                await _close(writer)
                reader, writer = await _open(
                    host,
                    port,
                    {"type": "reconnect", "session": result.session_id},
                )
                result.hops += 1
                answered_since_hop = 0
                continue
            result.round_latencies.append(latency)
            questions = [
                payload_from_dict(d) for d in message["questions"]
            ]
            if think_time:
                delay = think_time
                if rng is not None:
                    delay *= 0.5 + rng.random()
                await asyncio.sleep(delay)
            answers = [truth.ask(q) for q in questions]
            result.transcript.append((questions, answers))
            answered += 1
            answered_since_hop += 1
            writer.write(
                (
                    json.dumps(
                        {
                            "type": "answers",
                            "session": result.session_id,
                            "answers": answers,
                        }
                    )
                    + "\n"
                ).encode()
            )
            await writer.drain()
    finally:
        await _close(writer)


async def run_load(
    host: str,
    port: int,
    intents: Sequence[QhornQuery],
    learner: str = "qhorn1",
    think_time: float = 0.0,
    seed: int = 2013,
    stop_after_rounds: int | None = None,
    session_ids: Sequence[str] | None = None,
    hop_every: int | None = None,
) -> LoadReport:
    """Run one simulated user per intent, all concurrent on this loop."""
    rng = random.Random(seed)
    rngs = [random.Random(rng.random()) for _ in intents]
    started = time.perf_counter()
    users = await asyncio.gather(
        *(
            simulate_user(
                host,
                port,
                intent,
                learner=learner,
                think_time=think_time,
                rng=user_rng,
                session_id=(
                    None if session_ids is None else session_ids[index]
                ),
                stop_after_rounds=stop_after_rounds,
                hop_every=hop_every,
            )
            for index, (intent, user_rng) in enumerate(zip(intents, rngs))
        )
    )
    return LoadReport(
        users=list(users), elapsed_s=time.perf_counter() - started
    )


def _load_slice(payload: tuple) -> list[UserResult]:
    """One client process's share of the users (module-level: picklable
    under any multiprocessing start method)."""
    host, port, intents, learner, think_time, seed, hop_every = payload
    report = asyncio.run(
        run_load(
            host,
            port,
            intents,
            learner=learner,
            think_time=think_time,
            seed=seed,
            hop_every=hop_every,
        )
    )
    return report.users


def run_load_multiprocess(
    host: str,
    port: int,
    intents: Sequence[QhornQuery],
    processes: int,
    learner: str = "qhorn1",
    think_time: float = 0.0,
    seed: int = 2013,
    hop_every: int | None = None,
) -> LoadReport:
    """Fan the users over ``processes`` client processes.

    A single asyncio loop answering thousands of rounds becomes the
    bottleneck before a multi-worker fleet does; C client processes keep
    the measurement about the server.  Elapsed time is the parent's wall
    clock around the whole fan-out, so ``sessions_per_s`` stays an
    end-to-end number.
    """
    import concurrent.futures
    import multiprocessing

    if processes <= 1:
        return asyncio.run(
            run_load(
                host,
                port,
                intents,
                learner=learner,
                think_time=think_time,
                seed=seed,
                hop_every=hop_every,
            )
        )
    context_name = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    slices: list[list[QhornQuery]] = [[] for _ in range(processes)]
    for index, intent in enumerate(intents):
        slices[index % processes].append(intent)
    payloads = [
        (host, port, chunk, learner, think_time, seed + rank, hop_every)
        for rank, chunk in enumerate(slices)
        if chunk
    ]
    started = time.perf_counter()
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=len(payloads),
        mp_context=multiprocessing.get_context(context_name),
    ) as pool:
        users = [
            user
            for chunk in pool.map(_load_slice, payloads)
            for user in chunk
        ]
    return LoadReport(
        users=users, elapsed_s=time.perf_counter() - started
    )


def random_intents(
    count: int, n: int, seed: int = 2013
) -> list[QhornQuery]:
    """A seeded workload of ``count`` random qhorn-1 intents over ``n``."""
    rng = random.Random(seed)
    return [random_qhorn1(n, rng) for _ in range(count)]


def load_scenarios(path: str) -> list[QhornQuery]:
    """Intents from a `repro enumerate` JSONL corpus (``--scenario``).

    Every provably-distinct enumerated query becomes one dialogue's
    intent, so a load run covers the *whole* bounded query space instead
    of one random-generator distribution.  Accepted lines: the corpus's
    ``{"kind": "query", "query": {...}}`` records (other kinds — stores,
    instances, the summary — are skipped), or bare
    ``{"query": {...}}`` / ``{"intent": "shorthand", "n": N}`` objects
    for hand-written scenario files.
    """
    from repro.core.parser import parse_query
    from repro.core.serialize import query_from_dict

    intents: list[QhornQuery] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind is not None and kind != "query":
                continue
            if "query" in record:
                intents.append(query_from_dict(record["query"]))
            elif "intent" in record:
                intents.append(
                    parse_query(record["intent"], n=record.get("n"))
                )
            elif kind == "query":
                raise ValueError(
                    f"{path}:{lineno}: query record without a 'query' dict"
                )
    if not intents:
        raise ValueError(f"{path}: no scenario intents found")
    return intents


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.server.loadgen",
        description="simulated-user load generator for `repro serve`",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--users",
        type=int,
        default=None,
        help="simulated users (default: 8, or one per scenario intent "
        "with --scenario; more users cycle the scenario list)",
    )
    parser.add_argument("--n", type=int, default=4)
    parser.add_argument("--learner", default="qhorn1")
    parser.add_argument(
        "--scenario",
        metavar="FILE",
        default=None,
        help="replay intents from a `repro enumerate` JSONL corpus "
        "(one dialogue per enumerated query) instead of the random "
        "generator; --n and --seed stop shaping the workload",
    )
    parser.add_argument("--think-time", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument(
        "--hop-every",
        type=int,
        default=None,
        metavar="K",
        help="park (quit) and reconnect on a fresh connection after "
        "every K answered rounds — against a fleet, dialogues hop "
        "workers through the shared store",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        metavar="C",
        help="fan the users over C client processes (keeps the load "
        "generator off the critical path when measuring a fleet)",
    )
    parser.add_argument(
        "--expect-workers",
        type=int,
        default=None,
        metavar="W",
        help="fail unless at least W distinct worker ids served the "
        "load (asserts fleet balancing end-to-end)",
    )
    args = parser.parse_args(argv)

    from repro.core.normalize import canonicalize
    from repro.core.parser import parse_query

    if args.scenario is not None:
        scenarios = load_scenarios(args.scenario)
        count = args.users if args.users is not None else len(scenarios)
        intents = [scenarios[i % len(scenarios)] for i in range(count)]
    else:
        count = args.users if args.users is not None else 8
        intents = random_intents(count, args.n, seed=args.seed)
    if args.processes > 1:
        report = run_load_multiprocess(
            args.host,
            args.port,
            intents,
            processes=args.processes,
            learner=args.learner,
            think_time=args.think_time,
            seed=args.seed,
            hop_every=args.hop_every,
        )
    else:
        report = asyncio.run(
            run_load(
                args.host,
                args.port,
                intents,
                learner=args.learner,
                think_time=args.think_time,
                seed=args.seed,
                hop_every=args.hop_every,
            )
        )
    # Every dialogue must both finish and learn a query equivalent to
    # its own intent.
    wrong = [
        u
        for u in report.users
        if u.learned is None
        or canonicalize(parse_query(u.learned, n=u.intent.n))
        != canonicalize(u.intent)
    ]
    print(json.dumps(report.to_dict()))
    if wrong:
        for u in wrong:
            print(
                f"loadgen: session {u.session_id} learned {u.learned!r}, "
                f"intended {u.intent.shorthand()!r}"
            )
        return 1
    if (
        args.expect_workers is not None
        and len(report.workers_seen) < args.expect_workers
    ):
        print(
            f"loadgen: expected >= {args.expect_workers} distinct "
            f"workers, saw {sorted(report.workers_seen)}"
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
