"""E25 load generator: N simulated users answering rounds with think-time.

Each simulated user opens one TCP connection to a
:class:`~repro.server.core.RoundServer`, starts (or reconnects) a
dialogue, and answers every round from a ground-truth
:class:`~repro.oracle.QueryOracle` over their intended query after an
optional think-time sleep — the load shape the paper's interaction model
implies (many humans, each slow, each cheap per round).  The generator
records per-round latency (answers sent → next round received) and the
full wire transcript, so callers can assert bit-identical transcripts
against the synchronous in-process path.

Run standalone against a live server (the CI smoke does)::

    python -m repro.server.loadgen --port 40001 --users 8 --n 4
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.generators import random_qhorn1
from repro.core.query import QhornQuery
from repro.oracle import QueryOracle
from repro.protocol.wire import payload_from_dict

__all__ = ["UserResult", "LoadReport", "simulate_user", "run_load"]


@dataclass
class UserResult:
    """One simulated user's finished (or parked) dialogue."""

    session_id: str
    intent: QhornQuery
    learned: str | None = None
    questions: int = 0
    rounds: int = 0
    #: Wire transcript: (questions, answers) per answered round.
    transcript: list = field(default_factory=list)
    #: Seconds from sending answers to receiving the next message.
    round_latencies: list = field(default_factory=list)
    metering: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.learned is not None


@dataclass
class LoadReport:
    """Aggregate of one load run."""

    users: list
    elapsed_s: float

    @property
    def sessions_per_s(self) -> float:
        return len(self.users) / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def total_rounds(self) -> int:
        return sum(u.rounds for u in self.users)

    @property
    def total_questions(self) -> int:
        return sum(u.questions for u in self.users)

    def latency_percentile(self, q: float) -> float:
        """The ``q``-quantile round latency in seconds (0 <= q <= 1)."""
        latencies = sorted(
            latency for u in self.users for latency in u.round_latencies
        )
        if not latencies:
            return 0.0
        index = min(int(q * len(latencies)), len(latencies) - 1)
        return latencies[index]

    def to_dict(self) -> dict:
        return {
            "users": len(self.users),
            "finished": sum(1 for u in self.users if u.finished),
            "elapsed_s": round(self.elapsed_s, 4),
            "sessions_per_s": round(self.sessions_per_s, 2),
            "rounds": self.total_rounds,
            "questions": self.total_questions,
            "p50_round_ms": round(self.latency_percentile(0.50) * 1000, 3),
            "p99_round_ms": round(self.latency_percentile(0.99) * 1000, 3),
        }


async def _read_message(reader) -> dict:
    line = await reader.readline()
    if not line:
        raise ConnectionError("server closed the connection")
    return json.loads(line)


async def simulate_user(
    host: str,
    port: int,
    intent: QhornQuery,
    learner: str = "qhorn1",
    think_time: float = 0.0,
    rng: random.Random | None = None,
    session_id: str | None = None,
    stop_after_rounds: int | None = None,
) -> UserResult:
    """Drive one dialogue to completion (or park it after
    ``stop_after_rounds`` answered rounds, for restart experiments).

    With ``session_id`` the user reconnects to a parked dialogue instead
    of opening a new one — the resumed rounds continue the same
    transcript.  ``think_time`` sleeps before each answer batch, jittered
    ±50% when ``rng`` is given.
    """
    truth = QueryOracle(intent)
    reader, writer = await asyncio.open_connection(host, port)
    result = UserResult(session_id=session_id or "", intent=intent)
    try:
        if session_id is None:
            hello = {"type": "open", "n": intent.n, "learner": learner}
        else:
            hello = {"type": "reconnect", "session": session_id}
        writer.write((json.dumps(hello) + "\n").encode())
        await writer.drain()
        answered = 0
        while True:
            sent_at = time.perf_counter()
            message = await _read_message(reader)
            latency = time.perf_counter() - sent_at
            kind = message.get("type")
            if kind == "finished":
                result.learned = message["query"]
                result.questions = message["questions"]
                result.rounds = message["rounds"]
                result.metering = message.get("metering", {})
                return result
            if kind != "round":
                raise AssertionError(f"unexpected server message: {message}")
            result.session_id = message["session"]
            if stop_after_rounds is not None and answered >= stop_after_rounds:
                writer.write(
                    json.dumps(
                        {"type": "quit", "session": result.session_id}
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                result.rounds = message["index"]
                return result
            result.round_latencies.append(latency)
            questions = [
                payload_from_dict(d) for d in message["questions"]
            ]
            if think_time:
                delay = think_time
                if rng is not None:
                    delay *= 0.5 + rng.random()
                await asyncio.sleep(delay)
            answers = [truth.ask(q) for q in questions]
            result.transcript.append((questions, answers))
            answered += 1
            writer.write(
                (
                    json.dumps(
                        {
                            "type": "answers",
                            "session": result.session_id,
                            "answers": answers,
                        }
                    )
                    + "\n"
                ).encode()
            )
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_load(
    host: str,
    port: int,
    intents: Sequence[QhornQuery],
    learner: str = "qhorn1",
    think_time: float = 0.0,
    seed: int = 2013,
    stop_after_rounds: int | None = None,
    session_ids: Sequence[str] | None = None,
) -> LoadReport:
    """Run one simulated user per intent, all concurrent on this loop."""
    rng = random.Random(seed)
    rngs = [random.Random(rng.random()) for _ in intents]
    started = time.perf_counter()
    users = await asyncio.gather(
        *(
            simulate_user(
                host,
                port,
                intent,
                learner=learner,
                think_time=think_time,
                rng=user_rng,
                session_id=(
                    None if session_ids is None else session_ids[index]
                ),
                stop_after_rounds=stop_after_rounds,
            )
            for index, (intent, user_rng) in enumerate(zip(intents, rngs))
        )
    )
    return LoadReport(
        users=list(users), elapsed_s=time.perf_counter() - started
    )


def random_intents(
    count: int, n: int, seed: int = 2013
) -> list[QhornQuery]:
    """A seeded workload of ``count`` random qhorn-1 intents over ``n``."""
    rng = random.Random(seed)
    return [random_qhorn1(n, rng) for _ in range(count)]


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.server.loadgen",
        description="simulated-user load generator for `repro serve`",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--users", type=int, default=8)
    parser.add_argument("--n", type=int, default=4)
    parser.add_argument("--learner", default="qhorn1")
    parser.add_argument("--think-time", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=2013)
    args = parser.parse_args(argv)

    from repro.core.normalize import canonicalize
    from repro.core.parser import parse_query

    intents = random_intents(args.users, args.n, seed=args.seed)
    report = asyncio.run(
        run_load(
            args.host,
            args.port,
            intents,
            learner=args.learner,
            think_time=args.think_time,
            seed=args.seed,
        )
    )
    # Every dialogue must both finish and learn a query equivalent to
    # its own intent.
    wrong = [
        u
        for u in report.users
        if u.learned is None
        or canonicalize(parse_query(u.learned, n=u.intent.n))
        != canonicalize(u.intent)
    ]
    print(json.dumps(report.to_dict()))
    if wrong:
        for u in wrong:
            print(
                f"loadgen: session {u.session_id} learned {u.learned!r}, "
                f"intended {u.intent.shorthand()!r}"
            )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
