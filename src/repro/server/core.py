"""Multi-session asyncio round server (DESIGN.md §2f).

``repro learn --serve-stdio`` holds exactly one dialogue per process;
this module is the production form the ROADMAP's "millions of users"
item asks for: one event loop multiplexing many concurrent learning
dialogues, each a step-driven
:class:`~repro.interactive.session.LearningSession` parked between
answers, persisted to a :class:`~repro.server.store.SessionStore` on
every round boundary so dialogues survive disconnects, idle eviction and
full server restarts.

The wire is the stdio format framed with a session id — newline-delimited
JSON, one message per line:

client → server
    ``{"type": "open", "n": N, "learner": "qhorn1"}``
        start a dialogue; the server assigns the session id
    ``{"type": "reconnect", "session": ID}``
        resume a parked dialogue at its exact parked round (re-emits the
        pending round; works in-memory, after eviction, or after a server
        restart via the store)
    ``{"type": "answers", "session": ID, "answers": [...]}``
    ``{"type": "snapshot", "session": ID}``  emit the parked replay log
    ``{"type": "quit", "session": ID}``      park the session and detach

server → client
    ``{"type": "round", "session": ID, "index": i, "batched": b,
    "questions": [...]}``
    ``{"type": "snapshot", "session": ID, "snapshot": {...}}``
    ``{"type": "finished", "session": ID, ..., "metering": {...}}``
    ``{"type": "closed", "session": ID}``    reply to quit
    ``{"type": "error", "message": "...", ["session": ID]}``
        recoverable; the session (if any) stays parked at its round

Rounds are the billable unit of user interaction (Drachsler-Cohen et
al.; Bshouty et al. — see PAPERS.md): every session carries per-round
metering counters that ride along in the ``finished`` summary.

Backpressure is per connection: replies flow through a bounded outbox
drained by a writer task, so a slow reader suspends its own reader loop
(and eventually TCP) instead of growing server memory.  Idle sessions
are evicted from memory on a timer — eviction is safe *because* the
round-boundary snapshot is already durable; a later message under the
same session id transparently resumes from the store.

Since §2h one ``RoundServer`` is also one *fleet worker*: N of them can
listen on the same host:port (``SO_REUSEPORT``) over one shared
file-backed store.  Every server message carries ``"worker"`` — the
server's worker id — so clients (and the load generator) can observe
which worker served them.  While a session is live in memory, the worker
*owns* its store row under a claim token; parking (quit, idle eviction,
clean shutdown) releases the claim, and a store-rebuild in
:meth:`RoundServer._require_session` must claim first — a session live
on another running worker is a recoverable ``{"type": "error"}``, one
that died with its worker is stolen and resumed.
"""

from __future__ import annotations

import asyncio
import json
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.interactive.session import LearningSession
from repro.learning import Qhorn1Learner, RolePreservingLearner
from repro.protocol.core import Finished, ProtocolError, Round
from repro.protocol.stdio import finished_to_dict, round_to_dict
from repro.protocol.wire import decode_answers
from repro.server.store import (
    ACTIVE,
    FINISHED,
    SessionStore,
    StoredSession,
    owner_token,
)

__all__ = ["LEARNERS", "SessionMeter", "RoundServer"]

#: Registry of wire-addressable learners: name → class taking an oracle.
LEARNERS: Mapping[str, Callable[..., Any]] = {
    "qhorn1": Qhorn1Learner,
    "role-preserving": RolePreservingLearner,
}

DEFAULT_LEARNER = "qhorn1"


def _now() -> float:
    """The event loop clock (monotonic), usable from sync test code."""
    try:
        return asyncio.get_running_loop().time()
    except RuntimeError:
        return time.monotonic()


@dataclass
class SessionMeter:
    """Per-session interaction metering (rounds are the billable unit)."""

    rounds: int = 0
    questions: int = 0
    errors: int = 0
    resumes: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "rounds": self.rounds,
            "questions": self.questions,
            "errors": self.errors,
            "resumes": self.resumes,
        }


@dataclass
class _LiveSession:
    """One in-memory dialogue: the session plus its server bookkeeping."""

    session_id: str
    learner: str
    session: LearningSession
    meter: SessionMeter = field(default_factory=SessionMeter)
    last_used: float = 0.0


class RoundServer:
    """Asyncio server multiplexing learning dialogues in one event loop.

    Parameters
    ----------
    store:
        Snapshot persistence; the caller owns its lifecycle.
    learners:
        Wire-addressable learner registry (default :data:`LEARNERS`).
    max_outbox:
        Per-connection reply queue bound (backpressure: a connection
        whose client stops reading stops being served new replies).
    idle_timeout:
        Seconds of inactivity after which a live session is evicted from
        memory (its snapshot stays parked in the store).  ``None``
        disables the background sweep; :meth:`evict_idle` still works.
    worker_id:
        This server's name in a fleet (stamped on every wire message and
        on persisted worker stats).  Defaults to a fresh short id.  The
        session-ownership claim token derives from it plus the pid, so a
        server must be constructed in the process that runs it.
    """

    def __init__(
        self,
        store: SessionStore,
        learners: Mapping[str, Callable[..., Any]] = LEARNERS,
        max_outbox: int = 64,
        idle_timeout: float | None = None,
        worker_id: str | None = None,
    ) -> None:
        self.store = store
        self.learners = dict(learners)
        self.max_outbox = max_outbox
        self.idle_timeout = idle_timeout
        self.worker_id = worker_id or uuid.uuid4().hex[:8]
        self._claim_token = owner_token(self.worker_id)
        self._sessions: dict[str, _LiveSession] = {}
        self._server: asyncio.AbstractServer | None = None
        self._evictor: asyncio.Task | None = None
        self._connections: set[asyncio.Task] = set()
        # Server-level counters (surfaced by stats()).
        self.sessions_opened = 0
        self.sessions_resumed = 0
        self.sessions_finished = 0
        self.evictions = 0
        self.wire_errors = 0
        self.claims_rejected = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool = False,
    ) -> asyncio.AbstractServer:
        """Bind and serve; ``port=0`` picks an ephemeral port (see
        :meth:`port`).  With ``reuse_port`` the socket binds with
        ``SO_REUSEPORT`` so N fleet workers can share one host:port and
        let the kernel balance connections.  Returns the underlying
        asyncio server."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, reuse_port=reuse_port
        )
        if self.idle_timeout is not None:
            self._evictor = asyncio.ensure_future(self._evict_loop())
        return self._server

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting, drop connections, keep every session parked
        in the store (that is the durability story, not a data loss).

        Clean shutdown is the ownership handoff: every live session's
        claim is released so any other fleet worker may rebuild it, and
        this worker's counters are persisted for fleet-wide aggregation.
        """
        if self._evictor is not None:
            self._evictor.cancel()
            try:
                await self._evictor
            except asyncio.CancelledError:
                pass
            self._evictor = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        for session_id in self._sessions:
            self.store.release(session_id, self._claim_token)
        self._sessions.clear()
        self.store.save_worker_stats(self.worker_id, self.stats())

    def stats(self) -> dict[str, int]:
        # Connection-pool health rides along as pool_* counters: every
        # live PooledConnectionSource in this worker's process (dbapi
        # backends, pooled SqlQueryOracles) reports through one
        # process-wide aggregate, so `repro serve --stats` shows pool
        # health per worker and fleet-merged (DESIGN.md §2i).
        from repro.data.backends.dbapi import pool_stats

        counters = {
            "live_sessions": len(self._sessions),
            "sessions_opened": self.sessions_opened,
            "sessions_resumed": self.sessions_resumed,
            "sessions_finished": self.sessions_finished,
            "evictions": self.evictions,
            "wire_errors": self.wire_errors,
            "claims_rejected": self.claims_rejected,
        }
        counters.update(
            (f"pool_{name}", value) for name, value in pool_stats().items()
        )
        return counters

    # ------------------------------------------------------------------
    # Idle eviction
    # ------------------------------------------------------------------
    def evict_idle(self, max_idle: float) -> int:
        """Drop live sessions idle for ``max_idle`` seconds or more.

        Safe at any time: the round-boundary snapshot in the store is
        the authoritative state, so eviction only frees memory — and
        releases the ownership claim, so any fleet worker may pick the
        session back up.  Returns the number of sessions evicted."""
        now = _now()
        evicted = 0
        for session_id, live in list(self._sessions.items()):
            if now - live.last_used >= max_idle:
                del self._sessions[session_id]
                self.store.release(session_id, self._claim_token)
                evicted += 1
        self.evictions += evicted
        return evicted

    async def _evict_loop(self) -> None:
        interval = max(self.idle_timeout / 2, 0.01)
        while True:
            await asyncio.sleep(interval)
            self.evict_idle(self.idle_timeout)

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        outbox: asyncio.Queue = asyncio.Queue(maxsize=self.max_outbox)
        pump = asyncio.ensure_future(self._pump(outbox, writer))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.strip().decode("utf-8", errors="replace")
                if not text:
                    continue
                for message in self._handle_line(text):
                    await outbox.put(message)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                outbox.put_nowait(None)
            except asyncio.QueueFull:
                pump.cancel()
            try:
                await pump
            except (ConnectionError, asyncio.CancelledError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            if task is not None:
                self._connections.discard(task)

    async def _pump(self, outbox: asyncio.Queue, writer) -> None:
        """Writer task: drain the bounded outbox onto the transport.

        A broken transport flips the pump into discard mode instead of
        raising: it keeps consuming so the producer (the reader loop,
        which blocks on the bounded queue) can never deadlock against a
        dead client."""
        broken = False
        while True:
            message = await outbox.get()
            if message is None:
                return
            if broken:
                continue
            try:
                writer.write((json.dumps(message) + "\n").encode())
                await writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                broken = True

    # ------------------------------------------------------------------
    # Message dispatch (synchronous — stepping a learner is CPU work)
    # ------------------------------------------------------------------
    def _error(self, message: str, session_id: str | None = None) -> dict:
        self.wire_errors += 1
        out: dict[str, Any] = {"type": "error", "message": message}
        if session_id is not None:
            out["session"] = session_id
        return out

    def _handle_line(self, text: str) -> list[dict]:
        try:
            message = json.loads(text)
        except json.JSONDecodeError:
            return [self._error("expected one JSON object per line")]
        if not isinstance(message, dict):
            return [self._error("expected a JSON object")]
        kind = message.get("type")
        session_id = message.get("session")
        if session_id is not None and not isinstance(session_id, str):
            return [self._error('"session" must be a string id')]
        try:
            if kind == "open":
                return self._handle_open(message)
            if kind == "reconnect":
                return self._handle_reconnect(session_id)
            if kind == "answers":
                return self._handle_answers(session_id, message)
            if kind == "snapshot":
                return self._handle_snapshot(session_id)
            if kind == "quit":
                return self._handle_quit(session_id)
        except ProtocolError as error:
            live = self._sessions.get(session_id or "")
            if live is not None:
                live.meter.errors += 1
            return [self._error(str(error), session_id)]
        return [self._error(f"unknown type {kind!r}", session_id)]

    def _handle_open(self, message: dict) -> list[dict]:
        n = message.get("n")
        if isinstance(n, bool) or not isinstance(n, int) or n < 1:
            return [self._error('"open" needs a positive integer "n"')]
        learner = message.get("learner", DEFAULT_LEARNER)
        learner_cls = self.learners.get(learner)
        if learner_cls is None:
            known = ", ".join(sorted(self.learners))
            return [
                self._error(f"unknown learner {learner!r} (known: {known})")
            ]
        session_id = uuid.uuid4().hex[:12]
        session = LearningSession(
            lambda oracle: learner_cls(oracle), n=n
        )
        live = _LiveSession(session_id, learner, session)
        event = session.start()
        self._sessions[session_id] = live
        self.sessions_opened += 1
        return self._emit_event(live, event, fresh_round=True)

    def _handle_reconnect(self, session_id: str | None) -> list[dict]:
        live = self._require_session(session_id, "reconnect")
        event = live.session.step()
        return self._emit_event(live, event, fresh_round=False)

    def _handle_answers(
        self, session_id: str | None, message: dict
    ) -> list[dict]:
        live = self._require_session(session_id, "answers")
        answers = decode_answers(message)
        event = live.session.feed(answers)
        return self._emit_event(live, event, fresh_round=True)

    def _handle_snapshot(self, session_id: str | None) -> list[dict]:
        live = self._require_session(session_id, "snapshot")
        self._touch(live)
        return [
            {
                "type": "snapshot",
                "session": live.session_id,
                "snapshot": live.session.snapshot().to_dict(),
            }
        ]

    def _handle_quit(self, session_id: str | None) -> list[dict]:
        if session_id is None:
            raise ProtocolError('"quit" needs a "session" id')
        # Quit parks rather than destroys: the snapshot stays in the
        # store, so the same id can reconnect later — on *any* fleet
        # worker, which is why parking releases the ownership claim
        # before the "closed" reply reaches the client.
        if self._sessions.pop(session_id, None) is not None:
            self.store.release(session_id, self._claim_token)
        return [{"type": "closed", "session": session_id}]

    # ------------------------------------------------------------------
    # Session state helpers
    # ------------------------------------------------------------------
    def _require_session(
        self, session_id: str | None, verb: str
    ) -> _LiveSession:
        """The live session for ``session_id``, resuming from the store
        when it is not in memory (eviction or a past server restart)."""
        if session_id is None:
            raise ProtocolError(f'"{verb}" needs a "session" id')
        live = self._sessions.get(session_id)
        if live is not None:
            return live
        record = self.store.load(session_id)
        if record is None:
            raise ProtocolError(f"unknown session {session_id!r}")
        if record.finished:
            raise ProtocolError(
                f"session {session_id!r} already finished"
            )
        # Ownership handoff (§2h): rebuilding from the store claims the
        # row first.  A parked session is released and claims cleanly; a
        # session still live on another *running* worker is rejected
        # (the client must quit there first, or wait for idle eviction);
        # one whose worker died is stolen — that is the crash story.
        if not self.store.claim(session_id, self._claim_token):
            self.claims_rejected += 1
            raise ProtocolError(
                f"session {session_id!r} is live on another worker "
                "(park it there first, or wait for idle eviction)"
            )
        learner_cls = self.learners.get(record.learner)
        if learner_cls is None:
            self.store.release(session_id, self._claim_token)
            raise ProtocolError(
                f"session {session_id!r} needs unknown learner "
                f"{record.learner!r}"
            )
        session = LearningSession(
            lambda oracle: learner_cls(oracle), n=record.n
        )
        try:
            session.resume(record.snapshot)
        except Exception:
            self.store.release(session_id, self._claim_token)
            raise
        live = _LiveSession(
            session_id,
            record.learner,
            session,
            # Lifetime totals continue across the resume; ``resumes``
            # counts store-rebuilds (eviction, disconnect, restart).
            meter=SessionMeter(
                rounds=record.rounds, questions=record.questions, resumes=1
            ),
        )
        self._sessions[session_id] = live
        self.sessions_resumed += 1
        return live

    def _touch(self, live: _LiveSession) -> None:
        live.last_used = _now()

    def _persist(self, live: _LiveSession, status: str) -> None:
        """Round-boundary durability: park the replay log write-through.

        Active rows carry this worker's claim token (the session is live
        here); finished rows carry none — there is nothing left to own.
        """
        self.store.save(
            StoredSession(
                session_id=live.session_id,
                learner=live.learner,
                n=live.session.n,
                status=status,
                rounds=live.meter.rounds,
                questions=live.meter.questions,
                snapshot=live.session.snapshot(),
                owner=self._claim_token if status == ACTIVE else None,
            )
        )

    def _emit_event(
        self, live: _LiveSession, event: Round | Finished, fresh_round: bool
    ) -> list[dict]:
        """Turn a session event into wire messages, metering and
        persisting at the round boundary."""
        self._touch(live)
        if isinstance(event, Finished):
            live.meter.questions = len(live.session.transcript)
            self._persist(live, FINISHED)
            self.sessions_finished += 1
            del self._sessions[live.session_id]
            summary = finished_to_dict(live.session, live.meter.rounds)
            summary["session"] = live.session_id
            summary["worker"] = self.worker_id
            summary["metering"] = live.meter.to_dict()
            return [summary]
        if fresh_round:
            live.meter.rounds += 1
            live.meter.questions = len(live.session.transcript)
            self._persist(live, ACTIVE)
        message = round_to_dict(event, live.meter.rounds - 1)
        message["session"] = live.session_id
        message["worker"] = self.worker_id
        return [message]
