"""Multi-process serving tier: an acceptor fleet over one store (§2h).

One :class:`~repro.server.core.RoundServer` is one event loop is one
core.  A :class:`ServerFleet` forks N worker processes, each running its
own ``RoundServer`` on the *same* host:port via ``SO_REUSEPORT`` — the
kernel balances incoming connections across the listening sockets — with
the file-backed :class:`~repro.server.store.SessionStore` as the only
shared state.  A reconnect that lands on a different worker rebuilds the
parked session from the store exactly the way a post-restart reconnect
does (``_require_session``), guarded by the store's claim tokens: a
session live on another running worker is rejected with a recoverable
error, one owned by a killed worker is stolen and resumed.

On platforms without ``SO_REUSEPORT`` (and for explicit testing) the
fleet falls back to a :class:`ShardRouter`: each worker listens on its
own ephemeral port, and a tiny asyncio splice proxy on the public port
routes each incoming connection by the first message's session id
(stable hashing, so a reconnect reaches the worker that most recently
served that session) or round-robin for ``open``.  Either way the store
handoff — not the routing — is what makes hops correct.

Lifecycle: ``start()`` blocks until every worker reports listening;
``stop()`` fans SIGTERM out, joins every worker, and returns the
fleet-wide stats merged from the per-worker counters each server
persisted on clean shutdown.  ``kill_worker()`` SIGKILLs one worker —
the crash the ownership-steal path exists for.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import sys
import threading
import zlib
from pathlib import Path

from repro.server.store import SessionStore

__all__ = ["ServerFleet", "ShardRouter", "default_workers"]

#: Seconds start() waits for every worker's "listening" handshake.
START_TIMEOUT = 30.0


def default_workers() -> int:
    """Fleet size for ``--workers 0``: one worker per core."""
    return os.cpu_count() or 1


def reuse_port_supported() -> bool:
    return hasattr(socket, "SO_REUSEPORT")


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
#
# Module-level so the fleet works under the ``spawn`` start method too
# (the fork-preferring context mirrors repro.parallel.pool).  Everything
# a worker needs crosses as plain picklable values; the worker opens its
# *own* SessionStore connection — a sqlite handle must never cross fork,
# which is the whole point of per-worker connections (§2h).


def _worker_main(
    index: int,
    store_path: str,
    host: str,
    port: int,
    reuse_port: bool,
    max_outbox: int,
    idle_timeout: float | None,
    ready,
) -> None:
    import asyncio

    try:
        asyncio.run(
            _worker_serve(
                index,
                store_path,
                host,
                port,
                reuse_port,
                max_outbox,
                idle_timeout,
                ready,
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - signal race at exit
        pass


async def _worker_serve(
    index: int,
    store_path: str,
    host: str,
    port: int,
    reuse_port: bool,
    max_outbox: int,
    idle_timeout: float | None,
    ready,
) -> None:
    import asyncio

    from repro.server.core import RoundServer

    store = SessionStore(store_path)
    server = RoundServer(
        store,
        max_outbox=max_outbox,
        idle_timeout=idle_timeout,
        worker_id=f"w{index}",
    )
    try:
        await server.start(host, port, reuse_port=reuse_port)
    except Exception as error:
        ready.put(("error", index, f"{type(error).__name__}: {error}"))
        store.close()
        return
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix
            signal.signal(signum, lambda *_: stop.set())
    ready.put(("listening", index, server.port))
    try:
        await stop.wait()
    finally:
        await server.close()  # releases claims, persists worker stats
        store.close()


# ----------------------------------------------------------------------
# Shard-router fallback
# ----------------------------------------------------------------------


class ShardRouter:
    """Asyncio splice proxy routing connections to fleet workers.

    The routing key is the first message of each connection: a message
    naming a ``"session"`` hashes that id onto a stable backend (so the
    reconnects of one dialogue keep landing on one worker while it is
    live there), anything else — an ``open`` — goes round-robin.  After
    the first line the proxy splices raw bytes both ways.  A backend
    that refuses the connection (e.g. a killed worker) falls through to
    the next alive one: correctness never depends on the routing choice,
    only on the store's claim handoff.
    """

    def __init__(self, backends: list[tuple[str, int]]) -> None:
        if not backends:
            raise ValueError("ShardRouter needs at least one backend")
        self.backends = list(backends)
        self._next = 0
        self._server = None
        self.connections_routed = 0

    def pick(self, first_message: object) -> int:
        """Backend index for a connection opening with this message."""
        if isinstance(first_message, dict):
            session_id = first_message.get("session")
            if isinstance(session_id, str):
                return zlib.crc32(session_id.encode()) % len(self.backends)
        choice = self._next % len(self.backends)
        self._next += 1
        return choice

    async def start(self, host: str, port: int = 0) -> None:
        import asyncio

        self._server = await asyncio.start_server(self._handle, host, port)

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("router not started")
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _connect_backend(self, preferred: int):
        """The preferred backend, or the next one that accepts."""
        import asyncio

        count = len(self.backends)
        last_error: Exception | None = None
        for offset in range(count):
            backend_host, backend_port = self.backends[
                (preferred + offset) % count
            ]
            try:
                return await asyncio.open_connection(
                    backend_host, backend_port
                )
            except OSError as error:
                last_error = error
        raise last_error or OSError("no backend accepted the connection")

    async def _handle(self, reader, writer) -> None:
        import asyncio

        upstream_writer = None
        try:
            first = await reader.readline()
            if not first:
                return
            try:
                message = json.loads(first)
            except json.JSONDecodeError:
                message = None  # still routed; the worker answers the error
            upstream_reader, upstream_writer = await self._connect_backend(
                self.pick(message)
            )
            self.connections_routed += 1
            upstream_writer.write(first)
            await upstream_writer.drain()
            await asyncio.gather(
                _splice(reader, upstream_writer),
                _splice(upstream_reader, writer),
            )
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            for w in (writer, upstream_writer):
                if w is None:
                    continue
                w.close()
                try:
                    await w.wait_closed()
                except (ConnectionError, OSError):
                    pass


async def _splice(reader, writer) -> None:
    """Pump bytes one way until EOF; half-close so quits propagate."""
    try:
        while True:
            chunk = await reader.read(65536)
            if not chunk:
                break
            writer.write(chunk)
            await writer.drain()
    except (ConnectionError, OSError):
        pass
    finally:
        try:
            if writer.can_write_eof():
                writer.write_eof()
        except (ConnectionError, OSError, RuntimeError):
            pass


class _RouterThread(threading.Thread):
    """The router's event loop, parked on a daemon thread so the fleet
    keeps a synchronous management face."""

    def __init__(self, backends, host, port):
        super().__init__(name="shard-router", daemon=True)
        self.router = ShardRouter(backends)
        # NB: attribute names must not collide with threading.Thread
        # internals (_started, _stop are Thread's own machinery).
        self._router_host = host
        self._router_port = port
        self._router_up = threading.Event()
        self._router_loop = None
        self._stop_serving = None
        self.error: Exception | None = None
        self.port: int | None = None

    def run(self) -> None:
        import asyncio

        async def main():
            self._router_loop = asyncio.get_running_loop()
            self._stop_serving = asyncio.Event()
            try:
                await self.router.start(
                    self._router_host, self._router_port
                )
                self.port = self.router.port
            except Exception as error:
                self.error = error
                self._router_up.set()
                return
            self._router_up.set()
            await self._stop_serving.wait()
            await self.router.close()

        asyncio.run(main())

    def wait_started(self, timeout: float) -> None:
        if not self._router_up.wait(timeout):
            raise TimeoutError("shard router did not start")
        if self.error is not None:
            raise self.error

    def stop(self) -> None:
        if self._router_loop is not None and self._stop_serving is not None:
            self._router_loop.call_soon_threadsafe(self._stop_serving.set)
        self.join(timeout=10)


# ----------------------------------------------------------------------
# The fleet
# ----------------------------------------------------------------------


class ServerFleet:
    """N ``RoundServer`` worker processes behind one host:port.

    Parameters
    ----------
    store:
        Path to the shared sqlite session store.  Must be file-backed:
        the store is the fleet's only shared state, so ``":memory:"``
        (process-local by definition) is rejected.
    workers:
        Process count; ``0`` means one per core.
    reuse_port:
        ``True`` forces ``SO_REUSEPORT``, ``False`` forces the
        :class:`ShardRouter` fallback, ``None`` picks by platform.
    """

    def __init__(
        self,
        store: str | Path,
        workers: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        max_outbox: int = 64,
        idle_timeout: float | None = None,
        reuse_port: bool | None = None,
    ) -> None:
        self.store_path = str(store)
        if self.store_path == ":memory:":
            raise ValueError(
                "a ServerFleet needs a file-backed store — the store is "
                "the only state workers share"
            )
        self.workers = workers if workers > 0 else default_workers()
        self.host = host
        self.requested_port = port
        self.max_outbox = max_outbox
        self.idle_timeout = idle_timeout
        self.reuse_port = (
            reuse_port_supported() if reuse_port is None else reuse_port
        )
        self._processes: list[multiprocessing.process.BaseProcess] = []
        self._router: _RouterThread | None = None
        self._port: int | None = None
        context_name = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._context = multiprocessing.get_context(context_name)

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("fleet not started")
        return self._port

    def alive(self) -> list[int]:
        """Indexes of workers still running."""
        return [
            index
            for index, process in enumerate(self._processes)
            if process.is_alive()
        ]

    # ------------------------------------------------------------------
    def start(self, timeout: float = START_TIMEOUT) -> None:
        """Fork the workers and block until every one is listening."""
        if self._processes:
            raise RuntimeError("fleet already started")
        # A fresh fleet means fresh fleet-wide counters (old rows would
        # double-count into the merged stats line).
        with SessionStore(self.store_path) as store:
            store.clear_worker_stats()
        placeholder: socket.socket | None = None
        worker_port = self.requested_port
        if self.reuse_port:
            # Resolve port 0 once, and hold the placeholder bound (but
            # never listening — only listeners receive connections)
            # until every worker has bound the same port.
            placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            placeholder.bind((self.host, self.requested_port))
            worker_port = placeholder.getsockname()[1]
        ready = self._context.Queue()
        try:
            for index in range(self.workers):
                process = self._context.Process(
                    target=_worker_main,
                    args=(
                        index,
                        self.store_path,
                        self.host,
                        worker_port if self.reuse_port else 0,
                        self.reuse_port,
                        self.max_outbox,
                        self.idle_timeout,
                        ready,
                    ),
                    daemon=True,
                    name=f"repro-serve-w{index}",
                )
                process.start()
                self._processes.append(process)
            worker_ports = self._await_ready(ready, timeout)
        except Exception:
            self._terminate_all()
            raise
        finally:
            if placeholder is not None:
                placeholder.close()
        if self.reuse_port:
            self._port = worker_port
        else:
            router = _RouterThread(
                [(self.host, p) for _, p in sorted(worker_ports.items())],
                self.host,
                self.requested_port,
            )
            router.start()
            try:
                router.wait_started(timeout)
            except Exception:
                self._terminate_all()
                raise
            self._router = router
            self._port = router.port

    def _await_ready(self, ready, timeout: float) -> dict[int, int]:
        import queue as queue_module

        ports: dict[int, int] = {}
        while len(ports) < self.workers:
            try:
                kind, index, payload = ready.get(timeout=timeout)
            except queue_module.Empty:
                raise TimeoutError(
                    f"fleet start timed out: {len(ports)} of "
                    f"{self.workers} workers listening"
                ) from None
            if kind == "error":
                raise RuntimeError(
                    f"fleet worker {index} failed to start: {payload}"
                )
            ports[index] = payload
        return ports

    # ------------------------------------------------------------------
    def kill_worker(self, index: int) -> None:
        """SIGKILL one worker — the crash-recovery story under test.

        Its live sessions stay claimed by a dead pid in the store, which
        is exactly what :meth:`SessionStore.claim` steals from; its
        in-flight connections drop; with ``SO_REUSEPORT`` new
        connections flow to the surviving listeners, and the router
        fallback fails over on connect.
        """
        self._processes[index].kill()
        self._processes[index].join(timeout=10)

    def terminate(self) -> None:
        """Fan SIGTERM out to every live worker (clean shutdown)."""
        for process in self._processes:
            if process.is_alive():
                process.terminate()

    def stop(self, timeout: float = 30.0) -> dict[str, int]:
        """SIGTERM fan-out, join every worker, merge the fleet stats."""
        self.terminate()
        for process in self._processes:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=5)
        if self._router is not None:
            self._router.stop()
            self._router = None
        self._processes = []
        self._port = None
        with SessionStore(self.store_path) as store:
            return store.fleet_stats()

    def _terminate_all(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        self._processes = []

    def __enter__(self) -> "ServerFleet":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "reuseport" if self.reuse_port else "router"
        return (
            f"ServerFleet(workers={self.workers}, mode={mode}, "
            f"store={self.store_path!r})"
        )


def print_listening(fleet: ServerFleet, stream=None) -> None:
    """The one-line JSON handshake ``repro serve`` prints on startup."""
    print(
        json.dumps(
            {
                "type": "listening",
                "host": fleet.host,
                "port": fleet.port,
                "store": fleet.store_path,
                "workers": fleet.workers,
                "mode": "reuseport" if fleet.reuse_port else "router",
            }
        ),
        file=stream if stream is not None else sys.stdout,
        flush=True,
    )
