"""Multi-session round serving (DESIGN.md §2f, §2h).

* :mod:`repro.server.core` — :class:`RoundServer`, the event loop that
  multiplexes many concurrent learning dialogues over a session-id
  framed, newline-delimited JSON wire.
* :mod:`repro.server.store` — :class:`SessionStore`, sqlite persistence
  of round-boundary :class:`~repro.interactive.session.SessionSnapshot`
  replay logs so dialogues survive disconnects and server restarts; in
  fleet mode (WAL, per-process connections, claim tokens) the only
  state workers share.
* :mod:`repro.server.multiproc` — :class:`ServerFleet`, N forked
  ``RoundServer`` workers on one host:port via ``SO_REUSEPORT`` (or the
  :class:`~repro.server.multiproc.ShardRouter` fallback).
* :mod:`repro.server.loadgen` — the E25 load generator: N simulated
  users answering rounds with think-time, optionally hopping workers
  through park-and-reconnect, optionally fanned over client processes.
"""

from repro.server.core import LEARNERS, RoundServer, SessionMeter
from repro.server.loadgen import (
    LoadReport,
    UserResult,
    run_load,
    run_load_multiprocess,
    simulate_user,
)
from repro.server.multiproc import ServerFleet, ShardRouter
from repro.server.store import SessionStore, StoredSession

__all__ = [
    "LEARNERS",
    "LoadReport",
    "RoundServer",
    "ServerFleet",
    "SessionMeter",
    "SessionStore",
    "ShardRouter",
    "StoredSession",
    "UserResult",
    "run_load",
    "run_load_multiprocess",
    "simulate_user",
]
