"""Multi-session asyncio round server (DESIGN.md §2f).

* :mod:`repro.server.core` — :class:`RoundServer`, the event loop that
  multiplexes many concurrent learning dialogues over a session-id
  framed, newline-delimited JSON wire.
* :mod:`repro.server.store` — :class:`SessionStore`, sqlite persistence
  of round-boundary :class:`~repro.interactive.session.SessionSnapshot`
  replay logs so dialogues survive disconnects and server restarts.
* :mod:`repro.server.loadgen` — the E25 load generator: N simulated
  users answering rounds with think-time.
"""

from repro.server.core import LEARNERS, RoundServer, SessionMeter
from repro.server.loadgen import (
    LoadReport,
    UserResult,
    run_load,
    simulate_user,
)
from repro.server.store import SessionStore, StoredSession

__all__ = [
    "LEARNERS",
    "LoadReport",
    "RoundServer",
    "SessionMeter",
    "SessionStore",
    "StoredSession",
    "UserResult",
    "run_load",
    "simulate_user",
]
