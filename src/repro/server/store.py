"""Snapshot-backed session store: dialogues that survive restarts (§2f).

The server parks every :class:`~repro.interactive.session.LearningSession`
as a :class:`~repro.interactive.session.SessionSnapshot` replay log on
each round boundary.  This module backs those parked snapshots with
SQLite on disk, following the :class:`~repro.oracle.persistent.
PersistentCachingOracle` idiom: one table, write-through on every save,
plain ``INSERT OR REPLACE`` keyed by session id, and a context-manager
face over an owned connection.

Because a snapshot *is* the session state (learners are deterministic
given responses, DESIGN.md §2e), a row here is everything needed to
resume a dialogue at its exact parked round — after a disconnect, an
idle eviction, or a full server restart.  ``:memory:`` stores work for
tests and survive only the process, file-backed stores survive anything.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path

from repro.interactive.session import SessionSnapshot

__all__ = ["StoredSession", "SessionStore"]

#: Session lifecycle states persisted alongside the snapshot.
ACTIVE = "active"
FINISHED = "finished"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sessions (
    session_id TEXT PRIMARY KEY,
    learner TEXT NOT NULL,
    n INTEGER NOT NULL,
    status TEXT NOT NULL,
    rounds INTEGER NOT NULL,
    questions INTEGER NOT NULL,
    snapshot TEXT NOT NULL
)
"""


@dataclass
class StoredSession:
    """One persisted dialogue: identity, progress counters, replay log.

    ``learner`` is the registry name the server rebuilds the learner
    factory from (a snapshot replays only through the same learner that
    produced it); ``rounds``/``questions`` are lifetime totals across
    restarts, which is what per-round metering bills on.
    """

    session_id: str
    learner: str
    n: int
    status: str
    rounds: int
    questions: int
    snapshot: SessionSnapshot

    @property
    def finished(self) -> bool:
        return self.status == FINISHED


class SessionStore:
    """SQLite persistence for parked learning sessions.

    Parameters
    ----------
    path:
        Database file; created when absent, reused when present.
        ``":memory:"`` keeps the store process-local (tests).
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self.connection = sqlite3.connect(self.path)
        self.connection.execute(_SCHEMA)
        self.connection.commit()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, record: StoredSession) -> None:
        """Write-through one parked session (upsert on session id)."""
        self.connection.execute(
            "INSERT OR REPLACE INTO sessions VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                record.session_id,
                record.learner,
                record.n,
                record.status,
                record.rounds,
                record.questions,
                json.dumps(record.snapshot.to_dict()),
            ),
        )
        self.connection.commit()

    def load(self, session_id: str) -> StoredSession | None:
        """The parked session under ``session_id``, or ``None``."""
        row = self.connection.execute(
            "SELECT learner, n, status, rounds, questions, snapshot "
            "FROM sessions WHERE session_id = ?",
            (session_id,),
        ).fetchone()
        if row is None:
            return None
        learner, n, status, rounds, questions, snapshot = row
        return StoredSession(
            session_id=session_id,
            learner=learner,
            n=int(n),
            status=status,
            rounds=int(rounds),
            questions=int(questions),
            snapshot=SessionSnapshot.from_dict(json.loads(snapshot)),
        )

    def delete(self, session_id: str) -> None:
        self.connection.execute(
            "DELETE FROM sessions WHERE session_id = ?", (session_id,)
        )
        self.connection.commit()

    def session_ids(self, status: str | None = None) -> list[str]:
        """All stored session ids, optionally filtered by status."""
        if status is None:
            rows = self.connection.execute(
                "SELECT session_id FROM sessions ORDER BY session_id"
            )
        else:
            rows = self.connection.execute(
                "SELECT session_id FROM sessions WHERE status = ? "
                "ORDER BY session_id",
                (status,),
            )
        return [session_id for (session_id,) in rows]

    # ------------------------------------------------------------------
    # Container face / lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        (count,) = self.connection.execute(
            "SELECT COUNT(*) FROM sessions"
        ).fetchone()
        return int(count)

    def __contains__(self, session_id: str) -> bool:
        return (
            self.connection.execute(
                "SELECT 1 FROM sessions WHERE session_id = ?", (session_id,)
            ).fetchone()
            is not None
        )

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SessionStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SessionStore(path={self.path!r}, sessions={len(self)})"
