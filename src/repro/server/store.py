"""Snapshot-backed session store: dialogues that survive restarts (§2f/§2h).

The server parks every :class:`~repro.interactive.session.LearningSession`
as a :class:`~repro.interactive.session.SessionSnapshot` replay log on
each round boundary.  This module backs those parked snapshots with
SQLite on disk, following the :class:`~repro.oracle.persistent.
PersistentCachingOracle` idiom: one table, write-through on every save,
plain ``INSERT OR REPLACE`` keyed by session id, and a context-manager
face over an owned connection.

Because a snapshot *is* the session state (learners are deterministic
given responses, DESIGN.md §2e), a row here is everything needed to
resume a dialogue at its exact parked round — after a disconnect, an
idle eviction, or a full server restart.  ``:memory:`` stores work for
tests and survive only the process, file-backed stores survive anything.

Since §2h the store is also the *only* shared state of a multi-process
:class:`~repro.server.multiproc.ServerFleet`, which imposes three rules:

* **Connections are per process.**  File-backed connections open in WAL
  journal mode with ``busy_timeout`` and ``synchronous=NORMAL``, in
  sqlite autocommit mode (``isolation_level=None``) so every statement
  commits atomically on its own — concurrent workers serialize on the
  WAL writer lock instead of corrupting each other.  A connection must
  never cross :func:`os.fork`: :meth:`reopen` rebinds explicitly, and
  every access goes through a pid guard that rebinds automatically when
  it finds itself on the wrong side of a fork.
* **Ownership is a claim token.**  A worker that holds a session live in
  memory owns its row (``owner`` column).  :meth:`claim` is an atomic
  compare-and-swap: it succeeds on unowned rows (a parked session is
  released property) and on rows whose owner token names a dead process
  (a SIGKILLed worker cannot release; liveness is checked by pid), and
  *rejects* rows live on another running worker — the concurrent-claim
  error the wire surfaces.  Workers park-and-release (quit, eviction,
  clean shutdown) before any other worker may rebuild the session.
* **Metering aggregates through the store.**  Each worker persists its
  server counters under its worker id (:meth:`save_worker_stats`);
  :meth:`fleet_stats` sums them into the fleet-wide ``repro serve``
  stats line.
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path

from repro.interactive.session import SessionSnapshot

__all__ = ["StoredSession", "SessionStore", "owner_token", "owner_alive"]

#: Session lifecycle states persisted alongside the snapshot.
ACTIVE = "active"
FINISHED = "finished"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sessions (
    session_id TEXT PRIMARY KEY,
    learner TEXT NOT NULL,
    n INTEGER NOT NULL,
    status TEXT NOT NULL,
    rounds INTEGER NOT NULL,
    questions INTEGER NOT NULL,
    snapshot TEXT NOT NULL,
    owner TEXT
)
"""

#: ``session_ids(status=...)`` is on the accept path of every fleet
#: worker; without this index it scans the whole table.
_STATUS_INDEX = (
    "CREATE INDEX IF NOT EXISTS sessions_status ON sessions(status)"
)

_WORKER_STATS_SCHEMA = """
CREATE TABLE IF NOT EXISTS worker_stats (
    worker_id TEXT PRIMARY KEY,
    stats TEXT NOT NULL
)
"""


def owner_token(worker_id: str) -> str:
    """A claim token naming this process: ``"<pid>.<worker_id>"``.

    The pid prefix is what lets :meth:`SessionStore.claim` steal sessions
    from a SIGKILLed worker (which can never release them) while still
    rejecting claims against a live one.
    """
    return f"{os.getpid()}.{worker_id}"


def owner_alive(token: str) -> bool:
    """Whether the process named by a claim token is still running.

    Unparseable tokens count as alive (never steal what we cannot
    check); pid probing is same-host only, which is exactly the fleet's
    deployment shape (N forked workers, one store file).
    """
    pid_text, _, _ = token.partition(".")
    try:
        pid = int(pid_text)
    except ValueError:
        return True
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # EPERM and friends: someone is there
        return True
    return True


@dataclass
class StoredSession:
    """One persisted dialogue: identity, progress counters, replay log.

    ``learner`` is the registry name the server rebuilds the learner
    factory from (a snapshot replays only through the same learner that
    produced it); ``rounds``/``questions`` are lifetime totals across
    restarts, which is what per-round metering bills on.  ``owner`` is
    the claim token of the worker currently holding the session live
    (``None`` = parked and free to claim).
    """

    session_id: str
    learner: str
    n: int
    status: str
    rounds: int
    questions: int
    snapshot: SessionSnapshot
    owner: str | None = field(default=None, compare=False)

    @property
    def finished(self) -> bool:
        return self.status == FINISHED


class SessionStore:
    """SQLite persistence for parked learning sessions.

    Parameters
    ----------
    path:
        Database file; created when absent, reused when present.
        ``":memory:"`` keeps the store process-local (tests).
    busy_timeout:
        Seconds a statement waits on another process's write lock before
        failing — the multi-writer knob (WAL mode serializes writers).
    """

    def __init__(
        self, path: str | Path = ":memory:", busy_timeout: float = 30.0
    ) -> None:
        self.path = str(path)
        self.busy_timeout = busy_timeout
        self._connection: sqlite3.Connection | None = None
        self._pid = os.getpid()
        self._connect()

    # ------------------------------------------------------------------
    # Connection discipline (per-process, fork-aware, autocommit)
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        # isolation_level=None puts sqlite in autocommit: every statement
        # is its own atomic transaction, so two worker processes can
        # interleave saves/claims without ever holding a dangling
        # transaction open across the wire (the commit discipline §2h
        # requires — there is no implicit BEGIN to forget to close).
        connection = sqlite3.connect(
            self.path, timeout=self.busy_timeout, isolation_level=None
        )
        connection.execute(
            f"PRAGMA busy_timeout = {int(self.busy_timeout * 1000)}"
        )
        # WAL lets N workers read while one writes; NORMAL is durable to
        # application crash (the fleet's failure mode) without an fsync
        # per round boundary.  Both are no-ops on :memory: stores.
        connection.execute("PRAGMA journal_mode = WAL")
        connection.execute("PRAGMA synchronous = NORMAL")
        connection.execute(_SCHEMA)
        connection.execute(_STATUS_INDEX)
        connection.execute(_WORKER_STATS_SCHEMA)
        self._migrate(connection)
        self._connection = connection
        self._pid = os.getpid()

    @staticmethod
    def _migrate(connection: sqlite3.Connection) -> None:
        """Pre-§2h store files lack the ``owner`` claim column."""
        columns = {
            row[1]
            for row in connection.execute("PRAGMA table_info(sessions)")
        }
        if "owner" not in columns:
            connection.execute(
                "ALTER TABLE sessions ADD COLUMN owner TEXT"
            )

    @property
    def connection(self) -> sqlite3.Connection:
        """The per-process connection, rebound if a fork intervened.

        A sqlite connection must never be shared across ``fork()``; a
        store object inherited by a worker process transparently reopens
        on first use (the inherited handle is abandoned, not closed —
        closing it from the child could step on the parent's side).
        """
        if self._connection is None:
            raise RuntimeError("SessionStore is closed")
        if os.getpid() != self._pid:
            self._connection = None  # abandon, do not close, see above
            self._connect()
        return self._connection

    def reopen(self) -> None:
        """Drop the current connection and bind a fresh one.

        For workers that inherit a file-backed store across a process
        boundary and want the rebind to happen eagerly rather than on
        first use.  On ``:memory:`` stores this starts an empty store —
        only file-backed stores are shared state.
        """
        if self._connection is not None and os.getpid() == self._pid:
            self._connection.close()
        self._connection = None
        self._connect()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, record: StoredSession) -> None:
        """Write-through one parked session (upsert on session id)."""
        self.connection.execute(
            "INSERT OR REPLACE INTO sessions VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.session_id,
                record.learner,
                record.n,
                record.status,
                record.rounds,
                record.questions,
                json.dumps(record.snapshot.to_dict()),
                record.owner,
            ),
        )

    def load(self, session_id: str) -> StoredSession | None:
        """The parked session under ``session_id``, or ``None``."""
        row = self.connection.execute(
            "SELECT learner, n, status, rounds, questions, snapshot, owner "
            "FROM sessions WHERE session_id = ?",
            (session_id,),
        ).fetchone()
        if row is None:
            return None
        learner, n, status, rounds, questions, snapshot, owner = row
        return StoredSession(
            session_id=session_id,
            learner=learner,
            n=int(n),
            status=status,
            rounds=int(rounds),
            questions=int(questions),
            snapshot=SessionSnapshot.from_dict(json.loads(snapshot)),
            owner=owner,
        )

    def delete(self, session_id: str) -> None:
        self.connection.execute(
            "DELETE FROM sessions WHERE session_id = ?", (session_id,)
        )

    def session_ids(self, status: str | None = None) -> list[str]:
        """All stored session ids, optionally filtered by status."""
        if status is None:
            rows = self.connection.execute(
                "SELECT session_id FROM sessions ORDER BY session_id"
            )
        else:
            rows = self.connection.execute(
                "SELECT session_id FROM sessions WHERE status = ? "
                "ORDER BY session_id",
                (status,),
            )
        return [session_id for (session_id,) in rows]

    # ------------------------------------------------------------------
    # Ownership handoff (§2h): claim tokens with dead-owner steal
    # ------------------------------------------------------------------
    def claim(self, session_id: str, owner: str) -> bool:
        """Atomically claim a session for ``owner`` (a claim token).

        Succeeds when the row is unowned (parked-and-released), already
        ours (idempotent), or owned by a dead process (a killed worker
        can never release; its sessions must stay resumable).  Returns
        ``False`` on an unknown session or one live on another running
        worker — the caller surfaces that as the concurrent-claim error.
        """
        cursor = self.connection.execute(
            "UPDATE sessions SET owner = ? "
            "WHERE session_id = ? AND (owner IS NULL OR owner = ?)",
            (owner, session_id, owner),
        )
        if cursor.rowcount:
            return True
        row = self.connection.execute(
            "SELECT owner FROM sessions WHERE session_id = ?", (session_id,)
        ).fetchone()
        if row is None or row[0] is None:
            # Unknown id, or released between our two statements — the
            # CAS below would also cover the latter, but a second plain
            # claim keeps the logic obvious.
            return row is not None and self.claim(session_id, owner)
        holder = row[0]
        if owner_alive(holder):
            return False
        # Steal from the dead: CAS against the exact stale token, so two
        # stealers racing resolve to exactly one winner.
        cursor = self.connection.execute(
            "UPDATE sessions SET owner = ? "
            "WHERE session_id = ? AND owner = ?",
            (owner, session_id, holder),
        )
        return bool(cursor.rowcount)

    def release(self, session_id: str, owner: str) -> bool:
        """Release ``owner``'s claim (no-op unless we hold it)."""
        cursor = self.connection.execute(
            "UPDATE sessions SET owner = NULL "
            "WHERE session_id = ? AND owner = ?",
            (session_id, owner),
        )
        return bool(cursor.rowcount)

    def owner_of(self, session_id: str) -> str | None:
        row = self.connection.execute(
            "SELECT owner FROM sessions WHERE session_id = ?", (session_id,)
        ).fetchone()
        return None if row is None else row[0]

    # ------------------------------------------------------------------
    # Fleet-wide metering aggregation (§2h)
    # ------------------------------------------------------------------
    def save_worker_stats(self, worker_id: str, stats: dict) -> None:
        """Upsert one worker's server counters (on clean shutdown)."""
        self.connection.execute(
            "INSERT OR REPLACE INTO worker_stats VALUES (?, ?)",
            (worker_id, json.dumps(stats)),
        )

    def clear_worker_stats(self) -> None:
        """Reset the per-worker counters (a fresh fleet start)."""
        self.connection.execute("DELETE FROM worker_stats")

    def worker_stats(self) -> dict[str, dict]:
        """Per-worker counters, keyed by worker id."""
        return {
            worker_id: json.loads(stats)
            for worker_id, stats in self.connection.execute(
                "SELECT worker_id, stats FROM worker_stats "
                "ORDER BY worker_id"
            )
        }

    def fleet_stats(self) -> dict[str, int]:
        """Every worker's counters summed into one fleet-wide view."""
        merged: dict[str, int] = {"workers": 0}
        for stats in self.worker_stats().values():
            merged["workers"] += 1
            for key, value in stats.items():
                if isinstance(value, (int, float)):
                    merged[key] = merged.get(key, 0) + value
        return merged

    # ------------------------------------------------------------------
    # Container face / lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        (count,) = self.connection.execute(
            "SELECT COUNT(*) FROM sessions"
        ).fetchone()
        return int(count)

    def __contains__(self, session_id: str) -> bool:
        return (
            self.connection.execute(
                "SELECT 1 FROM sessions WHERE session_id = ?", (session_id,)
            ).fetchone()
            is not None
        )

    def close(self) -> None:
        if self._connection is not None and os.getpid() == self._pid:
            self._connection.close()
        self._connection = None

    def __enter__(self) -> "SessionStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SessionStore(path={self.path!r}, sessions={len(self)})"
