"""Query verification: O(k) verification sets and the verifier (§4),
plus teaching-set analysis (§5) and per-query minimization."""

from repro.verification.minimize import (
    minimize_verification_set,
    redundant_questions,
)
from repro.verification.sets import (
    VerificationQuestion,
    VerificationSet,
    build_verification_set,
)
from repro.verification.teaching import (
    LabelledExample,
    greedy_teaching_set,
    teaching_set,
    verification_set_as_examples,
)
from repro.verification.verifier import (
    Disagreement,
    VerificationOutcome,
    Verifier,
    detecting_kinds,
    verify_query,
)

__all__ = [
    "Disagreement",
    "LabelledExample",
    "VerificationOutcome",
    "VerificationQuestion",
    "VerificationSet",
    "Verifier",
    "build_verification_set",
    "detecting_kinds",
    "greedy_teaching_set",
    "minimize_verification_set",
    "redundant_questions",
    "teaching_set",
    "verification_set_as_examples",
    "verify_query",
]
