"""The query verifier: decide whether a given query matches the user (§4).

Query verification is the decision problem companion to learning: the
verifier presents each question of the given query's verification set with
the query's own label; the user's intended query is *different* iff the user
disagrees with at least one label (Theorem 4.2, for role-preserving qhorn).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import QhornQuery
from repro.oracle.base import MembershipOracle, QueryOracle
from repro.protocol.core import Steps, ask_one, ask_round
from repro.protocol.drivers import drive
from repro.verification.sets import (
    VerificationQuestion,
    VerificationSet,
    build_verification_set,
)

__all__ = ["Disagreement", "VerificationOutcome", "Verifier", "verify_query"]


@dataclass(frozen=True)
class Disagreement:
    """A verification question whose label the user contradicted."""

    item: VerificationQuestion
    user_response: bool

    def describe(self) -> str:
        said = "answer" if self.user_response else "non-answer"
        wanted = "answer" if self.item.expected else "non-answer"
        return (
            f"[{self.item.kind}] {self.item.provenance}: query says {wanted}, "
            f"user says {said}"
        )


@dataclass
class VerificationOutcome:
    """Result of running a verification set against the user."""

    verified: bool
    questions_asked: int
    disagreements: list[Disagreement] = field(default_factory=list)

    @property
    def detecting_kinds(self) -> frozenset[str]:
        """Which question families exposed the discrepancy (Fig. 8 cells)."""
        return frozenset(d.item.kind for d in self.disagreements)


class Verifier:
    """Runs verification sets against a membership oracle (the user)."""

    def __init__(self, query: QhornQuery) -> None:
        self.query = query
        self.verification_set: VerificationSet = build_verification_set(query)

    def run(
        self, oracle: MembershipOracle, stop_at_first: bool = False
    ) -> VerificationOutcome:
        """Ask every question; collect the user's disagreements.

        Pull-driven entry point: drives :meth:`steps` against ``oracle``,
        bit-identical to the historical inline loop.
        """
        return drive(self.steps(stop_at_first=stop_at_first), oracle)

    def steps(self, stop_at_first: bool = False) -> Steps:
        """Verification as a sans-io step generator (DESIGN.md §2e).

        ``stop_at_first`` aborts on the first disagreement, the interactive
        behaviour; the default asks all O(k) questions so experiments can
        report every detecting family.

        The verification set is fixed before the first answer arrives, so
        the full run is one round; only ``stop_at_first`` keeps the
        sequential single-question rounds (batching would spend questions
        past the abort, changing the paper's question count).
        """
        disagreements: list[Disagreement] = []
        items = self.verification_set.questions
        if stop_at_first:
            asked = 0
            for item in items:
                response = yield from ask_one(item.question)
                asked += 1
                if response != item.expected:
                    disagreements.append(
                        Disagreement(item=item, user_response=response)
                    )
                    break
        else:
            responses = yield from ask_round(
                [item.question for item in items]
            )
            asked = len(items)
            disagreements = [
                Disagreement(item=item, user_response=response)
                for item, response in zip(items, responses)
                if response != item.expected
            ]
        return VerificationOutcome(
            verified=not disagreements,
            questions_asked=asked,
            disagreements=disagreements,
        )


def verify_query(
    given: QhornQuery, oracle: MembershipOracle, stop_at_first: bool = False
) -> VerificationOutcome:
    """Verify ``given`` against the user behind ``oracle``."""
    return Verifier(given).run(oracle, stop_at_first=stop_at_first)


def detecting_kinds(
    given: QhornQuery, intended: QhornQuery
) -> frozenset[str]:
    """Which question families of ``given``'s verification set detect that
    the user actually intends ``intended`` — one cell of Fig. 8."""
    outcome = verify_query(given, QueryOracle(intended))
    return outcome.detecting_kinds
