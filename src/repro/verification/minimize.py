"""Minimizing verification sets against an explicit hypothesis space.

Fig. 6's construction is generic — it must work for every query in the
class — so for a *specific* query some of its questions are redundant.
When the hypothesis space is enumerable (n ≤ 3), a minimal detecting
subset can be computed exactly; together with ``teaching.py`` this
quantifies the gap between the constructive O(k) sets and the per-query
optimum (the teaching number).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.normalize import canonicalize
from repro.core.query import QhornQuery
from repro.verification.sets import VerificationQuestion, build_verification_set

__all__ = ["redundant_questions", "minimize_verification_set"]


def _detects(
    item: VerificationQuestion, rival: QhornQuery
) -> bool:
    return rival.evaluate(item.question) != item.expected


def redundant_questions(
    query: QhornQuery, hypotheses: Sequence[QhornQuery]
) -> list[VerificationQuestion]:
    """Questions of ``query``'s verification set that detect no rival the
    rest of the set misses (over the given hypothesis space)."""
    vs = build_verification_set(query)
    target_form = canonicalize(query)
    rivals = [h for h in hypotheses if canonicalize(h) != target_form]
    redundant = []
    for item in vs.questions:
        others = [q for q in vs.questions if q is not item]
        exclusively_caught = [
            r
            for r in rivals
            if _detects(item, r)
            and not any(_detects(o, r) for o in others)
        ]
        if not exclusively_caught:
            redundant.append(item)
    return redundant


def minimize_verification_set(
    query: QhornQuery, hypotheses: Sequence[QhornQuery]
) -> list[VerificationQuestion]:
    """A greedy minimal subset of the verification set that still detects
    every rival hypothesis (complete relative to ``hypotheses``)."""
    vs = build_verification_set(query)
    target_form = canonicalize(query)
    remaining = [
        h for h in hypotheses if canonicalize(h) != target_form
    ]
    chosen: list[VerificationQuestion] = []
    pool = list(vs.questions)
    while remaining:
        best, caught = None, []
        for item in pool:
            hit = [r for r in remaining if _detects(item, r)]
            if len(hit) > len(caught):
                best, caught = item, hit
        if best is None:
            raise RuntimeError(
                "verification set cannot detect some rival — outside the "
                "class this set is complete for"
            )
        chosen.append(best)
        pool.remove(best)
        remaining = [r for r in remaining if r not in caught]
    return chosen
