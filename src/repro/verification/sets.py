"""Verification sets: the O(k) membership questions of §4 (Fig. 6).

Given a user-specified role-preserving query ``qg``, the verifier derives a
*verification set* — membership questions together with ``qg``'s own labels.
If the user's intended query ``qi`` differs semantically from ``qg``, at
least one question is labeled differently by ``qi`` (Theorem 4.2), so the
user spots the disagreement.

Six question families (Fig. 6), all built from the normalized query's
distinguishing tuples (§4.1):

====  ========  ==================================================================
kind  expected  contents
====  ========  ==================================================================
A1    answer    all dominant existential distinguishing tuples (guarantees incl.)
N1    non-ans.  A1 with one non-guarantee distinguishing tuple replaced by its
                Horn-compliant children (one question per such tuple)
A2    answer    all-true + the children of a universal distinguishing tuple
                (one question per dominant universal Horn expression with body)
N2    non-ans.  all-true + the universal distinguishing tuple itself
A3    answer    all-true + body search roots inside a dominant conjunction that
                dominates a guarantee clause (one question per (conjunction,
                head) pair; catches missing incomparable bodies, Lemma 4.6)
A4    answer    all-true + one tuple per non-head variable with only it false
                (catches heads the given query missed, Lemma 4.7)
====  ========  ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import FrozenSet, Sequence

from repro.core import tuples as bt
from repro.core.expressions import var_name, var_names
from repro.core.normalize import (
    CanonicalForm,
    canonicalize,
    r3_closure,
    universal_distinguishing_tuple,
)
from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.lattice.boolean_lattice import compliant_children

__all__ = ["VerificationQuestion", "VerificationSet", "build_verification_set"]

KINDS = ("A1", "N1", "A2", "N2", "A3", "A4")


@dataclass(frozen=True)
class VerificationQuestion:
    """One membership question of a verification set with its label."""

    kind: str
    question: Question
    expected: bool
    provenance: str

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown verification question kind {self.kind}")


@dataclass
class VerificationSet:
    """All verification questions for a given (normalized) query."""

    query: QhornQuery
    canonical: CanonicalForm
    questions: list[VerificationQuestion] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.questions)

    def by_kind(self, kind: str) -> list[VerificationQuestion]:
        return [q for q in self.questions if q.kind == kind]

    def counts(self) -> dict[str, int]:
        return {k: len(self.by_kind(k)) for k in KINDS}

    def format(self) -> str:
        """Paper-style rendering (§4.2): one block per question."""
        lines: list[str] = []
        for q in self.questions:
            label = "Answer" if q.expected else "Non-answer"
            lines.append(f"[{q.kind}] {q.provenance} — expected: {label}")
            lines.append(q.question.format() or "(empty object)")
            lines.append("")
        return "\n".join(lines)


def build_verification_set(query: QhornQuery) -> VerificationSet:
    """Construct the verification set of Fig. 6 for ``query``.

    The query is normalized first (§4.1): dominated expressions contribute
    only their guarantee clauses, and distinguishing tuples are built from
    the dominant expressions.
    """
    if not query.is_role_preserving():
        raise ValueError(
            "verification sets are defined for role-preserving qhorn queries"
        )
    canon = canonicalize(query)
    n = query.n
    universals = sorted(canon.universals)
    heads = frozenset(u.head for u in universals)
    top = bt.all_true(n)

    guarantee_closures = {
        r3_closure(u.variables, universals) for u in universals
    }
    conjunctions = sorted(canon.conjunctions, key=lambda c: (len(c), sorted(c)))
    ex_tuples = {c: bt.mask_of(c) for c in conjunctions}

    out = VerificationSet(query=query, canonical=canon)

    # ---------------------------------------------------------------- A1
    out.questions.append(
        VerificationQuestion(
            kind="A1",
            question=Question.of(n, ex_tuples.values()),
            expected=True,
            provenance="all dominant existential distinguishing tuples",
        )
    )

    # ---------------------------------------------------------------- N1
    for c in conjunctions:
        if c in guarantee_closures:
            continue  # Fig. 6: skip tuples due to guarantee clauses
        t = ex_tuples[c]
        others = [m for cc, m in ex_tuples.items() if cc != c]
        kids = compliant_children(t, n, universals)
        out.questions.append(
            VerificationQuestion(
                kind="N1",
                question=Question.of(n, others + kids),
                expected=False,
                provenance=f"∃{var_names(c)} replaced by its children",
            )
        )

    # ------------------------------------------------------------ A2 / N2
    for u in universals:
        ud = universal_distinguishing_tuple(u, heads)
        out.questions.append(
            VerificationQuestion(
                kind="N2",
                question=Question.of(n, [top, ud]),
                expected=False,
                provenance=f"distinguishing tuple of {u}",
            )
        )
        if u.is_bodyless:
            continue  # no children: nothing below ∀h to compare against
        kids = [bt.with_false(ud, [b]) for b in sorted(u.body)]
        out.questions.append(
            VerificationQuestion(
                kind="A2",
                question=Question.of(n, [top, *kids]),
                expected=True,
                provenance=f"children of the distinguishing tuple of {u}",
            )
        )

    # ---------------------------------------------------------------- A3
    bodies_by_head: dict[int, list[FrozenSet[int]]] = {}
    for u in universals:
        bodies_by_head.setdefault(u.head, []).append(u.body)
    non_heads_mask = bt.mask_of(v for v in range(n) if v not in heads)
    for c in conjunctions:
        for h in sorted(heads & c):
            bodies_in = [b for b in bodies_by_head[h] if b and b <= c]
            if not bodies_in:
                continue
            roots = _a3_roots(n, c, h, bodies_in, bodies_by_head[h])
            # A root with no true non-head variable cannot witness any
            # missing body M (Lemma 4.6 needs M's variables true), so such
            # roots are dropped — this is why Fig. 7's two-variable
            # verification sets contain no A3 questions.
            roots = [t for t in roots if t & non_heads_mask]
            if not roots:
                continue
            out.questions.append(
                VerificationQuestion(
                    kind="A3",
                    question=Question.of(n, [top, *roots]),
                    expected=True,
                    provenance=(
                        f"search roots for bodies of {var_name(h)} "
                        f"inside ∃{var_names(c)}"
                    ),
                )
            )

    # ---------------------------------------------------------------- A4
    non_heads = [v for v in range(n) if v not in heads]
    if non_heads:
        out.questions.append(
            VerificationQuestion(
                kind="A4",
                question=Question.of(
                    n, [top] + [bt.with_false(top, [v]) for v in non_heads]
                ),
                expected=True,
                provenance="one tuple per non-head variable set false",
            )
        )
    return out


def _a3_roots(
    n: int,
    conjunction: FrozenSet[int],
    head: int,
    bodies_in: Sequence[FrozenSet[int]],
    all_bodies: Sequence[FrozenSet[int]],
) -> list[int]:
    """Search roots of Lemma 4.6: one body variable from each body inside
    the conjunction falsified, the rest of the conjunction true, the head
    false, and everything else true unless that would complete another body
    of the head (those are repaired by falsifying an outside variable,
    mirroring §3.2.1's root construction)."""
    roots: list[int] = []
    seen: set[int] = set()
    for choice in product(*[sorted(b) for b in bodies_in]):
        t = bt.with_false(bt.all_true(n), [head, *choice])
        for body in sorted(all_bodies, key=sorted):
            body_mask = bt.mask_of(body)
            if (t & body_mask) == body_mask:
                outside = sorted(body - conjunction)
                if not outside:  # body inside c: already hit by the choice
                    continue
                t = bt.with_false(t, [outside[0]])
        if t not in seen:
            seen.add(t)
            roots.append(t)
    return roots
