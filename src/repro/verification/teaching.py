"""Teaching sets: minimal example sequences that pin down a query (§5).

The paper relates verification sets to the *teaching sequences* of Goldman
and Kearns: the smallest sequence of labelled examples that lets any
consistent learner identify the target concept uniquely.  This module
computes exact teaching sets over an explicit hypothesis space (feasible
for the enumerable two/three-variable classes) and measures how close the
Fig. 6 verification sets come to that optimum — experiment E19.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.core.normalize import canonicalize, enumerate_objects
from repro.core.query import QhornQuery
from repro.core.tuples import Question

__all__ = [
    "LabelledExample",
    "teaching_set",
    "greedy_teaching_set",
    "verification_set_as_examples",
    "distinguishes_all",
]


@dataclass(frozen=True)
class LabelledExample:
    """One teaching example: an object plus the target's label for it."""

    question: Question
    label: bool


def _eliminates(
    example: LabelledExample, hypothesis: QhornQuery
) -> bool:
    return hypothesis.evaluate(example.question) != example.label


def distinguishes_all(
    examples: Sequence[LabelledExample],
    target: QhornQuery,
    hypotheses: Sequence[QhornQuery],
) -> bool:
    """Do the examples eliminate every non-equivalent hypothesis?"""
    target_form = canonicalize(target)
    for h in hypotheses:
        if canonicalize(h) == target_form:
            continue
        if not any(_eliminates(e, h) for e in examples):
            return False
    return True


def _example_pool(target: QhornQuery) -> list[LabelledExample]:
    return [
        LabelledExample(
            question=(q := Question.of(target.n, obj)),
            label=target.evaluate(q),
        )
        for obj in enumerate_objects(target.n, include_empty=True)
    ]


def teaching_set(
    target: QhornQuery,
    hypotheses: Sequence[QhornQuery],
    max_size: int = 4,
) -> list[LabelledExample] | None:
    """An *exact minimum* teaching set for ``target``, or ``None`` if none
    of size ≤ ``max_size`` exists.  Exponential in ``max_size``; intended
    for the n ≤ 3 enumerable classes."""
    pool = _example_pool(target)
    # keep only examples that eliminate something (smaller search space)
    target_form = canonicalize(target)
    rivals = [h for h in hypotheses if canonicalize(h) != target_form]
    useful = [
        e for e in pool if any(_eliminates(e, h) for h in rivals)
    ]
    for size in range(0, max_size + 1):
        for combo in combinations(useful, size):
            if distinguishes_all(combo, target, hypotheses):
                return list(combo)
    return None


def greedy_teaching_set(
    target: QhornQuery, hypotheses: Sequence[QhornQuery]
) -> list[LabelledExample]:
    """Greedy set-cover teaching set — near-minimal, fast enough for the
    full two/three-variable classes."""
    target_form = canonicalize(target)
    remaining = [
        h for h in hypotheses if canonicalize(h) != target_form
    ]
    pool = _example_pool(target)
    chosen: list[LabelledExample] = []
    while remaining:
        best, eliminated = None, []
        for e in pool:
            hit = [h for h in remaining if _eliminates(e, h)]
            if len(hit) > len(eliminated):
                best, eliminated = e, hit
        if best is None:
            raise RuntimeError(
                "hypothesis space contains an indistinguishable rival"
            )
        chosen.append(best)
        remaining = [h for h in remaining if h not in eliminated]
    return chosen


def verification_set_as_examples(target: QhornQuery) -> list[LabelledExample]:
    """Fig. 6's verification set, viewed as a labelled teaching sequence."""
    from repro.verification.sets import build_verification_set

    return [
        LabelledExample(question=item.question, label=item.expected)
        for item in build_verification_set(target).questions
    ]
