"""Verbalization: render qhorn queries as English sentences.

The paper's premise is that users think in sentences ("a box with dark
chocolates — some sugar-free with nuts"), not in quantified logic.  This
module closes the presentation gap in the other direction: a learned
:class:`~repro.core.query.QhornQuery` plus a proposition vocabulary becomes
a readable description the user can confirm — the last step of a
DataPlay-style loop and the counterpart of the parser.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.query import QhornQuery

__all__ = ["verbalize", "verbalize_expression"]


def _join(names: Sequence[str]) -> str:
    names = list(names)
    if not names:
        return ""
    if len(names) == 1:
        return names[0]
    return ", ".join(names[:-1]) + " and " + names[-1]


def _names_for(query: QhornQuery, names: Sequence[str] | None) -> list[str]:
    if names is None:
        return [f"p{i + 1}" for i in range(query.n)]
    if len(names) != query.n:
        raise ValueError(
            f"need {query.n} proposition names, got {len(names)}"
        )
    return list(names)


def verbalize_expression(
    expression, names: Sequence[str], noun: str = "tuple"
) -> str:
    """One expression as a sentence, e.g. ``every chocolate that is dark
    must be sugar-free``."""
    from repro.core.expressions import ExistentialConjunction, UniversalHorn

    if isinstance(expression, UniversalHorn):
        head = names[expression.head]
        if expression.is_bodyless:
            return f"every {noun} is {head}"
        body = _join([names[v] for v in sorted(expression.body)])
        return f"every {noun} that is {body} is also {head}"
    if isinstance(expression, ExistentialConjunction):
        conj = _join([names[v] for v in sorted(expression.variables)])
        return f"at least one {noun} is {conj}"
    raise TypeError(f"cannot verbalize {type(expression).__name__}")


def verbalize(
    query: QhornQuery,
    names: Sequence[str] | None = None,
    noun: str = "tuple",
    group_noun: str = "set",
) -> str:
    """The whole query as an English description.

    >>> verbalize(parse_query("∀x1 ∃x2x3"),
    ...           names=["dark", "sugar-free", "nutty"], noun="chocolate")
    'a set where every chocolate is dark, and at least one chocolate is
     sugar-free and nutty'
    """
    names = _names_for(query, names)
    sentences = [
        verbalize_expression(u, names, noun)
        for u in sorted(query.universals)
    ] + [
        verbalize_expression(e, names, noun)
        for e in sorted(query.existentials)
    ]
    if not sentences:
        return f"any {group_noun} at all"
    return f"a {group_noun} where " + ", and ".join(sentences)
