"""Interactive example-driven query specification sessions (§1, §5)."""

from repro.interactive.session import (
    CorrectionLoop,
    LearningSession,
    SessionResult,
    SessionSnapshot,
    SnapshotError,
    VerificationSession,
)
from repro.interactive.transcript import Transcript, TranscriptEntry

__all__ = [
    "CorrectionLoop",
    "LearningSession",
    "SessionResult",
    "SessionSnapshot",
    "SnapshotError",
    "Transcript",
    "TranscriptEntry",
    "VerificationSession",
]
