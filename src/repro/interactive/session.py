"""DataPlay-style interactive sessions (§1, §5).

A :class:`LearningSession` wires a learner to any membership oracle, records
the full transcript (optionally rendered into the data domain so the user
sees chocolate boxes rather than bit strings), and implements the paper's
error-recovery story: when the user corrects an earlier response, "the query
learning algorithm restart[s] query learning from the point of error" — the
corrected prefix is replayed (learners are deterministic given responses),
and live answering resumes after it.

:class:`CorrectionLoop` automates that cycle against a noisy simulated user
until the transcript is clean, which is experiment E14.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.interactive.transcript import Transcript
from repro.oracle.base import MembershipOracle, QueryOracle, ask_all
from repro.oracle.noisy import NoisyOracle, ReplayOracle
from repro.verification.verifier import VerificationOutcome, verify_query

__all__ = ["SessionResult", "LearningSession", "CorrectionLoop", "VerificationSession"]

LearnerFactory = Callable[[MembershipOracle], object]


class _TranscriptOracle:
    """Internal wrapper: records every exchange into a transcript."""

    def __init__(
        self,
        inner: MembershipOracle,
        transcript: Transcript,
        renderer: Callable[[Question], str] | None,
    ) -> None:
        self.inner = inner
        self.n = inner.n
        self.transcript = transcript
        self.renderer = renderer

    def ask(self, question: Question) -> bool:
        response = self.inner.ask(question)
        self.transcript.record(question, response, self.renderer)
        return response

    def ask_many(self, questions) -> list[bool]:
        """Forward the batch and record every exchange in question order,
        so the replay/correction machinery sees the same positional
        transcript as a sequential run."""
        questions = list(questions)
        responses = ask_all(self.inner, questions)
        for question, response in zip(questions, responses):
            self.transcript.record(question, response, self.renderer)
        return responses


@dataclass
class SessionResult:
    """What a learning session produced."""

    query: QhornQuery
    transcript: Transcript
    learner_result: object
    restarts: int = 0

    @property
    def questions_asked(self) -> int:
        return len(self.transcript)


class LearningSession:
    """One example-driven query specification session.

    Parameters
    ----------
    learner_factory:
        Builds a learner from an oracle; the learner must expose ``learn()``
        returning an object with a ``query`` attribute (both provided
        learners do).
    oracle:
        The user.  Simulated, noisy, adversarial or human.
    renderer:
        Optional ``Question -> str`` used to render questions into the data
        domain for the transcript (e.g. ``vocabulary.render_question``).
    """

    def __init__(
        self,
        learner_factory: LearnerFactory,
        oracle: MembershipOracle,
        renderer: Callable[[Question], str] | None = None,
    ) -> None:
        self.learner_factory = learner_factory
        self.oracle = oracle
        self.renderer = renderer

    def run(self) -> SessionResult:
        transcript = Transcript()
        wrapped = _TranscriptOracle(self.oracle, transcript, self.renderer)
        learner = self.learner_factory(wrapped)
        result = learner.learn()  # type: ignore[attr-defined]
        return SessionResult(
            query=result.query, transcript=transcript, learner_result=result
        )

    def rerun_with_correction(
        self,
        previous: SessionResult,
        error_index: int,
        corrected_response: bool,
        live: MembershipOracle | None = None,
    ) -> SessionResult:
        """Restart from the point of error (§5).

        Responses before ``error_index`` are replayed verbatim, the response
        at ``error_index`` is replaced by ``corrected_response``, and
        subsequent questions go to ``live`` (default: the session's oracle).
        """
        prefix = previous.transcript.responses()[:error_index]
        prefix.append(corrected_response)
        replay = ReplayOracle(prefix, live or self.oracle)
        transcript = Transcript()
        wrapped = _TranscriptOracle(replay, transcript, self.renderer)
        learner = self.learner_factory(wrapped)
        result = learner.learn()  # type: ignore[attr-defined]
        return SessionResult(
            query=result.query,
            transcript=transcript,
            learner_result=result,
            restarts=previous.restarts + 1,
        )


@dataclass
class CorrectionLoop:
    """Automated noisy-user experiment (E14).

    Repeatedly: run a session against a noisy user; have the (simulated)
    user review the history against their true intent; correct the earliest
    wrong response; restart from that point.  Converges because each restart
    replays a strictly longer verified-correct prefix.
    """

    learner_factory: LearnerFactory
    target: QhornQuery
    p_flip: float
    rng: random.Random
    max_restarts: int = 100
    restarts_used: int = field(default=0, init=False)

    def run(self) -> SessionResult:
        truth = QueryOracle(self.target)
        verified_prefix: list[bool] = []
        result: SessionResult | None = None
        for attempt in range(self.max_restarts + 1):
            noisy = NoisyOracle(truth, self.p_flip, self.rng)
            oracle = ReplayOracle(verified_prefix, noisy)
            session = LearningSession(self.learner_factory, oracle)
            result = session.run()
            result.restarts = attempt
            error = self._first_error(result.transcript)
            if error is None:
                self.restarts_used = attempt
                return result
            # The user reviews the history and fixes the earliest mistake;
            # everything before it is now double-checked and kept.
            responses = result.transcript.responses()
            verified_prefix = responses[:error]
            verified_prefix.append(
                truth.ask(result.transcript.entries[error].question)
            )
        raise RuntimeError(
            f"no clean transcript after {self.max_restarts} restarts"
        )

    def _first_error(self, transcript: Transcript) -> int | None:
        truth = QueryOracle(self.target)
        for entry in transcript:
            if truth.ask(entry.question) != entry.response:
                return entry.index
        return None


class VerificationSession:
    """Interactive verification: show each verification question with the
    given query's label and collect the user's agreement (§4)."""

    def __init__(
        self,
        given: QhornQuery,
        oracle: MembershipOracle,
        renderer: Callable[[Question], str] | None = None,
    ) -> None:
        self.given = given
        self.oracle = oracle
        self.renderer = renderer
        self.transcript = Transcript()

    def run(self, stop_at_first: bool = True) -> VerificationOutcome:
        wrapped = _TranscriptOracle(self.oracle, self.transcript, self.renderer)
        return verify_query(self.given, wrapped, stop_at_first=stop_at_first)
