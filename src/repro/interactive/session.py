"""DataPlay-style interactive sessions (§1, §5).

A :class:`LearningSession` wires a learner to any membership oracle, records
the full transcript (optionally rendered into the data domain so the user
sees chocolate boxes rather than bit strings), and implements the paper's
error-recovery story: when the user corrects an earlier response, "the query
learning algorithm restart[s] query learning from the point of error" — the
corrected prefix is replayed (learners are deterministic given responses),
and live answering resumes after it.

On top of the sans-io step protocol (DESIGN.md §2e) the session is also a
*resumable service*: :meth:`LearningSession.step` /
:meth:`~LearningSession.feed` expose the learner's rounds directly (no
oracle required — a server forwards rounds to a remote user and feeds the
labels back), :meth:`~LearningSession.snapshot` parks the session as a
serializable replay log, and :meth:`~LearningSession.resume` replays that
log through a fresh learner to the exact parked round.  Because learners
are deterministic given responses, the transcript *is* the session state —
the same property :meth:`~LearningSession.rerun_with_correction` has
always exploited.

:class:`CorrectionLoop` automates the correction cycle against a noisy
simulated user until the transcript is clean, which is experiment E14.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.interactive.transcript import Transcript
from repro.oracle.base import MembershipOracle, QueryOracle, ask_all
from repro.oracle.noisy import NoisyOracle, ReplayOracle
from repro.protocol.core import (
    Finished,
    LearnerProtocol,
    ProtocolError,
    Round,
)
from repro.protocol.wire import payload_from_dict, payload_to_dict
from repro.verification.verifier import VerificationOutcome, verify_query

__all__ = [
    "SessionResult",
    "SessionSnapshot",
    "SnapshotError",
    "LearningSession",
    "CorrectionLoop",
    "VerificationSession",
]

LearnerFactory = Callable[[MembershipOracle], object]


class SnapshotError(ProtocolError):
    """A session snapshot could not be taken or replayed."""


class _TranscriptOracle:
    """Internal wrapper: records every exchange into a transcript."""

    def __init__(
        self,
        inner: MembershipOracle,
        transcript: Transcript,
        renderer: Callable[[Question], str] | None,
    ) -> None:
        self.inner = inner
        self.n = inner.n
        self.transcript = transcript
        self.renderer = renderer

    def ask(self, question: Question) -> bool:
        response = self.inner.ask(question)
        self.transcript.record(question, response, self.renderer)
        return response

    def ask_many(self, questions) -> list[bool]:
        """Forward the batch and record every exchange in question order,
        so the replay/correction machinery sees the same positional
        transcript as a sequential run."""
        questions = list(questions)
        responses = ask_all(self.inner, questions)
        for question, response in zip(questions, responses):
            self.transcript.record(question, response, self.renderer)
        return responses


class _ConstructionOracle:
    """Placeholder oracle for step-driven sessions: carries ``n`` so
    learner constructors can size themselves, refuses to answer — a
    sans-io learner's :meth:`steps` never touches its oracle."""

    def __init__(self, n: int) -> None:
        self.n = n

    def _refuse(self) -> bool:
        raise ProtocolError(
            "step-driven session: answers arrive via feed(), not the oracle"
        )

    def ask(self, question: Question) -> bool:
        return self._refuse()

    def ask_many(self, questions) -> list[bool]:
        return self._refuse()


@dataclass
class SessionResult:
    """What a learning session produced."""

    query: QhornQuery
    transcript: Transcript
    learner_result: object
    restarts: int = 0

    @property
    def questions_asked(self) -> int:
        return len(self.transcript)


@dataclass
class SessionSnapshot:
    """A parked learning session as a serializable replay log (§5).

    ``responses`` is the full answer prefix fed so far; because learners
    are deterministic given responses, replaying it through a fresh
    learner reproduces every round — the snapshot *subsumes* the old
    correction-restart mechanism (truncate/patch ``responses`` and resume
    to restart "from the point of error").  ``pending`` optionally pins
    the parked round's questions so :meth:`LearningSession.resume` can
    verify the replay converged to the same state.
    """

    n: int
    responses: list[bool] = field(default_factory=list)
    #: Membership questions or expression payloads (DESIGN.md §2e).
    pending: list | None = None
    pending_batched: bool = True
    restarts: int = 0

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "n": self.n,
            "responses": [bool(r) for r in self.responses],
            "pending": (
                None
                if self.pending is None
                else [payload_to_dict(q) for q in self.pending]
            ),
            "pending_batched": self.pending_batched,
            "restarts": self.restarts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionSnapshot":
        if data.get("version") != 1:
            raise SnapshotError(
                f"unsupported snapshot version {data.get('version')!r}"
            )
        pending = data.get("pending")
        return cls(
            n=int(data["n"]),
            responses=[bool(r) for r in data["responses"]],
            pending=(
                None
                if pending is None
                else [payload_from_dict(q) for q in pending]
            ),
            pending_batched=bool(data.get("pending_batched", True)),
            restarts=int(data.get("restarts", 0)),
        )


class LearningSession:
    """One example-driven query specification session.

    Parameters
    ----------
    learner_factory:
        Builds a learner from an oracle; the learner must expose ``learn()``
        returning an object with a ``query`` attribute (all provided
        learners do).  For the step-driven mode the learner must also be
        sans-io (expose ``steps()``), which every learner in
        :mod:`repro.learning` is.
    oracle:
        The user.  Simulated, noisy, adversarial or human.  Optional for
        step-driven sessions, where the caller supplies answers through
        :meth:`feed`.
    renderer:
        Optional ``Question -> str`` used to render questions into the data
        domain for the transcript (e.g. ``vocabulary.render_question``).
    n:
        Number of Boolean variables; required only when no oracle is
        attached (step-driven sessions size the learner from it).
    """

    def __init__(
        self,
        learner_factory: LearnerFactory,
        oracle: MembershipOracle | None = None,
        renderer: Callable[[Question], str] | None = None,
        n: int | None = None,
    ) -> None:
        self.learner_factory = learner_factory
        self.oracle = oracle
        self.renderer = renderer
        self._n = n
        # Step-driven state (None until start()/resume()).
        self._protocol: LearnerProtocol | None = None
        self.transcript: Transcript = Transcript()
        self._event: Round | Finished | None = None
        self._result: SessionResult | None = None
        self._restarts = 0

    @property
    def n(self) -> int:
        if self.oracle is not None:
            return self.oracle.n
        if self._n is None:
            raise ProtocolError(
                "session needs an oracle or an explicit n to size the learner"
            )
        return self._n

    # ------------------------------------------------------------------
    # Pull-driven mode (the historical API)
    # ------------------------------------------------------------------
    def _run(self, oracle: MembershipOracle, restarts: int = 0) -> SessionResult:
        """Shared run body: wrap ``oracle`` in a transcript recorder,
        build the learner, learn.  Both :meth:`run` and
        :meth:`rerun_with_correction` are this with different oracles."""
        transcript = Transcript()
        wrapped = _TranscriptOracle(oracle, transcript, self.renderer)
        learner = self.learner_factory(wrapped)
        result = learner.learn()  # type: ignore[attr-defined]
        return SessionResult(
            query=result.query,  # type: ignore[attr-defined]
            transcript=transcript,
            learner_result=result,
            restarts=restarts,
        )

    def run(self) -> SessionResult:
        if self.oracle is None:
            raise ProtocolError("run() needs an attached oracle")
        return self._run(self.oracle)

    def rerun_with_correction(
        self,
        previous: SessionResult,
        error_index: int,
        corrected_response: bool,
        live: MembershipOracle | None = None,
    ) -> SessionResult:
        """Restart from the point of error (§5).

        Responses before ``error_index`` are replayed verbatim, the response
        at ``error_index`` is replaced by ``corrected_response``, and
        subsequent questions go to ``live`` (default: the session's oracle).
        """
        prefix = previous.transcript.responses()[:error_index]
        prefix.append(corrected_response)
        replay = ReplayOracle(prefix, live or self.oracle)
        return self._run(replay, restarts=previous.restarts + 1)

    # ------------------------------------------------------------------
    # Step-driven mode (sans-io, DESIGN.md §2e)
    # ------------------------------------------------------------------
    def start(self) -> Round | Finished:
        """Begin the step-driven dialogue: run the learner to its first
        round.  The session owns a live transcript; answers arrive via
        :meth:`feed`."""
        if self._protocol is not None:
            raise ProtocolError("session already started")
        learner = self.learner_factory(_ConstructionOracle(self.n))
        steps = getattr(learner, "steps", None)
        if not callable(steps):
            raise ProtocolError(
                f"{type(learner).__name__} is not a sans-io learner "
                "(no steps() method)"
            )
        self._protocol = LearnerProtocol(steps())
        self.transcript = Transcript()
        return self._absorb(self._protocol.start())

    def step(self) -> Round | Finished:
        """The pending event: what the learner needs next.  Starts the
        dialogue on first call; afterwards returns the unanswered round
        (or the terminal :class:`Finished`) without advancing."""
        if self._protocol is None:
            return self.start()
        if self._event is None:  # pragma: no cover - defensive
            raise ProtocolError("session has no pending event")
        return self._event

    def feed(self, answers: Sequence[bool]) -> Round | Finished:
        """Answer the pending round; returns the next round or the result.

        Every (question, answer) pair is recorded into the session
        transcript in question order — the same positional log the
        pull-driven mode keeps, and the replay log that
        :meth:`snapshot`/:meth:`resume` park and restore.
        """
        if self._protocol is None:
            raise ProtocolError("feed() before start()")
        pending = self._protocol.pending
        if pending is None:
            raise ProtocolError("no pending round to feed")
        if len(answers) != len(pending.questions):
            raise ProtocolError(
                f"pending round has {len(pending.questions)} questions, "
                f"got {len(answers)} answers"
            )
        for question, answer in zip(pending.questions, answers):
            self.transcript.record(question, bool(answer), self.renderer)
        return self._absorb(self._protocol.feed(answers))

    def _absorb(self, event: Round | Finished) -> Round | Finished:
        self._event = event
        if isinstance(event, Finished):
            result = event.result
            self._result = SessionResult(
                query=result.query,  # type: ignore[attr-defined]
                transcript=self.transcript,
                learner_result=result,
                restarts=self._restarts,
            )
        return event

    @property
    def finished(self) -> bool:
        return self._result is not None

    @property
    def result(self) -> SessionResult:
        if self._result is None:
            raise ProtocolError("session has not finished")
        return self._result

    # ------------------------------------------------------------------
    # Parking: snapshot / resume
    # ------------------------------------------------------------------
    def snapshot(self) -> SessionSnapshot:
        """Park the session: the fed responses plus the pending round.

        Valid any time after :meth:`start` (including after finishing,
        when ``pending`` is ``None``).  The snapshot is plain data — see
        :meth:`SessionSnapshot.to_dict` — so a server can serialize it
        between user answers.
        """
        if self._protocol is None:
            raise ProtocolError("snapshot() before start()")
        pending = self._protocol.pending
        return SessionSnapshot(
            n=self.n,
            responses=self.transcript.responses(),
            pending=None if pending is None else list(pending.questions),
            pending_batched=pending.batched if pending is not None else True,
            restarts=self._restarts,
        )

    def resume(self, snapshot: SessionSnapshot) -> Round | Finished:
        """Rebuild the parked state by replaying the snapshot's responses
        through a fresh learner (learners are deterministic given
        responses).  Returns the pending round — verified against the
        snapshot's, if it pinned one — and the session continues with
        :meth:`feed` as if it had never been parked."""
        if self._protocol is not None:
            raise ProtocolError("resume() needs a fresh session")
        if snapshot.n != self.n:
            raise SnapshotError(
                f"snapshot is over n={snapshot.n}, session over n={self.n}"
            )
        self._restarts = snapshot.restarts
        event = self.start()
        responses = snapshot.responses
        position = 0
        while isinstance(event, Round) and position < len(responses):
            size = len(event.questions)
            if position + size > len(responses):
                raise SnapshotError(
                    f"replay log ends mid-round: round of {size} questions "
                    f"at position {position}, {len(responses)} responses"
                )
            event = self.feed(responses[position : position + size])
            position += size
        if position != len(responses):
            raise SnapshotError(
                f"replay log has {len(responses) - position} unconsumed "
                "responses past the learner's final round"
            )
        if isinstance(event, Round) and snapshot.pending is not None:
            if (
                list(event.questions) != snapshot.pending
                or event.batched != snapshot.pending_batched
            ):
                raise SnapshotError(
                    "replay diverged: pending round does not match the "
                    "snapshot (different learner factory or version?)"
                )
        return event


@dataclass
class CorrectionLoop:
    """Automated noisy-user experiment (E14).

    Repeatedly: run a session against a noisy user; have the (simulated)
    user review the history against their true intent; correct the earliest
    wrong response; restart from that point.  Converges because each restart
    replays a strictly longer verified-correct prefix.
    """

    learner_factory: LearnerFactory
    target: QhornQuery
    p_flip: float
    rng: random.Random
    max_restarts: int = 100
    restarts_used: int = field(default=0, init=False)

    def run(self) -> SessionResult:
        truth = QueryOracle(self.target)
        verified_prefix: list[bool] = []
        result: SessionResult | None = None
        for attempt in range(self.max_restarts + 1):
            noisy = NoisyOracle(truth, self.p_flip, self.rng)
            oracle = ReplayOracle(verified_prefix, noisy)
            session = LearningSession(self.learner_factory, oracle)
            result = session.run()
            result.restarts = attempt
            error = self._first_error(result.transcript)
            if error is None:
                self.restarts_used = attempt
                return result
            # The user reviews the history and fixes the earliest mistake;
            # everything before it is now double-checked and kept.
            responses = result.transcript.responses()
            verified_prefix = responses[:error]
            verified_prefix.append(
                truth.ask(result.transcript.entries[error].question)
            )
        raise RuntimeError(
            f"no clean transcript after {self.max_restarts} restarts"
        )

    def _first_error(self, transcript: Transcript) -> int | None:
        truth = QueryOracle(self.target)
        for entry in transcript:
            if truth.ask(entry.question) != entry.response:
                return entry.index
        return None


class VerificationSession:
    """Interactive verification: show each verification question with the
    given query's label and collect the user's agreement (§4)."""

    def __init__(
        self,
        given: QhornQuery,
        oracle: MembershipOracle,
        renderer: Callable[[Question], str] | None = None,
    ) -> None:
        self.given = given
        self.oracle = oracle
        self.renderer = renderer
        self.transcript = Transcript()

    def run(self, stop_at_first: bool = True) -> VerificationOutcome:
        wrapped = _TranscriptOracle(self.oracle, self.transcript, self.renderer)
        return verify_query(self.given, wrapped, stop_at_first=stop_at_first)
