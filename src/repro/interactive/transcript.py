"""Session transcripts: the response history the paper's UI keeps (§5).

"If we provide users with a history of all their responses to the different
membership questions, users can double-check their responses and change an
incorrect response."  A :class:`Transcript` is that history: every question
asked, optionally rendered into the data domain, with the response given.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.tuples import Question

__all__ = ["TranscriptEntry", "Transcript"]


@dataclass(frozen=True)
class TranscriptEntry:
    """One question/response exchange."""

    index: int
    question: Question
    response: bool
    rendered: str = ""

    def describe(self) -> str:
        label = "answer" if self.response else "non-answer"
        body = self.rendered or self.question.format()
        return f"#{self.index} [{label}]\n{body}"


@dataclass
class Transcript:
    """Ordered history of all exchanges in a session."""

    entries: list[TranscriptEntry] = field(default_factory=list)

    def record(
        self,
        question: Question,
        response: bool,
        renderer: Callable[[Question], str] | None = None,
    ) -> TranscriptEntry:
        entry = TranscriptEntry(
            index=len(self.entries),
            question=question,
            response=response,
            rendered=renderer(question) if renderer else "",
        )
        self.entries.append(entry)
        return entry

    def responses(self) -> list[bool]:
        return [e.response for e in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def format_history(self) -> str:
        """The review screen: every exchange, oldest first."""
        return "\n\n".join(e.describe() for e in self.entries)
