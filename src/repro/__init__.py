"""repro — qhorn: learning and verifying quantified Boolean queries by example.

A complete implementation of the PODS 2013 paper by Abouzied, Angluin,
Papadimitriou, Hellerstein and Silberschatz: the qhorn query class over
nested relations, exact learning algorithms for qhorn-1 and role-preserving
qhorn from membership questions, O(k) verification sets, the lower-bound
adversaries, and the nested-relational data domain that renders Boolean
membership questions as concrete example objects.

Quickstart::

    import random
    from repro import parse_query, QueryOracle, CountingOracle, learn_qhorn1

    target = parse_query("∀x1x2→x3 ∃x4x5 ∀x6", n=6)
    oracle = CountingOracle(QueryOracle(target))
    result = learn_qhorn1(oracle)
    print(result.query.shorthand(), oracle.questions_asked)
"""

from repro.core.expressions import ExistentialConjunction, UniversalHorn
from repro.core.normalize import (
    CanonicalForm,
    brute_force_equivalent,
    canonicalize,
    equivalent,
    normalize,
)
from repro.core.parser import parse_query
from repro.core.query import QhornQuery
from repro.core.tuples import Question
from repro.data import (
    REGISTRY,
    BackendCapabilities,
    BackendLoadError,
    BackendRegistry,
    DbApiBackend,
    PooledConnectionSource,
    QueryEngine,
    SqlDialect,
    create_backend,
    get_dialect,
    parse_backend_opts,
)
from repro.learning import (
    Qhorn1Learner,
    Qhorn1Result,
    RolePreservingLearner,
    RolePreservingResult,
    learn_qhorn1,
    learn_role_preserving,
)
from repro.oracle import (
    CountingOracle,
    MembershipOracle,
    NoisyOracle,
    QueryOracle,
    RecordingOracle,
)
from repro.protocol import (
    AsyncDriver,
    Finished,
    LearnerProtocol,
    Round,
    SyncDriver,
    drive,
)

__version__ = "1.0.0"

__all__ = [
    "AsyncDriver",
    "BackendCapabilities",
    "BackendLoadError",
    "BackendRegistry",
    "CanonicalForm",
    "CountingOracle",
    "DbApiBackend",
    "PooledConnectionSource",
    "QueryEngine",
    "REGISTRY",
    "SqlDialect",
    "create_backend",
    "get_dialect",
    "parse_backend_opts",
    "ExistentialConjunction",
    "MembershipOracle",
    "NoisyOracle",
    "QhornQuery",
    "Qhorn1Learner",
    "Qhorn1Result",
    "Finished",
    "LearnerProtocol",
    "Round",
    "SyncDriver",
    "Question",
    "QueryOracle",
    "RecordingOracle",
    "RolePreservingLearner",
    "RolePreservingResult",
    "UniversalHorn",
    "brute_force_equivalent",
    "canonicalize",
    "drive",
    "equivalent",
    "learn_qhorn1",
    "learn_role_preserving",
    "normalize",
    "parse_query",
]
