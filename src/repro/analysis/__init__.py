"""Analysis utilities: model fitting, information bounds, tables, revision."""

from repro.analysis.fitting import (
    MODELS,
    ModelFit,
    best_model,
    empirical_exponent,
    fit_model,
)
from repro.analysis.information import (
    bell_number,
    existential_bound_bits,
    existential_bound_closed_form,
    qhorn1_lower_bound_bits,
    qhorn1_upper_bound_bits,
    unrestricted_query_bits,
)
from repro.analysis.revision import hamming, profile_distance, revision_distance
from repro.analysis.tables import render_kv, render_table

__all__ = [
    "MODELS",
    "ModelFit",
    "bell_number",
    "best_model",
    "empirical_exponent",
    "existential_bound_bits",
    "existential_bound_closed_form",
    "fit_model",
    "hamming",
    "profile_distance",
    "qhorn1_lower_bound_bits",
    "qhorn1_upper_bound_bits",
    "render_kv",
    "render_table",
    "revision_distance",
    "unrestricted_query_bits",
]
