"""ASCII table rendering for benchmark reports.

Every benchmark prints the table or figure it regenerates; this keeps that
output consistent and diff-friendly for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "render_kv"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule, e.g.::

        n    questions  n lg n
        ---  ---------  ------
        8    41         24.0
    """
    cells = [[str(h) for h in headers]] + [
        [_fmt(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_kv(pairs: Sequence[tuple[str, Any]], title: str | None = None) -> str:
    """Aligned key/value block for scalar results."""
    width = max(len(k) for k, _ in pairs)
    lines = [title] if title else []
    lines += [f"{k.ljust(width)} : {_fmt(v)}" for k, v in pairs]
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.3e}"
    return str(value)
