"""Stitch benchmark result tables into one markdown report.

Every benchmark writes its regenerated table to
``benchmarks/results/<experiment>.txt``; this module (also runnable as
``python -m repro.analysis.reporting``) collects them into a single
``RESULTS.md`` so a full reproduction run leaves one reviewable artifact.
"""

from __future__ import annotations

import pathlib
import sys

__all__ = ["collect_results", "write_report"]

HEADER = """# RESULTS — regenerated experiment tables

Auto-collected from `benchmarks/results/` (run
`pytest benchmarks/ --benchmark-only` to refresh, then
`python -m repro.analysis.reporting`).  Paper-vs-measured commentary lives
in EXPERIMENTS.md; this file is the raw regenerated output.
"""


def collect_results(results_dir: pathlib.Path) -> list[tuple[str, str]]:
    """All (experiment-id, table text) pairs, sorted by experiment id."""
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    out = []
    for path in sorted(results_dir.glob("*.txt")):
        out.append((path.stem, path.read_text().rstrip()))
    if not out:
        raise FileNotFoundError(
            f"{results_dir} holds no result tables; run the benchmarks first"
        )
    return out


def write_report(
    results_dir: pathlib.Path, output: pathlib.Path
) -> pathlib.Path:
    """Write the combined RESULTS.md and return its path."""
    sections = collect_results(results_dir)
    parts = [HEADER]
    for name, table in sections:
        parts.append(f"## {name}\n\n```\n{table}\n```\n")
    output.write_text("\n".join(parts))
    return output


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = pathlib.Path(args[0]) if args else pathlib.Path(".")
    results = root / "benchmarks" / "results"
    output = root / "RESULTS.md"
    path = write_report(results, output)
    print(f"wrote {path} ({len(collect_results(results))} experiments)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
