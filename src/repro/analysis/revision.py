"""Query revision distance (§6 future work, implemented).

"The Boolean-lattice provides us with a natural way to measure how close two
queries are: the distance between the distinguishing tuples of the given and
intended queries."  We realize that metric as a minimum-cost matching
between the two queries' distinguishing-tuple sets under Hamming distance,
with unmatched tuples charged their distance to the closest point of the
other profile (⊥ = full flip when the other side is empty).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core import tuples as bt
from repro.core.normalize import distinguishing_profile
from repro.core.query import QhornQuery

__all__ = ["hamming", "profile_distance", "revision_distance"]


def hamming(a: int, b: int) -> int:
    """Hamming distance between two Boolean tuples (lattice path length)."""
    return bt.popcount(a ^ b)


def profile_distance(
    left: frozenset[int], right: frozenset[int], n: int
) -> int:
    """Minimum-cost matching between two distinguishing-tuple sets.

    Sets of different sizes are padded with a virtual tuple at distance
    ``n`` (the cost of introducing or deleting an expression outright).
    """
    ls, rs = sorted(left), sorted(right)
    size = max(len(ls), len(rs))
    if size == 0:
        return 0
    cost = np.full((size, size), float(n))
    for i, a in enumerate(ls):
        for j, b in enumerate(rs):
            cost[i, j] = hamming(a, b)
    rows, cols = linear_sum_assignment(cost)
    return int(cost[rows, cols].sum())


def revision_distance(given: QhornQuery, intended: QhornQuery) -> int:
    """Lattice distance between two queries' distinguishing-tuple profiles.

    Zero iff the queries are semantically equivalent (Proposition 4.1);
    small values indicate a revision algorithm should need few questions.
    """
    if given.n != intended.n:
        raise ValueError("queries must share a variable count")
    g_uni, g_exi = distinguishing_profile(given)
    i_uni, i_exi = distinguishing_profile(intended)
    return profile_distance(g_uni, i_uni, given.n) + profile_distance(
        g_exi, i_exi, given.n
    )
