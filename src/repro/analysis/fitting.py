"""Complexity-model fitting for the scaling experiments.

The theorems predict question counts of the form ``O(n lg n)``, ``O(n²)``,
``O(n^{θ+1})`` and ``O(kn lg n)``.  The experiments measure counts over
sweeps of ``n`` (and ``k``, ``θ``) and fit candidate models by least
squares, reporting per-model R² so EXPERIMENTS.md can state which growth law
the measurements follow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["ModelFit", "MODELS", "fit_model", "best_model", "empirical_exponent"]

#: Candidate single-variable growth models: name -> basis function of n.
MODELS: dict[str, Callable[[float], float]] = {
    "n": lambda n: n,
    "n log n": lambda n: n * math.log2(max(n, 2)),
    "n^2": lambda n: n * n,
    "n^2 log n": lambda n: n * n * math.log2(max(n, 2)),
    "n^3": lambda n: n**3,
    "2^n": lambda n: 2.0**n,
    "log n": lambda n: math.log2(max(n, 2)),
}


@dataclass(frozen=True)
class ModelFit:
    """A least-squares fit ``y ≈ a·model(n) + b``."""

    model: str
    a: float
    b: float
    r_squared: float

    def predict(self, n: float) -> float:
        return self.a * MODELS[self.model](n) + self.b

    def describe(self) -> str:
        return (
            f"{self.model}: y ≈ {self.a:.3f}·{self.model} + {self.b:.1f} "
            f"(R²={self.r_squared:.4f})"
        )


def fit_model(
    ns: Sequence[float], ys: Sequence[float], model: str
) -> ModelFit:
    """Least-squares fit of ``ys`` against one named basis function."""
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}; choose from {sorted(MODELS)}")
    if len(ns) != len(ys) or len(ns) < 2:
        raise ValueError("need at least two (n, y) points")
    basis = MODELS[model]
    x = np.array([basis(n) for n in ns], dtype=float)
    y = np.array(ys, dtype=float)
    design = np.column_stack([x, np.ones_like(x)])
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    pred = design @ coef
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ModelFit(model=model, a=float(coef[0]), b=float(coef[1]), r_squared=r2)


def best_model(
    ns: Sequence[float],
    ys: Sequence[float],
    candidates: Sequence[str] = ("n", "n log n", "n^2"),
) -> ModelFit:
    """The candidate model with the highest R² on the data."""
    fits = [fit_model(ns, ys, m) for m in candidates]
    return max(fits, key=lambda f: f.r_squared)


def empirical_exponent(ns: Sequence[float], ys: Sequence[float]) -> float:
    """Slope of log y vs log n — the measured polynomial degree."""
    x = np.log(np.array(ns, dtype=float))
    y = np.log(np.array(ys, dtype=float))
    design = np.column_stack([x, np.ones_like(x)])
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    return float(coef[0])
