"""A small experiment runner: seeded sweeps with aggregate records.

The benchmark suite repeats one pattern everywhere: sweep a parameter,
repeat over seeds, aggregate a measured quantity, render a table.  This
module packages that pattern so ad-hoc studies (notebooks, new benches)
stay three lines long and deterministically reproducible.

Sweeps that simulate oracle interaction can opt into cross-run answer
persistence (the ROADMAP item): pass ``cache_dir=`` and every measure
call receives a ``cache`` callable wrapping any membership oracle in a
:class:`~repro.oracle.persistent.PersistentCachingOracle` backed by a
per-cell SQLite store, so repeated sweeps — and CI re-runs restoring the
directory — reuse answers on disk instead of re-simulating the user.
"""

from __future__ import annotations

import hashlib
import random
import re
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.analysis.tables import render_table
from repro.oracle.base import MembershipOracle
from repro.oracle.persistent import PersistentCachingOracle

__all__ = ["Measurement", "SweepResult", "run_sweep"]

#: Type of the ``cache`` argument handed to measure functions when a
#: sweep runs with ``cache_dir=``.
OracleCache = Callable[[MembershipOracle], PersistentCachingOracle]


def _slug(name: str) -> str:
    """Filesystem-safe sweep name for the per-sweep cache files."""
    cleaned = re.sub(r"[^A-Za-z0-9]+", "-", name).strip("-").lower()
    return cleaned or "sweep"


def _cell_seed(base_seed: int, parameter: Any, repeat: int) -> int:
    """Deterministic per-cell RNG seed, stable **across processes**.

    Python's built-in ``hash`` randomizes string hashing per process
    (PYTHONHASHSEED), which would make sweeps irreproducible between
    runs — and silently defeat ``cache_dir``, whose whole point is that
    a CI re-run regenerates the *same* questions and hits the stored
    answers.
    """
    digest = hashlib.blake2b(
        f"{base_seed}|{parameter!r}|{repeat}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class Measurement:
    """One aggregated cell of a sweep."""

    parameter: Any
    mean: float
    minimum: float
    maximum: float
    stdev: float
    samples: int

    def row(self) -> list[Any]:
        return [
            self.parameter,
            f"{self.mean:.1f}",
            f"{self.minimum:.0f}",
            f"{self.maximum:.0f}",
            f"{self.stdev:.1f}",
            self.samples,
        ]


@dataclass
class SweepResult:
    """All measurements of one sweep plus rendering helpers."""

    name: str
    parameter_name: str
    measurements: list[Measurement] = field(default_factory=list)

    def parameters(self) -> list[Any]:
        return [m.parameter for m in self.measurements]

    def means(self) -> list[float]:
        return [m.mean for m in self.measurements]

    def table(self) -> str:
        return render_table(
            [self.parameter_name, "mean", "min", "max", "stdev", "samples"],
            [m.row() for m in self.measurements],
            title=self.name,
        )


def run_sweep(
    name: str,
    parameters: Sequence[Any],
    measure: Callable[..., float],
    seeds: int = 10,
    base_seed: int = 0,
    parameter_name: str = "parameter",
    cache_dir: str | Path | None = None,
) -> SweepResult:
    """Measure ``measure(parameter, rng)`` over ``seeds`` seeded repeats
    per parameter value.

    Each (parameter, repeat) pair gets its own deterministic RNG —
    seeded stably across processes (PYTHONHASHSEED-independent) — so
    cells are reproducible independently of sweep order *and* of which
    interpreter runs them.

    With ``cache_dir`` set (opt-in), ``measure`` is called as
    ``measure(parameter, rng, cache)``, where ``cache(oracle)`` wraps a
    membership oracle in a
    :class:`~repro.oracle.persistent.PersistentCachingOracle`.  Each
    wrap gets its **own** SQLite store, keyed by sweep name, parameter
    position, repeat and wrap order
    (``<slug>-p<j>-r<i>-o<k>.sqlite``) — per-cell stores rather than one
    shared file, because the persistent cache keys rows only on
    ``(n, tuples)`` and sweeps routinely build a *different* hidden
    target per cell; a shared store would silently answer one cell's
    questions with another target's labels.  A deterministic measure
    re-wraps in the same order every run, so a repeated sweep (or a CI
    re-run restoring the directory) hits the stored answers exactly, and
    caching never changes responses — only how many questions reach the
    wrapped oracle.  Every cache opened during a measure call is closed
    before the next one runs.
    """
    if seeds < 1:
        raise ValueError("need at least one seed")
    directory: Path | None = None
    if cache_dir is not None:
        directory = Path(cache_dir)
        directory.mkdir(parents=True, exist_ok=True)
    slug = _slug(name)

    def call(param_index: int, p: Any, repeat: int) -> float:
        rng = random.Random(_cell_seed(base_seed, p, repeat))
        if directory is None:
            return float(measure(p, rng))
        opened: list[PersistentCachingOracle] = []

        def cache(oracle: MembershipOracle) -> PersistentCachingOracle:
            path = (
                directory
                / f"{slug}-p{param_index}-r{repeat}-o{len(opened)}.sqlite"
            )
            wrapped = PersistentCachingOracle(oracle, path)
            opened.append(wrapped)
            return wrapped

        try:
            return float(measure(p, rng, cache))
        finally:
            for wrapped in opened:
                wrapped.close()

    result = SweepResult(name=name, parameter_name=parameter_name)
    for param_index, p in enumerate(parameters):
        values = [
            call(param_index, p, i) for i in range(seeds)
        ]
        result.measurements.append(
            Measurement(
                parameter=p,
                mean=statistics.mean(values),
                minimum=min(values),
                maximum=max(values),
                stdev=statistics.stdev(values) if len(values) > 1 else 0.0,
                samples=len(values),
            )
        )
    return result
