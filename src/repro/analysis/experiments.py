"""A small experiment runner: seeded sweeps with aggregate records.

The benchmark suite repeats one pattern everywhere: sweep a parameter,
repeat over seeds, aggregate a measured quantity, render a table.  This
module packages that pattern so ad-hoc studies (notebooks, new benches)
stay three lines long and deterministically reproducible.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.analysis.tables import render_table

__all__ = ["Measurement", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class Measurement:
    """One aggregated cell of a sweep."""

    parameter: Any
    mean: float
    minimum: float
    maximum: float
    stdev: float
    samples: int

    def row(self) -> list[Any]:
        return [
            self.parameter,
            f"{self.mean:.1f}",
            f"{self.minimum:.0f}",
            f"{self.maximum:.0f}",
            f"{self.stdev:.1f}",
            self.samples,
        ]


@dataclass
class SweepResult:
    """All measurements of one sweep plus rendering helpers."""

    name: str
    parameter_name: str
    measurements: list[Measurement] = field(default_factory=list)

    def parameters(self) -> list[Any]:
        return [m.parameter for m in self.measurements]

    def means(self) -> list[float]:
        return [m.mean for m in self.measurements]

    def table(self) -> str:
        return render_table(
            [self.parameter_name, "mean", "min", "max", "stdev", "samples"],
            [m.row() for m in self.measurements],
            title=self.name,
        )


def run_sweep(
    name: str,
    parameters: Sequence[Any],
    measure: Callable[[Any, random.Random], float],
    seeds: int = 10,
    base_seed: int = 0,
    parameter_name: str = "parameter",
) -> SweepResult:
    """Measure ``measure(parameter, rng)`` over ``seeds`` seeded repeats
    per parameter value.

    Each (parameter, repeat) pair gets its own deterministic RNG, so cells
    are reproducible independently of sweep order.
    """
    if seeds < 1:
        raise ValueError("need at least one seed")
    result = SweepResult(name=name, parameter_name=parameter_name)
    for p in parameters:
        values = [
            float(measure(p, random.Random(hash((base_seed, repr(p), i)))))
            for i in range(seeds)
        ]
        result.measurements.append(
            Measurement(
                parameter=p,
                mean=statistics.mean(values),
                minimum=min(values),
                maximum=max(values),
                stdev=statistics.stdev(values) if len(values) > 1 else 0.0,
                samples=len(values),
            )
        )
    return result
