"""Information-theoretic bounds computed exactly (§2, Thm 3.9).

Membership questions yield one bit each, so a class of ``Q`` queries needs
at least ``lg Q`` questions.  This module computes the paper's counting
arguments exactly:

* the doubly exponential ``2^(2^n)`` count of unrestricted Boolean queries
  (§2's motivation for restricting to qhorn);
* qhorn-1's ``2^Θ(n lg n)`` size via Bell numbers (§2.1.3);
* Theorem 3.9's ``lg C(C(n, n/2), k) ≥ nk/2 − k lg k`` floor for learning
  ``k`` existential conjunctions.
"""

from __future__ import annotations

import math
from functools import lru_cache

__all__ = [
    "bell_number",
    "qhorn1_lower_bound_bits",
    "qhorn1_upper_bound_bits",
    "unrestricted_query_bits",
    "existential_bound_bits",
    "existential_bound_closed_form",
]


@lru_cache(maxsize=None)
def bell_number(n: int) -> int:
    """The n-th Bell number (partitions of an n-set), via the Bell triangle."""
    if n < 0:
        raise ValueError("n must be non-negative")
    row = [1]
    for _ in range(n):
        nxt = [row[-1]]
        for v in row:
            nxt.append(nxt[-1] + v)
        row = nxt
    return row[0]


def qhorn1_lower_bound_bits(n: int) -> float:
    """``lg B_n`` — a lower bound on lg |qhorn-1| (§2.1.3: one distinct
    query per partition of the n variables)."""
    return math.log2(bell_number(n))


def qhorn1_upper_bound_bits(n: int) -> float:
    """``lg (2^n · 2^n · B_n·…)`` upper estimate of §2.1.3: per part a
    quantifier and head choice — ``2n + lg B_n`` bits."""
    return 2 * n + math.log2(bell_number(n))


def unrestricted_query_bits(n: int) -> int:
    """``lg 2^(2^n) = 2^n`` — questions needed for arbitrary Boolean
    queries over objects (the doubly exponential wall of §2)."""
    return 2**n


def existential_bound_bits(n: int, k: int) -> float:
    """Theorem 3.9 exactly: ``lg C(C(n, ⌊n/2⌋), k)`` bits to pick ``k``
    conjunctions at the lattice's widest level."""
    level = math.comb(n, n // 2)
    if k > level:
        raise ValueError(f"cannot place {k} conjunctions on a level of {level}")
    return math.log2(math.comb(level, k))


def existential_bound_closed_form(n: int, k: int) -> float:
    """The paper's closed-form relaxation ``nk/2 − k lg k``."""
    return n * k / 2 - k * math.log2(k) if k else 0.0
