"""Query generators: random targets, paper families, exhaustive enumeration.

The theorems of the paper quantify over whole query classes, so experiments
need three kinds of workload:

* seeded **random targets** in qhorn-1 (§2.1.3) and role-preserving qhorn
  (§2.1.4) — the "user intended queries" of the learning experiments;
* the **explicit families** used by the lower-bound proofs: the
  ``Uni(X) ∧ Alias(Y)`` class of Theorem 2.1, the head-pair class of
  Lemma 3.4, and the overlapping-body class of Theorem 3.6;
* **exhaustive enumeration** of all semantically distinct role-preserving
  queries for small ``n`` — this regenerates Fig. 7 and drives the
  verification-completeness experiment of Fig. 8.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Iterator, Sequence

from repro.core import tuples as bt
from repro.core.expressions import ExistentialConjunction, UniversalHorn
from repro.core.normalize import (
    CanonicalForm,
    canonicalize,
    r3_closure,
)
from repro.core.query import QhornQuery

__all__ = [
    "random_partition",
    "random_qhorn1",
    "random_role_preserving",
    "random_general_qhorn",
    "uni_alias_query",
    "head_pair_query",
    "theta_body_query",
    "enumerate_role_preserving",
    "paper_running_query",
]


def random_partition(
    items: Sequence[int], rng: random.Random, max_part: int | None = None
) -> list[list[int]]:
    """Uniform-ish random partition of ``items`` (Chinese-restaurant style)."""
    parts: list[list[int]] = []
    for item in items:
        open_parts = [
            p for p in parts if max_part is None or len(p) < max_part
        ]
        # Weight existing parts by size, new part by 1 (CRP with alpha=1).
        total = sum(len(p) for p in open_parts) + 1
        r = rng.randrange(total)
        acc = 0
        chosen: list[int] | None = None
        for p in open_parts:
            acc += len(p)
            if r < acc:
                chosen = p
                break
        if chosen is None:
            chosen = []
            parts.append(chosen)
        chosen.append(item)
    return parts


def random_qhorn1(
    n: int,
    rng: random.Random,
    p_universal: float = 0.5,
    max_group: int | None = None,
    use_all_variables: bool = True,
) -> QhornQuery:
    """A random qhorn-1 query (§2.1.3).

    Variables are partitioned into groups; each group splits into a shared
    body and one or more head variables, and every head independently gets a
    universal or existential quantifier.  With ``use_all_variables=False``
    roughly 1 in 5 variables is left out of the query entirely (exercising
    the learner's handling of unconstrained propositions).
    """
    variables = list(range(n))
    if not use_all_variables:
        variables = [v for v in variables if rng.random() >= 0.2]
        if not variables:
            variables = [rng.randrange(n)]
    parts = random_partition(variables, rng, max_part=max_group)
    universals: list[tuple[list[int], int]] = []
    existentials: list[list[int]] = []
    for part in parts:
        part = list(part)
        rng.shuffle(part)
        n_heads = rng.randint(1, len(part))
        heads, body = part[:n_heads], part[n_heads:]
        for h in heads:
            if rng.random() < p_universal:
                universals.append((body, h))
            else:
                existentials.append(body + [h])
    return QhornQuery.build(n, universals, existentials)


def _random_antichain(
    pool: Sequence[int],
    rng: random.Random,
    count: int,
    min_size: int = 1,
    max_size: int | None = None,
) -> list[frozenset[int]]:
    """Up to ``count`` pairwise-incomparable random subsets of ``pool``."""
    max_size = max_size or max(min_size, len(pool))
    chosen: list[frozenset[int]] = []
    attempts = 0
    while len(chosen) < count and attempts < 50 * count:
        attempts += 1
        size = rng.randint(min_size, min(max_size, len(pool)))
        cand = frozenset(rng.sample(list(pool), size))
        if all(not (cand <= c or c <= cand) for c in chosen):
            chosen.append(cand)
    return chosen


def random_role_preserving(
    n: int,
    rng: random.Random,
    n_heads: int | None = None,
    theta: int = 2,
    n_conjunctions: int | None = None,
    allow_bodyless: bool = True,
) -> QhornQuery:
    """A random role-preserving qhorn query (§2.1.4).

    ``theta`` caps the causal density: each head receives 1..theta pairwise
    incomparable bodies drawn from the non-head variables.  Existential
    conjunctions may mention any variable (including heads), exactly as
    Fig. 3 allows.
    """
    if n < 2:
        raise ValueError("need n >= 2 for a role-preserving query")
    if n_heads is None:
        n_heads = rng.randint(1, max(1, n // 3))
    n_heads = min(n_heads, n - 1)
    variables = list(range(n))
    rng.shuffle(variables)
    heads = variables[:n_heads]
    pool = variables[n_heads:]
    universals: list[tuple[Sequence[int], int]] = []
    for h in heads:
        if allow_bodyless and rng.random() < 0.15:
            universals.append(((), h))
            continue
        want = rng.randint(1, theta)
        max_size = max(1, len(pool) // 2) if want > 1 else len(pool)
        for body in _random_antichain(pool, rng, want, max_size=max_size):
            universals.append((tuple(body), h))
    if n_conjunctions is None:
        n_conjunctions = rng.randint(1, max(1, n // 2))
    existentials: list[Sequence[int]] = []
    for _ in range(n_conjunctions):
        size = rng.randint(1, n)
        existentials.append(tuple(rng.sample(range(n), size)))
    return QhornQuery.build(n, universals, existentials)


def random_general_qhorn(
    n: int, rng: random.Random, k: int | None = None
) -> QhornQuery:
    """A random *general* qhorn query — variables may repeat in any role."""
    k = k or rng.randint(1, 2 * n)
    universals: list[tuple[Sequence[int], int]] = []
    existentials: list[Sequence[int]] = []
    for _ in range(k):
        if rng.random() < 0.5:
            head = rng.randrange(n)
            others = [v for v in range(n) if v != head]
            body = rng.sample(others, rng.randint(0, min(3, len(others))))
            universals.append((body, head))
        else:
            size = rng.randint(1, n)
            existentials.append(rng.sample(range(n), size))
    if not universals and not existentials:
        existentials.append([rng.randrange(n)])
    return QhornQuery.build(n, universals, existentials)


# ----------------------------------------------------------------------
# Lower-bound families
# ----------------------------------------------------------------------
def uni_alias_query(n: int, alias_vars: Sequence[int]) -> QhornQuery:
    """Theorem 2.1's class ``φ = Uni(X) ∧ Alias(Y)``.

    ``alias_vars`` is ``Y``; the remaining variables form ``X`` and are
    universally quantified bodyless.  ``Alias(Y)`` is the Horn cycle
    ``∀y1→y2 … ∀y|Y|→y1`` forcing all alias variables to agree.  The cycle
    makes variables repeat as both heads and bodies, so these queries are in
    qhorn but *not* in role-preserving qhorn.
    """
    alias = sorted(set(alias_vars))
    if any(v >= n or v < 0 for v in alias):
        raise ValueError("alias variables out of range")
    uni = [v for v in range(n) if v not in set(alias)]
    universals: list[tuple[Sequence[int], int]] = [((), x) for x in uni]
    if len(alias) >= 2:
        ring = alias + [alias[0]]
        universals += [
            ((ring[i],), ring[i + 1]) for i in range(len(alias))
        ]
    return QhornQuery.build(n, universals, [])


def head_pair_query(n: int, i: int, j: int) -> QhornQuery:
    """Lemma 3.4's class: all variables but ``xi, xj`` form a shared body
    ``C``; ``xi`` and ``xj`` are its existential heads (``∃C→xi ∃C→xj``)."""
    if i == j:
        raise ValueError("head pair must be distinct")
    body = [v for v in range(n) if v not in (i, j)]
    return QhornQuery.build(n, [], [body + [i], body + [j]])


def theta_body_query(n_body: int, theta: int, head: int | None = None) -> QhornQuery:
    """Theorem 3.6's class: ``θ`` universal Horn expressions on one head.

    ``θ-1`` disjoint bodies of size ``n_body/(θ-1)`` plus one large body
    intersecting each small body in all but one variable (the paper's n=12,
    θ=4 instance is ``theta_body_query(12, 4)``).
    """
    if theta < 2:
        raise ValueError("theta must be >= 2")
    if n_body % (theta - 1):
        raise ValueError("n_body must be divisible by theta - 1")
    block = n_body // (theta - 1)
    head = n_body if head is None else head
    n = n_body + 1
    bodies = [
        list(range(b * block, (b + 1) * block)) for b in range(theta - 1)
    ]
    big = [v for body in bodies for v in body[:-1]]
    universals = [(body, head) for body in bodies] + [(big, head)]
    return QhornQuery.build(n, universals, [])


# ----------------------------------------------------------------------
# Exhaustive enumeration (Fig. 7 / Fig. 8)
# ----------------------------------------------------------------------
def _closed_sets(n: int, universals: frozenset[UniversalHorn]) -> list[frozenset[int]]:
    out = []
    for bits in range(1, 1 << n):
        s = frozenset(bt.variables_of(bits))
        if r3_closure(s, universals) == s:
            out.append(s)
    return out


def _antichains(
    candidates: Sequence[frozenset[int]],
) -> Iterator[frozenset[frozenset[int]]]:
    """All antichains (including the empty one) over ``candidates``."""

    def rec(idx: int, chosen: tuple[frozenset[int], ...]):
        if idx == len(candidates):
            yield frozenset(chosen)
            return
        yield from rec(idx + 1, chosen)
        c = candidates[idx]
        if all(not (c <= o or o <= c) for o in chosen):
            yield from rec(idx + 1, chosen + (c,))

    yield from rec(0, ())


def enumerate_role_preserving(
    n: int, include_trivial: bool = False
) -> list[QhornQuery]:
    """All semantically distinct role-preserving queries on ``n`` variables.

    Enumerates canonical forms directly: every role-preserving set of
    dominant universal expressions, crossed with every R3-closed conjunction
    antichain that dominates all guarantee clauses.  Feasible for ``n ≤ 3``
    (Fig. 7 uses ``n = 2``).  ``include_trivial`` adds the empty query.
    """
    if n > 3:
        raise ValueError("exhaustive enumeration is limited to n <= 3")
    all_exprs = [
        UniversalHorn(head=h, body=frozenset(body))
        for h in range(n)
        for size in range(0, n)
        for body in combinations([v for v in range(n) if v != h], size)
    ]
    seen: set[CanonicalForm] = set()
    out: list[QhornQuery] = []
    for bits in range(1 << len(all_exprs)):
        uni = frozenset(
            e for i, e in enumerate(all_exprs) if bits & (1 << i)
        )
        heads = {u.head for u in uni}
        bodies = set().union(*(u.body for u in uni)) if uni else set()
        if heads & bodies:
            continue  # not role-preserving
        # Keep only dominant universal sets to avoid duplicate work.
        probe = QhornQuery(n=n, universals=uni)
        if frozenset(canonicalize(probe).universals) != uni:
            continue
        guarantees = [r3_closure(u.variables, uni) for u in uni]
        closed = _closed_sets(n, uni)
        for anti in _antichains(closed):
            if not all(any(g <= c for c in anti) for g in guarantees):
                continue
            if not uni and not anti and not include_trivial:
                continue
            q = QhornQuery(
                n=n,
                universals=uni,
                existentials=frozenset(
                    ExistentialConjunction(c) for c in anti
                ),
            )
            form = canonicalize(q)
            if form not in seen:
                seen.add(form)
                out.append(q)
    return out


def paper_running_query() -> QhornQuery:
    """The six-variable running example of §3.2.2 and §4.2:

    ``∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6``.
    """
    return QhornQuery.build(
        6,
        universals=[((0, 3), 4), ((2, 3), 4), ((0, 1), 5)],
        existentials=[(0, 1, 2), (1, 2, 3), (0, 1, 4), (1, 2, 4, 5)],
    )
