"""Two-level nested quantification (§6 future work).

"We have yet to analyze the complexity of learning queries over data with
multiple-levels of nesting.  In such queries, a single expression can have
several quantifiers."

This module implements the *semantics* of that richer class so its blow-up
can be studied concretely: objects are sets of sub-objects, sub-objects are
sets of Boolean tuples, and every expression carries two quantifiers —

    Q1 s ∈ S.  Q2 t ∈ s.  (B → h)      e.g.  ∀s ∃t (x1 ∧ x2)

Learning algorithms for this class are an open problem (the paper's §6);
:func:`count_distinct_objects` quantifies why: with n propositions there
are ``2^(2^(2^n)) `` conceivable Boolean queries over two-level objects.
The brute-force equivalence checker below is the ground truth any future
learner can be tested against, mirroring ``normalize.brute_force_equivalent``
one nesting level up.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import combinations
from typing import FrozenSet, Iterable

from repro.core import tuples as bt
from repro.core.expressions import var_names

__all__ = [
    "Quantifier",
    "NestedExpression",
    "Nested2Query",
    "NestedObject2",
    "enumerate_nested_objects",
    "count_distinct_objects",
    "brute_force_equivalent2",
]


class Quantifier(enum.Enum):
    FORALL = "∀"
    EXISTS = "∃"


#: A two-level object: a frozenset of sub-objects (each a frozenset of
#: Boolean tuple bitmasks).
NestedObject2 = FrozenSet[FrozenSet[int]]


@dataclass(frozen=True)
class NestedExpression:
    """``Q1 s ∈ S. Q2 t ∈ s. (body → head)`` over Boolean variables.

    ``head=None`` gives a pure conjunction over ``body`` (the degenerate
    headless form, as in single-level qhorn).
    """

    outer: Quantifier
    inner: Quantifier
    body: FrozenSet[int] = frozenset()
    head: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", frozenset(self.body))
        if self.head is None and not self.body:
            raise ValueError("expression needs a body or a head")
        if self.head is not None and self.head in self.body:
            raise ValueError("head cannot appear in its own body")

    def _tuple_holds(self, t: int) -> bool:
        body_mask = bt.mask_of(self.body)
        if self.head is None:
            return (t & body_mask) == body_mask
        if (t & body_mask) == body_mask:
            return bool(t & (1 << self.head))
        return True  # implication vacuously true

    def _sub_object_holds(self, sub: FrozenSet[int]) -> bool:
        if self.inner is Quantifier.FORALL:
            holds = all(self._tuple_holds(t) for t in sub)
            if self.head is None:
                return holds and bool(sub)  # guarantee: non-vacuous ∀-conj
            return holds
        return any(self._tuple_holds_strict(t) for t in sub)

    def _tuple_holds_strict(self, t: int) -> bool:
        """For ∃ inner quantification a Horn expression needs a witness
        satisfying body ∧ head (its guarantee clause), not a vacuous pass."""
        body_mask = bt.mask_of(self.body)
        if (t & body_mask) != body_mask:
            return False
        if self.head is None:
            return True
        return bool(t & (1 << self.head))

    def holds_on(self, obj: NestedObject2) -> bool:
        if self.outer is Quantifier.FORALL:
            return all(self._sub_object_holds(s) for s in obj)
        return any(self._sub_object_holds(s) for s in obj)

    def __str__(self) -> str:
        payload = var_names(self.body)
        if self.head is not None:
            arrow = f"→x{self.head + 1}" if self.body else f"x{self.head + 1}"
            payload = payload + arrow if self.body else arrow
        return f"{self.outer.value}s {self.inner.value}t {payload}"


@dataclass(frozen=True)
class Nested2Query:
    """A conjunction of two-level quantified expressions."""

    n: int
    expressions: FrozenSet[NestedExpression] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "expressions", frozenset(self.expressions))
        for e in self.expressions:
            for v in e.body | ({e.head} if e.head is not None else set()):
                if v >= self.n:
                    raise ValueError(f"variable x{v + 1} exceeds n={self.n}")

    def evaluate(self, obj: Iterable[FrozenSet[int]]) -> bool:
        frozen: NestedObject2 = frozenset(frozenset(s) for s in obj)
        return all(e.holds_on(frozen) for e in self.expressions)

    def __str__(self) -> str:
        return " ".join(str(e) for e in sorted(self.expressions, key=str))


def enumerate_nested_objects(n: int, max_subs: int | None = None):
    """All two-level objects over n variables (kept tiny: n ≤ 2).

    There are ``2^(2^n)`` sub-objects and ``2^(2^(2^n))`` objects; callers
    can cap the number of sub-objects per object via ``max_subs``.
    """
    if n > 2:
        raise ValueError("two-level enumeration is only feasible for n <= 2")
    tuples = list(range(1 << n))
    sub_objects = [
        frozenset(s)
        for r in range(len(tuples) + 1)
        for s in combinations(tuples, r)
    ]
    cap = max_subs if max_subs is not None else len(sub_objects)
    for r in range(cap + 1):
        for subs in combinations(sub_objects, r):
            yield frozenset(subs)


def count_distinct_objects(n: int) -> int:
    """``2^(2^n)`` sub-objects ⇒ ``2^(2^(2^n))`` conceivable queries."""
    return 1 << (1 << n)


def brute_force_equivalent2(
    a: Nested2Query, b: Nested2Query, max_subs: int | None = 3
) -> bool:
    """Equivalence over all (capped) two-level objects, for tiny n."""
    if a.n != b.n:
        return False
    for obj in enumerate_nested_objects(a.n, max_subs=max_subs):
        if a.evaluate(obj) != b.evaluate(obj):
            return False
    return True
