"""qhorn queries: conjunctions of quantified Horn expressions (§2.1).

A :class:`QhornQuery` owns a set of universal Horn expressions and a set of
existential conjunctions over ``n`` Boolean variables.  Evaluation follows the
paper's semantics exactly:

* every universal Horn expression must hold on all tuples of the object;
* every universal Horn expression's *guarantee clause* (``∃ body ∧ head``)
  must be witnessed by some tuple (qhorn property 2) — unless the evaluator
  is constructed with ``require_guarantees=False``, the relaxation of the
  paper's footnote 1;
* every existential conjunction must be witnessed by some tuple.

The module also implements the structural measures of §2: query size ``k``
(Def. 2.5) and causal density ``θ`` (Def. 2.6), plus the class membership
checks for qhorn-1 (§2.1.3) and role-preserving qhorn (§2.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from itertools import combinations
from typing import FrozenSet, Iterable, Sequence

from repro.core import tuples as bt
from repro.core.expressions import (
    ExistentialConjunction,
    UniversalHorn,
    var_name,
)
from repro.core.tuples import Question

__all__ = ["QhornQuery", "CompiledQuery", "compile_query"]


@dataclass(frozen=True)
class QhornQuery:
    """A qhorn query over ``n`` Boolean variables.

    Parameters
    ----------
    n:
        Number of Boolean variables (propositions).
    universals:
        Universal Horn expressions ``∀B→h`` (guarantee clauses implicit).
    existentials:
        Existential conjunctions ``∃C`` (existential Horn expressions must be
        pre-rewritten to their guarantee conjunction ``B ∪ {h}``).
    require_guarantees:
        When ``True`` (the paper default), each universal expression also
        demands a witness tuple for ``∃ body ∧ head``.  ``False`` gives the
        footnote-1 relaxation where an empty/partial set can satisfy a purely
        universal query.
    """

    n: int
    universals: FrozenSet[UniversalHorn] = field(default_factory=frozenset)
    existentials: FrozenSet[ExistentialConjunction] = field(
        default_factory=frozenset
    )
    require_guarantees: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "universals", frozenset(self.universals))
        object.__setattr__(self, "existentials", frozenset(self.existentials))
        if self.n < 1:
            raise ValueError("a query needs at least one variable")
        for v in self.variables:
            if v >= self.n:
                raise ValueError(
                    f"expression uses {var_name(v)} but query has n={self.n}"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n: int,
        universals: Iterable[tuple[Sequence[int], int]] = (),
        existentials: Iterable[Sequence[int]] = (),
        require_guarantees: bool = True,
    ) -> "QhornQuery":
        """Convenience constructor from plain body/head index collections."""
        return cls(
            n=n,
            universals=frozenset(
                UniversalHorn(head=h, body=frozenset(b)) for b, h in universals
            ),
            existentials=frozenset(
                ExistentialConjunction(c) for c in existentials
            ),
            require_guarantees=require_guarantees,
        )

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def evaluate(self, question: Question | Iterable[int]) -> bool:
        """Classify an object as an answer (True) or non-answer (False)."""
        tuples = (
            question.tuples if isinstance(question, Question) else frozenset(question)
        )
        for u in self.universals:
            body = u.body_mask
            head = u.head_mask
            witnessed = not self.require_guarantees
            for t in tuples:
                if (t & body) == body:
                    if not t & head:
                        return False  # ∀ violated
                    witnessed = True
            if not witnessed:
                return False  # guarantee clause unsatisfied
        for e in self.existentials:
            m = e.mask
            if not any((t & m) == m for t in tuples):
                return False
        return True

    def __call__(self, question: Question | Iterable[int]) -> bool:
        return self.evaluate(question)

    def compile(self) -> "CompiledQuery":
        """The mask-level compilation of this query (cached per query).

        Batch evaluation (``RelationIndex``, ``QueryEngine.execute_batch``)
        runs on the compiled form; per-object :meth:`evaluate` remains the
        reference semantics the compiled form must agree with.
        """
        return compile_query(self)

    # ------------------------------------------------------------------
    # Structural measures
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Query size ``k`` (Def. 2.5): number of expressions."""
        return len(self.universals) + len(self.existentials)

    @property
    def causal_density(self) -> int:
        """Causal density ``θ`` (Def. 2.6).

        The maximum, over head variables, of the number of distinct
        *non-dominated* universal Horn expressions for that head.
        """
        per_head: dict[int, list[frozenset[int]]] = {}
        for u in self.universals:
            per_head.setdefault(u.head, []).append(u.body)
        best = 0
        for bodies in per_head.values():
            dominant = [
                b
                for b in bodies
                if not any(other < b for other in bodies)
            ]
            best = max(best, len(set(dominant)))
        return best

    @property
    def variables(self) -> frozenset[int]:
        """All variables mentioned by some expression."""
        vs: set[int] = set()
        for u in self.universals:
            vs |= u.variables
        for e in self.existentials:
            vs |= e.variables
        return frozenset(vs)

    @property
    def head_variables(self) -> frozenset[int]:
        """Variables appearing as the head of some universal expression."""
        return frozenset(u.head for u in self.universals)

    @property
    def universal_body_variables(self) -> frozenset[int]:
        """Variables appearing in the body of some universal expression."""
        vs: set[int] = set()
        for u in self.universals:
            vs |= u.body
        return frozenset(vs)

    # ------------------------------------------------------------------
    # Class membership (§2.1.3, §2.1.4)
    # ------------------------------------------------------------------
    def is_role_preserving(self) -> bool:
        """§2.1.4: no variable is both a universal head and a universal body
        variable.  Existential conjunctions are unrestricted."""
        return not (self.head_variables & self.universal_body_variables)

    def is_qhorn1(self) -> bool:
        """§2.1.3: syntactic qhorn-1 check, treating each existential
        conjunction as an existential Horn expression ``∃B→h``.

        Restrictions: bodies are pairwise equal-or-disjoint, every head
        heads exactly one expression, heads never reappear in bodies, and
        no variable plays two roles.  The check partitions expressions into
        connected components by variable overlap and verifies that each
        component decomposes as one shared body plus one fresh head per
        expression.
        """
        if not self.is_role_preserving():
            return False
        # Universal side: each head at most one expression, bodies
        # equal-or-disjoint, no variable in two distinct bodies.
        heads = [u.head for u in self.universals]
        if len(heads) != len(set(heads)):
            return False
        u_bodies = {u.body for u in self.universals if u.body}
        for a, b in combinations(u_bodies, 2):
            if a != b and a & b:
                return False
        u_heads = set(heads)
        u_body_vars = {v for b in u_bodies for v in b}
        if u_heads & u_body_vars:
            return False

        conjunctions = [e.variables for e in self.existentials]
        # No conjunction may reuse a universal head (variable repetition).
        if any(c & u_heads for c in conjunctions):
            return False

        # Union-find over conjunctions + universal bodies by var overlap.
        items: list[FrozenSet[int]] = list(u_bodies) + conjunctions
        parent = list(range(len(items)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for i, j in combinations(range(len(items)), 2):
            if items[i] & items[j]:
                parent[find(i)] = find(j)
        components: dict[int, list[int]] = {}
        for i in range(len(items)):
            components.setdefault(find(i), []).append(i)

        n_bodies = len(u_bodies)
        for members in components.values():
            body_ids = [i for i in members if i < n_bodies]
            conf_ids = [i for i in members if i >= n_bodies]
            if len(body_ids) > 1:
                return False  # one conjunction straddles two bodies
            if not conf_ids:
                continue  # a universal body with no existential heads
            confs = [items[i] for i in conf_ids]
            if body_ids:
                shared = items[body_ids[0]]
            elif len(confs) == 1:
                continue  # standalone conjunction: any split works
            else:
                shared = frozenset.intersection(*confs)
            seen_heads: set[int] = set()
            for c in confs:
                extra = c - shared
                if len(extra) != 1 or not shared < c:
                    return False
                (h,) = extra
                if h in seen_heads:
                    return False
                seen_heads.add(h)
        return True

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def shorthand(self) -> str:
        """The paper's shorthand, e.g. ``∀x1x2→x3 ∀x4 ∃x5``."""
        parts = [str(u) for u in sorted(self.universals)]
        parts += [str(e) for e in sorted(self.existentials)]
        return " ".join(parts) if parts else "(empty query)"

    def __str__(self) -> str:
        return self.shorthand()

    def with_existential(self, variables: Iterable[int]) -> "QhornQuery":
        """A copy of this query with one more existential conjunction."""
        return QhornQuery(
            n=self.n,
            universals=self.universals,
            existentials=self.existentials
            | {ExistentialConjunction(frozenset(variables))},
            require_guarantees=self.require_guarantees,
        )

    def with_universal(
        self, body: Iterable[int], head: int
    ) -> "QhornQuery":
        """A copy of this query with one more universal Horn expression."""
        return QhornQuery(
            n=self.n,
            universals=self.universals
            | {UniversalHorn(head=head, body=frozenset(body))},
            existentials=self.existentials,
            require_guarantees=self.require_guarantees,
        )

    def all_true_question(self) -> Question:
        """The single-tuple question ``{1^n}`` — an answer to every query."""
        return Question.of(self.n, [bt.all_true(self.n)])


@dataclass(frozen=True)
class CompiledQuery:
    """A :class:`QhornQuery` flattened to pure bitmask arithmetic.

    Compilation hoists the per-expression mask computations
    (``UniversalHorn.body_mask``/``head_mask``, ``ExistentialConjunction
    .mask``) out of the evaluation loop, so evaluating a compiled query over
    a mask set touches no expression objects at all.  The expression order
    is deterministic (sorted), which keeps batch runs reproducible.

    The semantics are exactly those of :meth:`QhornQuery.evaluate`; the
    differential property suite (``tests/properties/test_prop_engine.py``)
    asserts the agreement on randomized inputs.
    """

    n: int
    #: ``(body_mask, head_mask)`` per universal Horn expression, sorted.
    universal_masks: tuple[tuple[int, int], ...]
    #: Conjunction mask per existential expression, sorted.
    existential_masks: tuple[int, ...]
    require_guarantees: bool

    def evaluate(self, masks: Iterable[int]) -> bool:
        """Classify a mask set exactly like :meth:`QhornQuery.evaluate`."""
        tuples = (
            masks.tuples if isinstance(masks, Question) else tuple(masks)
        )
        for body, head in self.universal_masks:
            witnessed = not self.require_guarantees
            for t in tuples:
                if (t & body) == body:
                    if not t & head:
                        return False
                    witnessed = True
            if not witnessed:
                return False
        for m in self.existential_masks:
            if not any((t & m) == m for t in tuples):
                return False
        return True

    __call__ = evaluate


@lru_cache(maxsize=4096)
def compile_query(query: QhornQuery) -> CompiledQuery:
    """Compile ``query`` to masks, memoized on the (hashable) query."""
    return CompiledQuery(
        n=query.n,
        universal_masks=tuple(
            (u.body_mask, u.head_mask) for u in sorted(query.universals)
        ),
        existential_masks=tuple(e.mask for e in sorted(query.existentials)),
        require_guarantees=query.require_guarantees,
    )
