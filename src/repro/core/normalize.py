"""Equivalence rules R1–R3, canonical forms and distinguishing tuples.

§2.1.1 gives three equivalence rules for qhorn queries:

* **R1** — an existential conjunction dominates any conjunction over a subset
  of its variables.
* **R2** — a universal Horn expression ``∀B→h`` dominates ``∀B'→h`` whenever
  ``B' ⊇ B``.  Note the subtlety spelled out by the rule's example: the
  dominated expression does *not* simply vanish — its guarantee clause
  survives as an existential conjunction (``∀x1x2x3→h ∀x1→h`` becomes
  ``∀x1→h ∃x1x2x3h``).
* **R3** — a conjunction may be expanded with every head implied by the
  universal expressions (``∀x1→h ∃x1x3 ≡ ∀x1→h ∃x1x3h``).

The *canonical form* of a query is the pair

    (dominant universal Horn expressions,
     maximal antichain of R3-closed conjunctions, guarantees included).

For role-preserving qhorn queries, canonical-form equality coincides with
semantic equivalence (Proposition 4.1); the test-suite validates this against
the brute-force model checker below for small ``n``.  For *general* qhorn the
canonical form is sound (equal forms ⇒ equivalent queries) but not complete:
``∀x1→x2 ∀x2→x3`` entails ``∀x1→x3`` through a head-as-body chain that
role-preservation forbids, so use :func:`brute_force_equivalent` there.

The module also derives the paper's *distinguishing tuples*: Def. 3.5 for
existential conjunctions and Def. 3.4 for universal Horn expressions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.core import tuples as bt
from repro.core.expressions import ExistentialConjunction, UniversalHorn
from repro.core.query import QhornQuery

__all__ = [
    "dominant_universals",
    "r3_closure",
    "conjunction_pool",
    "dominant_conjunctions",
    "CanonicalForm",
    "canonicalize",
    "normalize",
    "equivalent",
    "existential_distinguishing_tuple",
    "universal_distinguishing_tuple",
    "distinguishing_profile",
    "enumerate_objects",
    "brute_force_equivalent",
    "find_separating_object",
]


def dominant_universals(query: QhornQuery) -> frozenset[UniversalHorn]:
    """Rule R2: keep, per head, only the minimal (non-dominated) bodies."""
    per_head: dict[int, set[frozenset[int]]] = {}
    for u in query.universals:
        per_head.setdefault(u.head, set()).add(u.body)
    kept: set[UniversalHorn] = set()
    for head, bodies in per_head.items():
        for b in bodies:
            if not any(other < b for other in bodies):
                kept.add(UniversalHorn(head=head, body=b))
    return frozenset(kept)


def r3_closure(
    variables: Iterable[int], universals: Iterable[UniversalHorn]
) -> frozenset[int]:
    """Rule R3 closure: add every head whose body is contained in the set.

    Iterates to a fixpoint so the same routine is valid for general qhorn
    queries (where a freshly added head may itself trigger another body).
    """
    closed = set(variables)
    rules = list(universals)
    changed = True
    while changed:
        changed = False
        for u in rules:
            if u.head not in closed and u.body <= closed:
                closed.add(u.head)
                changed = True
    return frozenset(closed)


def conjunction_pool(query: QhornQuery) -> frozenset[frozenset[int]]:
    """All conjunctions the query implies a witness for, R3-closed.

    This is the union of the explicit existential conjunctions and the
    guarantee clauses of *every* universal expression (including dominated
    ones — see R2's example), each expanded by Rule R3.
    """
    universals = dominant_universals(query)
    pool: set[frozenset[int]] = set()
    for e in query.existentials:
        pool.add(r3_closure(e.variables, universals))
    if query.require_guarantees:
        for u in query.universals:
            pool.add(r3_closure(u.variables, universals))
    return frozenset(pool)


def _maximal_antichain(sets: Iterable[FrozenSet[int]]) -> frozenset[frozenset[int]]:
    items = set(sets)
    return frozenset(s for s in items if not any(s < other for other in items))


def dominant_conjunctions(query: QhornQuery) -> frozenset[frozenset[int]]:
    """Rule R1 over the closed conjunction pool: keep the maximal sets."""
    return _maximal_antichain(conjunction_pool(query))


@dataclass(frozen=True)
class CanonicalForm:
    """Normal form of a qhorn query (§2.1 property 3 + rules R1–R3).

    Two role-preserving queries are semantically equivalent iff their
    canonical forms are equal (Proposition 4.1).
    """

    n: int
    universals: FrozenSet[UniversalHorn]
    conjunctions: FrozenSet[FrozenSet[int]]

    def as_query(self, require_guarantees: bool = True) -> QhornQuery:
        """Materialize the canonical form back into an executable query."""
        return QhornQuery(
            n=self.n,
            universals=self.universals,
            existentials=frozenset(
                ExistentialConjunction(c) for c in self.conjunctions
            ),
            require_guarantees=require_guarantees,
        )

    def shorthand(self) -> str:
        return self.as_query().shorthand()


def canonicalize(query: QhornQuery) -> CanonicalForm:
    """Compute the canonical form of ``query``."""
    return CanonicalForm(
        n=query.n,
        universals=dominant_universals(query),
        conjunctions=dominant_conjunctions(query),
    )


def normalize(query: QhornQuery) -> QhornQuery:
    """Rewrite ``query`` into its normalized, executable equivalent."""
    return canonicalize(query).as_query(query.require_guarantees)


def equivalent(a: QhornQuery, b: QhornQuery) -> bool:
    """Semantic equivalence via canonical forms (role-preserving classes).

    Raises ``ValueError`` when either query falls outside role-preserving
    qhorn, where canonical equality is not a complete test — use
    :func:`brute_force_equivalent` there.
    """
    if not (a.is_role_preserving() and b.is_role_preserving()):
        raise ValueError(
            "canonical equivalence requires role-preserving queries; "
            "use brute_force_equivalent for general qhorn"
        )
    if a.n != b.n:
        return False
    return canonicalize(a) == canonicalize(b)


# ----------------------------------------------------------------------
# Distinguishing tuples (Defs 3.4 and 3.5)
# ----------------------------------------------------------------------
def existential_distinguishing_tuple(
    conjunction: Iterable[int], universals: Iterable[UniversalHorn]
) -> int:
    """Def. 3.5: the tuple whose true variables are exactly the (R3-closed)
    conjunction.  Closing first guarantees the tuple violates no universal
    Horn expression (§4.1.1: "if setting one of the remaining variables to
    false violates a universal Horn expression, we set it to true")."""
    return bt.mask_of(r3_closure(conjunction, universals))


def universal_distinguishing_tuple(
    expr: UniversalHorn, head_variables: Iterable[int]
) -> int:
    """Def. 3.4 / §4.1.2: body variables true, head false, every *other* head
    variable true, all remaining variables false."""
    others = set(head_variables) - {expr.head}
    return bt.mask_of(expr.body | others)


def distinguishing_profile(
    query: QhornQuery,
) -> tuple[frozenset[int], frozenset[int]]:
    """The pair (universal distinguishing tuples, existential distinguishing
    tuples) of the normalized query — the object Proposition 4.1 says
    characterizes role-preserving queries up to equivalence."""
    canon = canonicalize(query)
    heads = frozenset(u.head for u in canon.universals)
    uni = frozenset(
        universal_distinguishing_tuple(u, heads) for u in canon.universals
    )
    exi = frozenset(bt.mask_of(c) for c in canon.conjunctions)
    return uni, exi


# ----------------------------------------------------------------------
# Brute-force model checking (ground truth for small n)
# ----------------------------------------------------------------------
def enumerate_objects(n: int, include_empty: bool = False):
    """Yield every object (set of Boolean tuples) over ``n`` variables.

    There are ``2^(2^n)`` such objects; callers must keep ``n`` tiny (≤ 4).
    """
    if n > 4:
        raise ValueError(
            f"enumerating all 2^(2^{n}) objects is infeasible; use sampling"
        )
    universe = list(range(1 << n))
    start = 0 if include_empty else 1
    for bits in range(start, 1 << len(universe)):
        yield frozenset(t for i, t in enumerate(universe) if bits & (1 << i))


def brute_force_equivalent(
    a: QhornQuery,
    b: QhornQuery,
    samples: int | None = None,
    rng: random.Random | None = None,
) -> bool:
    """Decide equivalence by checking objects directly.

    Exhaustive for ``n ≤ 4``.  For larger ``n`` pass ``samples`` to check
    random objects only (a one-sided equivalence test).
    """
    if a.n != b.n:
        return False
    return find_separating_object(a, b, samples=samples, rng=rng) is None


def find_separating_object(
    a: QhornQuery,
    b: QhornQuery,
    samples: int | None = None,
    rng: random.Random | None = None,
) -> frozenset[int] | None:
    """Return an object the two queries classify differently, or ``None``.

    Exhaustive when ``samples`` is ``None`` (requires ``n ≤ 4``); otherwise
    draws ``samples`` random objects of random sizes.
    """
    if a.n != b.n:
        raise ValueError("queries must share the variable count")
    n = a.n
    if samples is None:
        for obj in enumerate_objects(n, include_empty=True):
            if a.evaluate(obj) != b.evaluate(obj):
                return obj
        return None
    rng = rng or random.Random(0)
    top = bt.all_true(n)
    for _ in range(samples):
        size = rng.randint(1, max(2, min(2 * n, 1 << n)))
        obj = frozenset(rng.randint(0, top) for _ in range(size))
        if a.evaluate(obj) != b.evaluate(obj):
            return obj
    # Also probe the structured objects that actually distinguish qhorn
    # queries: distinguishing tuples of either query plus the all-true tuple.
    for q in (a, b):
        uni, exi = distinguishing_profile(q)
        for t in uni | exi:
            for obj in (
                frozenset({t}),
                frozenset({t, top}),
                frozenset({top}),
                exi | {top},
                exi,
            ):
                if a.evaluate(obj) != b.evaluate(obj):
                    return obj
    return None
