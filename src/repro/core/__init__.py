"""Boolean-domain core: tuples, expressions, queries, normalization (§2)."""

from repro.core.expressions import ExistentialConjunction, UniversalHorn
from repro.core.parser import parse_query
from repro.core.query import QhornQuery
from repro.core.serialize import (
    query_from_dict,
    query_from_json,
    query_to_dict,
    query_to_json,
)
from repro.core.tuples import Question

__all__ = [
    "ExistentialConjunction",
    "UniversalHorn",
    "QhornQuery",
    "Question",
    "parse_query",
    "query_from_dict",
    "query_from_json",
    "query_to_dict",
    "query_to_json",
]
