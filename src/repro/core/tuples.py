"""Boolean tuples and membership questions (the Boolean domain of §2).

The paper abstracts data tuples into Boolean tuples: given ``n`` propositions
``p1..pn`` over the embedded relation, each data tuple maps to a vector of
``n`` truth values (Fig. 1).  An *object* (a set of data tuples) maps to a set
of Boolean tuples, and a *membership question* is exactly such a set,
presented to the user for an answer / non-answer label (§2.1.2).

We represent a Boolean tuple over ``n`` variables as an ``int`` bitmask where
bit ``i`` (LSB = bit 0) holds the truth value of variable ``x_{i+1}``.  The
paper writes tuples as strings such as ``1011`` with ``x1`` leftmost; the
helpers here follow that convention for parsing and formatting.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import FrozenSet

__all__ = [
    "MAX_VARIABLES",
    "all_true",
    "mask_of",
    "variables_of",
    "true_set",
    "false_set",
    "with_false",
    "with_true",
    "parse_tuple",
    "format_tuple",
    "popcount",
    "is_subset",
    "union_masks",
    "Question",
]

#: Upper limit on variable count; bitmasks stay fast far beyond this but the
#: paper's algorithms are only ever exercised on double-digit ``n``.
MAX_VARIABLES = 256


def _check_n(n: int) -> None:
    if not 0 < n <= MAX_VARIABLES:
        raise ValueError(f"variable count must be in 1..{MAX_VARIABLES}, got {n}")


def all_true(n: int) -> int:
    """The tuple ``1^n`` where every variable is true."""
    _check_n(n)
    return (1 << n) - 1


def mask_of(variables: Iterable[int]) -> int:
    """Bitmask with the given 0-based variable indices set."""
    mask = 0
    for v in variables:
        mask |= 1 << v
    return mask


def variables_of(mask: int) -> Iterator[int]:
    """Yield the 0-based indices of set bits, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def true_set(t: int) -> frozenset[int]:
    """The set of variables that are true in tuple ``t``."""
    return frozenset(variables_of(t))


def false_set(t: int, n: int) -> frozenset[int]:
    """The set of variables that are false in tuple ``t`` (of width ``n``)."""
    return frozenset(variables_of(all_true(n) & ~t))


def with_false(t: int, variables: Iterable[int]) -> int:
    """Copy of ``t`` with the given variables forced false."""
    return t & ~mask_of(variables)


def with_true(t: int, variables: Iterable[int]) -> int:
    """Copy of ``t`` with the given variables forced true."""
    return t | mask_of(variables)


def parse_tuple(text: str) -> int:
    """Parse the paper's string form, e.g. ``"1011"`` (``x1`` leftmost)."""
    mask = 0
    for i, ch in enumerate(text.strip()):
        if ch == "1":
            mask |= 1 << i
        elif ch != "0":
            raise ValueError(f"invalid tuple character {ch!r} in {text!r}")
    return mask


def format_tuple(t: int, n: int) -> str:
    """Format a tuple the way the paper prints it (``x1`` leftmost)."""
    return "".join("1" if t & (1 << i) else "0" for i in range(n))


def popcount(mask: int) -> int:
    """Number of true variables in the tuple."""
    return mask.bit_count()


def is_subset(a: int, b: int) -> bool:
    """True iff every variable true in ``a`` is true in ``b``."""
    return a & ~b == 0


def union_masks(masks: Iterable[int]) -> int:
    """OR together a collection of bitmasks (empty iterable gives ``0``).

    Used both for variable tuples and for the arbitrary-width
    object-position bitsets of the batch evaluation engine, which also
    reuses :func:`variables_of` to enumerate set positions.
    """
    out = 0
    for m in masks:
        out |= m
    return out


@dataclass(frozen=True)
class Question:
    """A membership question: a set of Boolean tuples over ``n`` variables.

    The user classifies the whole set as an *answer* (``True``) or a
    *non-answer* (``False``) for their intended query (§2.1.2).  Questions are
    immutable and hashable so oracles can memoise responses.
    """

    n: int
    tuples: FrozenSet[int]

    def __post_init__(self) -> None:
        _check_n(self.n)
        top = all_true(self.n)
        for t in self.tuples:
            if t & ~top:
                raise ValueError(
                    f"tuple {t:#x} uses variables beyond n={self.n}"
                )
        # Questions key every oracle-side dict (response caches, batch
        # dedup); precomputing the hash keeps those lookups O(1) instead
        # of re-hashing the tuple set on every probe.
        object.__setattr__(self, "_hash", hash((self.n, self.tuples)))

    def __hash__(self) -> int:
        return self._hash

    @classmethod
    def of(cls, n: int, tuples: Iterable[int]) -> "Question":
        """Build a question from any iterable of bitmask tuples."""
        return cls(n=n, tuples=frozenset(tuples))

    @classmethod
    def from_strings(cls, *rows: str) -> "Question":
        """Build a question from paper-style strings, e.g. ``("1011","1110")``."""
        if not rows:
            raise ValueError("a question needs at least one tuple string")
        widths = {len(r.strip()) for r in rows}
        if len(widths) != 1:
            raise ValueError(f"tuple strings have differing widths: {widths}")
        (n,) = widths
        return cls(n=n, tuples=frozenset(parse_tuple(r) for r in rows))

    @property
    def size(self) -> int:
        """Number of tuples shown to the user."""
        return len(self.tuples)

    def sorted_tuples(self) -> list[int]:
        """Tuples in descending popcount (paper's presentation order)."""
        return sorted(self.tuples, key=lambda t: (-popcount(t), t))

    def format(self) -> str:
        """Multi-line paper-style rendering of the question."""
        return "\n".join(format_tuple(t, self.n) for t in self.sorted_tuples())

    def __iter__(self) -> Iterator[int]:
        return iter(self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)

    def __contains__(self, t: int) -> bool:
        return t in self.tuples

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rows = ",".join(format_tuple(t, self.n) for t in self.sorted_tuples())
        return f"Question(n={self.n}, {{{rows}}})"
