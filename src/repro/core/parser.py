"""Parser for the paper's query shorthand (§2.1).

The paper writes queries like ``∀x1x2→x3 ∀x4 ∃x5`` — quantified (Horn)
expressions with the ``t ∈ S`` binder, conjunction symbols and guarantee
clauses left implicit.  This module parses that shorthand (and ASCII
equivalents) into :class:`~repro.core.query.QhornQuery` objects:

>>> parse_query("∀x1x2→x3 ∃x5")        # paper notation
>>> parse_query("A x1 x2 -> x3 E x5")   # ASCII
>>> parse_query("forall x1x2 => x3 exists x5")

Existential Horn expressions (``∃x1x2→x3``) are accepted and rewritten to
their guarantee conjunction ``∃x1x2x3`` per §2.1.4.  A bare universal over
several variables (``∀x1x2``) denotes one bodyless expression per variable.
"""

from __future__ import annotations

import re

from repro.core.query import QhornQuery

__all__ = ["parse_query", "ParseError"]


class ParseError(ValueError):
    """Raised when query shorthand cannot be parsed."""


_EXPR = re.compile(
    r"(?P<quant>∀|∃|\bforall\b|\bexists\b|\bA\b|\bE\b)\s*"
    r"(?P<body>(?:x\d+[\s,]*)+)"
    r"(?:(?:→|->|=>)\s*(?P<head>(?:x\d+[\s,]*)+))?",
    re.UNICODE,
)
_VAR = re.compile(r"x(\d+)")
_UNIVERSAL = {"∀", "forall", "A"}
_EXISTENTIAL = {"∃", "exists", "E"}


def _vars(text: str) -> list[int]:
    found = [int(m.group(1)) - 1 for m in _VAR.finditer(text)]
    if any(v < 0 for v in found):
        raise ParseError(f"variables are 1-based; got x0 in {text!r}")
    return found


def parse_query(
    text: str, n: int | None = None, require_guarantees: bool = True
) -> QhornQuery:
    """Parse shorthand ``text`` into a :class:`QhornQuery`.

    Parameters
    ----------
    text:
        Query shorthand, e.g. ``"∀x1x2→x3 ∃x5"``.
    n:
        Total number of variables.  Defaults to the largest index mentioned.
    require_guarantees:
        Forwarded to the query (paper semantics keep guarantees on).
    """
    stripped = text.replace("∧", " ").replace(";", " ").replace("&", " ")
    universals: list[tuple[list[int], int]] = []
    existentials: list[list[int]] = []
    consumed_spans: list[tuple[int, int]] = []
    for m in _EXPR.finditer(stripped):
        consumed_spans.append(m.span())
        quant = m.group("quant")
        body = _vars(m.group("body"))
        head_text = m.group("head")
        if quant in _UNIVERSAL:
            if head_text is None:
                # ``∀x1x2`` — one bodyless expression per variable.
                for v in body:
                    universals.append(([], v))
            else:
                heads = _vars(head_text)
                if len(heads) != 1:
                    raise ParseError(
                        f"a Horn expression has exactly one head: {m.group(0)!r}"
                    )
                universals.append((body, heads[0]))
        elif quant in _EXISTENTIAL:
            if head_text is None:
                existentials.append(body)
            else:
                heads = _vars(head_text)
                if len(heads) != 1:
                    raise ParseError(
                        f"a Horn expression has exactly one head: {m.group(0)!r}"
                    )
                # ∃B→h is semantically its guarantee clause ∃(B ∧ h).
                existentials.append(body + heads)
        else:  # pragma: no cover - regex restricts quantifiers
            raise ParseError(f"unknown quantifier {quant!r}")

    remainder = stripped
    for start, end in reversed(consumed_spans):
        remainder = remainder[:start] + remainder[end:]
    if remainder.strip():
        raise ParseError(f"unparsed query text: {remainder.strip()!r}")
    if not universals and not existentials:
        raise ParseError(f"no expressions found in {text!r}")

    mentioned = {h for _, h in universals}
    for b, _ in universals:
        mentioned.update(b)
    for c in existentials:
        mentioned.update(c)
    width = max(mentioned) + 1
    if n is None:
        n = width
    elif n < width:
        raise ParseError(f"query mentions x{width} but n={n}")
    return QhornQuery.build(
        n=n,
        universals=[(b, h) for b, h in universals],
        existentials=existentials,
        require_guarantees=require_guarantees,
    )
