"""Quantified expressions: the building blocks of qhorn queries (§2.1).

A qhorn query is a conjunction of quantified Horn expressions over the tuples
of an object's embedded relation.  Two expression forms cover the whole
class once existential Horn expressions are rewritten as conjunctions (§2.1.4):

* :class:`UniversalHorn` — ``∀t ∈ S (B → h)`` with body set ``B`` (possibly
  empty, the *bodyless* degenerate form ``∀h``) and head variable ``h``.
  Per qhorn property 2, every universal Horn expression carries an implicit
  *guarantee clause* ``∃t ∈ S (B ∧ h)``.
* :class:`ExistentialConjunction` — ``∃t ∈ S (C)`` for a non-empty variable
  set ``C``.  An existential Horn expression ``∃B → h`` is semantically its
  guarantee clause ``∃(B ∧ h)``, i.e. the conjunction over ``B ∪ {h}``.

Variables are 0-based indices; display names are ``x1..xn``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.core import tuples as bt

__all__ = ["UniversalHorn", "ExistentialConjunction", "var_name", "var_names"]


def var_name(v: int) -> str:
    """Display name of 0-based variable ``v`` (paper style, 1-based)."""
    return f"x{v + 1}"


def var_names(vs) -> str:
    """Concatenated display names of a variable collection, sorted."""
    return "".join(var_name(v) for v in sorted(vs))


@dataclass(frozen=True, order=True)
class UniversalHorn:
    """``∀t ∈ S (body → head)`` plus its guarantee clause ``∃(body ∧ head)``.

    ``body`` is a frozenset of 0-based variable indices and may be empty,
    giving the degenerate bodyless form ``∀head``.  The head must not be a
    member of its own body.
    """

    head: int
    body: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", frozenset(self.body))
        if self.head < 0 or any(v < 0 for v in self.body):
            raise ValueError("variable indices must be non-negative")
        if self.head in self.body:
            raise ValueError(
                f"head {var_name(self.head)} cannot appear in its own body"
            )

    @property
    def body_mask(self) -> int:
        return bt.mask_of(self.body)

    @property
    def head_mask(self) -> int:
        return 1 << self.head

    @property
    def variables(self) -> frozenset[int]:
        return self.body | {self.head}

    @property
    def is_bodyless(self) -> bool:
        return not self.body

    def violated_by(self, t: int) -> bool:
        """True iff tuple ``t`` has the full body true but the head false."""
        body = self.body_mask
        return (t & body) == body and not t & self.head_mask

    def holds_universally(self, question) -> bool:
        """The ``∀`` part only: no tuple in the question violates body→head."""
        return not any(self.violated_by(t) for t in question)

    def guarantee(self) -> "ExistentialConjunction":
        """The guarantee clause ``∃ (body ∧ head)`` (qhorn property 2)."""
        return ExistentialConjunction(self.variables)

    def dominates(self, other: "UniversalHorn") -> bool:
        """Rule R2: ``∀B→h`` dominates ``∀B'→h`` whenever ``B' ⊇ B``."""
        return self.head == other.head and self.body <= other.body

    def __str__(self) -> str:
        if self.is_bodyless:
            return f"∀{var_name(self.head)}"
        return f"∀{var_names(self.body)}→{var_name(self.head)}"


@dataclass(frozen=True, order=True)
class ExistentialConjunction:
    """``∃t ∈ S (C)``: some tuple has every variable in ``C`` true."""

    variables: FrozenSet[int] = field(default_factory=frozenset)

    def __init__(self, variables) -> None:
        vs = frozenset(variables)
        if not vs:
            raise ValueError("an existential conjunction needs >= 1 variable")
        if any(v < 0 for v in vs):
            raise ValueError("variable indices must be non-negative")
        object.__setattr__(self, "variables", vs)

    @property
    def mask(self) -> int:
        return bt.mask_of(self.variables)

    def satisfied_by(self, t: int) -> bool:
        """True iff tuple ``t`` makes every conjunct true."""
        m = self.mask
        return (t & m) == m

    def holds_on(self, question) -> bool:
        """True iff some tuple of the question satisfies the conjunction."""
        return any(self.satisfied_by(t) for t in question)

    def dominates(self, other: "ExistentialConjunction") -> bool:
        """Rule R1: a conjunction dominates any conjunction over a subset."""
        return self.variables >= other.variables

    def __str__(self) -> str:
        return f"∃{var_names(self.variables)}"
