"""JSON (de)serialization for queries, questions and verification sets.

Sessions outlive processes: DataPlay-style UIs need to persist draft
queries, transcripts and verification sets between interactions.  The
wire format is plain JSON with paper-style string tuples (``"1011"``,
``x1`` leftmost) so dumps are human-readable and diffable.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core import tuples as bt
from repro.core.query import QhornQuery
from repro.core.tuples import Question

__all__ = [
    "query_to_dict",
    "query_from_dict",
    "query_to_json",
    "query_from_json",
    "question_to_dict",
    "question_from_dict",
]

_FORMAT = "qhorn-query-v1"


def query_to_dict(query: QhornQuery) -> dict[str, Any]:
    """Plain-dict form of a query (stable ordering, JSON-safe)."""
    return {
        "format": _FORMAT,
        "n": query.n,
        "shorthand": query.shorthand(),
        "universals": [
            {"body": sorted(v + 1 for v in u.body), "head": u.head + 1}
            for u in sorted(query.universals)
        ],
        "existentials": [
            sorted(v + 1 for v in e.variables)
            for e in sorted(query.existentials)
        ],
        "require_guarantees": query.require_guarantees,
    }


def query_from_dict(data: dict[str, Any]) -> QhornQuery:
    """Rebuild a query from :func:`query_to_dict` output.

    Variable indices on the wire are 1-based (paper convention).
    """
    if data.get("format") != _FORMAT:
        raise ValueError(f"unsupported query format {data.get('format')!r}")
    return QhornQuery.build(
        n=int(data["n"]),
        universals=[
            ([v - 1 for v in u["body"]], u["head"] - 1)
            for u in data.get("universals", [])
        ],
        existentials=[
            [v - 1 for v in c] for c in data.get("existentials", [])
        ],
        require_guarantees=bool(data.get("require_guarantees", True)),
    )


def query_to_json(query: QhornQuery, indent: int | None = 2) -> str:
    return json.dumps(query_to_dict(query), indent=indent, sort_keys=True)


def query_from_json(text: str) -> QhornQuery:
    return query_from_dict(json.loads(text))


def question_to_dict(question: Question) -> dict[str, Any]:
    """A membership question as paper-style tuple strings."""
    return {
        "n": question.n,
        "tuples": [
            bt.format_tuple(t, question.n) for t in question.sorted_tuples()
        ],
    }


def question_from_dict(data: dict[str, Any]) -> Question:
    n = int(data["n"])
    return Question.of(n, [bt.parse_tuple(s) for s in data["tuples"]])
