"""Command-line interface: ``python -m repro <command>``.

Commands
--------
learn    simulate learning a target query by example
verify   run a verification set for a given query against an intent
revise   repair a close-but-wrong query against an intent
sql      compile a query to SQL over the generic two-table encoding
demo     the chocolate-store walkthrough
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core.normalize import canonicalize
from repro.core.parser import parse_query
from repro.core.serialize import query_to_json
from repro.learning import (
    Qhorn1Learner,
    RolePreservingLearner,
    revise_query,
)
from repro.oracle import CachingOracle, CountingOracle, QueryOracle
from repro.verification import Verifier

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="qhorn: learn and verify quantified Boolean queries "
        "by example (PODS 2013)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    learn = sub.add_parser("learn", help="learn a target query by example")
    learn.add_argument("target", help="query shorthand, e.g. '∀x1 ∃x2x3'")
    learn.add_argument("--n", type=int, default=None)
    learn.add_argument(
        "--learner",
        choices=("qhorn1", "role-preserving"),
        default="role-preserving",
    )
    learn.add_argument("--json", action="store_true", help="emit JSON")

    verify = sub.add_parser(
        "verify", help="verify a given query against an intended one"
    )
    verify.add_argument("given")
    verify.add_argument("intended")
    verify.add_argument("--n", type=int, default=None)

    revise = sub.add_parser(
        "revise", help="revise a close query toward the intended one"
    )
    revise.add_argument("given")
    revise.add_argument("intended")
    revise.add_argument("--n", type=int, default=None)

    sql = sub.add_parser("sql", help="compile a query to SQL")
    sql.add_argument("query")
    sql.add_argument("--n", type=int, default=None)

    sub.add_parser("demo", help="run the chocolate-store walkthrough")
    return parser


def _n_for(*queries, explicit: int | None) -> int | None:
    return explicit


def _cmd_learn(args) -> int:
    target = parse_query(args.target, n=args.n)
    cache = CachingOracle(QueryOracle(target))
    oracle = CountingOracle(cache)
    learner_cls = (
        Qhorn1Learner if args.learner == "qhorn1" else RolePreservingLearner
    )
    result = learner_cls(oracle).learn()
    exact = canonicalize(result.query) == canonicalize(target)
    if args.json:
        print(query_to_json(result.query))
    else:
        print(f"target : {target.shorthand()}")
        print(f"learned: {result.query.shorthand()}")
        print(
            f"questions: {oracle.questions_asked} "
            f"(distinct: {cache.stats.misses}, cache hits: {cache.stats.hits})"
        )
        print(
            f"rounds: {oracle.stats.rounds} "
            f"(mean batch: {oracle.stats.mean_batch:.1f}, "
            f"largest: {oracle.stats.largest_batch})"
        )
        print(f"exact: {exact}")
    return 0 if exact else 1


def _cmd_verify(args) -> int:
    n = args.n
    given = parse_query(args.given, n=n)
    intended = parse_query(args.intended, n=n or given.n)
    if intended.n > given.n:
        given = parse_query(args.given, n=intended.n)
    outcome = Verifier(given).run(QueryOracle(intended))
    print(f"given   : {given.shorthand()}")
    print(f"intended: {intended.shorthand()}")
    print(f"verified: {outcome.verified} "
          f"({outcome.questions_asked} questions)")
    for d in outcome.disagreements:
        print(f"  {d.describe()}")
    return 0 if outcome.verified else 1


def _cmd_revise(args) -> int:
    n = args.n
    given = parse_query(args.given, n=n)
    intended = parse_query(args.intended, n=n or given.n)
    if intended.n > given.n:
        given = parse_query(args.given, n=intended.n)
    oracle = CountingOracle(QueryOracle(intended))
    result = revise_query(given, oracle)
    exact = canonicalize(result.query) == canonicalize(intended)
    print(f"given  : {given.shorthand()}")
    print(f"revised: {result.query.shorthand()}")
    print(
        f"questions: {oracle.questions_asked} "
        f"in {oracle.stats.rounds} rounds"
    )
    for r in result.repairs:
        print(f"  {r}")
    print(f"exact: {exact}")
    return 0 if exact else 1


def _cmd_sql(args) -> int:
    from repro.data.propositions import BoolIs, Vocabulary
    from repro.data.schema import Attribute, FlatSchema
    from repro.data.sql import to_sql

    query = parse_query(args.query, n=args.n)
    schema = FlatSchema(
        "tuples",
        tuple(Attribute.boolean(f"p{i + 1}") for i in range(query.n)),
    )
    vocabulary = Vocabulary(
        schema,
        [BoolIs(f"p{i + 1}") for i in range(query.n)],
    )
    print(to_sql(query, vocabulary))
    return 0


def _cmd_demo(args) -> int:
    del args
    from repro.data import QueryEngine
    from repro.data.chocolate import (
        intro_query,
        random_store,
        storefront_vocabulary,
    )
    from repro.learning import learn_qhorn1

    vocabulary = storefront_vocabulary()
    store = random_store(100, random.Random(1304))
    print("propositions:")
    print(vocabulary.legend())
    cache = CachingOracle(QueryOracle(intro_query()))
    oracle = CountingOracle(cache)
    result = learn_qhorn1(oracle)
    print(f"\nintended: {intro_query().shorthand()}")
    print(f"learned : {result.query.shorthand()} "
          f"({oracle.questions_asked} questions, "
          f"{cache.stats.misses} distinct, "
          f"{oracle.stats.rounds} rounds)")
    engine = QueryEngine(store, vocabulary)
    matches = engine.execute_batch(result.query)
    print(f"matching boxes: {len(matches)} / {len(store)} "
          f"({engine.index.distinct_masks} distinct masks)")
    for box in matches[:5]:
        print(f"  {box.key}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "learn": _cmd_learn,
        "verify": _cmd_verify,
        "revise": _cmd_revise,
        "sql": _cmd_sql,
        "demo": _cmd_demo,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
