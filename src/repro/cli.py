"""Command-line interface: ``python -m repro <command>``.

Commands
--------
learn    simulate learning a target query by example
verify   run a verification set for a given query against an intent
revise   repair a close-but-wrong query against an intent
sql      compile a query to SQL over the generic two-table encoding
demo     the chocolate-store walkthrough
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core.normalize import canonicalize
from repro.core.parser import parse_query
from repro.core.serialize import query_to_json
from repro.learning import (
    Qhorn1Learner,
    RolePreservingLearner,
    revise_query,
)
from repro.oracle import (
    CachingOracle,
    CountingOracle,
    ParallelOracle,
    QueryOracle,
    SqlQueryOracle,
)
from repro.verification import Verifier

__all__ = ["main", "build_parser"]

#: Backend-selection guide shown in ``--help`` (DESIGN.md §2c/§2d).
BACKEND_GUIDE = """\
evaluation backends (--backend):
  bitmask   one in-process inverted bitmask index over the whole relation;
            the default — fastest for small/medium relations and the
            mask-native oracle for learn/verify
  sharded   the bitmask index partitioned into object-position blocks with
            bounded bitset widths; pick for relations beyond ~10k objects
            (linear builds and full-relation labeling, parallel-capable;
            backend options kernel=numpy and ingest=raw/built select the
            per-shard kernel and the pool-mode build path)
  numpy     the inverted index packed into numpy arrays (DESIGN.md §2g):
            the evaluation kernel runs as SIMD-width word operations
            instead of python big-int loops; pick for warm repeated
            evaluation over large relations (≥3x kernel speedup at 100k
            objects, see E26); requires numpy, supports n ≤ 64
  sql       queries compile to SQL once and run on SQLite; pick when a
            real database should answer — batches are one round trip, and
            learn/verify answer membership questions through the database
  dbapi     the SQL path generalized to any DB-API driver (DESIGN.md §2i):
            queries render through a SQL dialect (placeholder style,
            identifier quoting, type mapping) and run through a bounded
            connection pool with health checks and retry-on-stale; the
            built-in connector is SQLite over a URI, so
            --backend-opt uri=file:/path/db.sqlite evaluates on a
            file-backed store today and a client/server database plugs
            in as a third-party backend tomorrow
All backends return identical answers on identical state (DESIGN.md §2c).
Subcommand choices are derived from each backend's registered capability
flags: learn/verify list the oracle-capable backends, demo lists all.

backend options (--backend-opt KEY=VALUE, repeatable):
  one uniform options pipeline for every subcommand: each occurrence is
  a key=value pair forwarded to the backend (or its oracle) constructor
  with typed coercion (true/false → bool, digits → int/float,
  none → None).  Examples:
    --backend sharded --backend-opt shard_size=4096
    --backend dbapi --backend-opt uri=file:/tmp/store.sqlite \
                    --backend-opt pool_size=2
  The same pairs drive QueryEngine(backend_options=...) in code and the
  pytest --backend/--backend-opt fixtures in the test-suite.

third-party backends (DESIGN.md §2i):
  backends register by name on repro.data.backends.REGISTRY — packaged
  plugins via the 'repro.backends' entry-point group (loaded lazily on
  first use), ad-hoc plugins via REPRO_BACKENDS=pkg.mod:Class (or
  name=pkg.mod:Class, comma-separated) — and then appear in --backend
  choices and the backend-parametrized test-suite without editing repro.
  See examples/custom_backend.py for a complete out-of-tree backend.

process parallelism (--parallel N, DESIGN.md §2d):
  learn/verify   membership-question batches fan out over N persistent
                 worker processes (a ParallelOracle around the target
                 oracle); answers, question counts and round statistics
                 are bit-identical to the sequential path
  demo           the relation evaluates on the sharded backend through an
                 N-process worker pool (shard state ships to the workers
                 once; per query only the compiled form crosses)
  N=0 uses every core (os.cpu_count()).  Parallelism pays on multi-core
  machines with large batches/relations; small runs are faster without it.

remote sessions (learn --serve-stdio, DESIGN.md §2e):
  the learner runs sans-io and speaks newline-delimited JSON on stdio:
  one {"type":"round",...} line per question batch out, one
  {"type":"answers",...} line in; {"type":"snapshot"} parks the session
  as a replay log that `--resume FILE` restores later at the exact same
  round.  Pipe it to a subprocess, an ssh session or a websocket bridge
  to serve a remote user without blocking a thread per session.

multi-session server (repro serve, DESIGN.md §2f):
  an asyncio TCP server multiplexing many concurrent dialogues in one
  event loop, speaking the stdio wire framed with a session id:
  {"type":"open","n":N,"learner":"qhorn1"} starts a dialogue,
  {"type":"answers","session":ID,...} answers its pending round,
  {"type":"reconnect","session":ID} resumes a parked one.  Every round
  boundary persists the session's replay-log snapshot into the sqlite
  session store (--store FILE), so dialogues survive disconnects, idle
  eviction (--idle-timeout) and full server restarts; per-round metering
  counters ride along in each {"type":"finished"} summary.  The server
  prints one {"type":"listening","port":P} line on startup (--port 0
  picks an ephemeral port) and exits cleanly on SIGINT/SIGTERM.

multi-process fleet (repro serve --workers N, DESIGN.md §2h):
  N worker processes each run their own RoundServer event loop on the
  same host:port via SO_REUSEPORT (platforms without it get a shard
  router keyed on session id), with the file-backed --store as the only
  shared state (WAL mode, per-worker connections).  A reconnect landing
  on a different worker rebuilds the parked session from the store; a
  session still live on another running worker is a recoverable error
  (ownership claim tokens), and sessions owned by a killed worker are
  stolen and resumed.  N=0 uses every core.  SIGTERM fans out to every
  worker and joins them; the shutdown line merges all worker counters.
  `repro serve --stats --store FILE` prints the merged counters of the
  last fleet on that store and exits.  Counters include the DB-API
  connection-pool health of each worker (pool_connections_opened,
  pool_checkouts, pool_health_failures, pool_stale_retries).

exhaustive conformance (repro enumerate, DESIGN.md §2j):
  where the property suites sample, `repro enumerate` proves by cases:
  it generates EVERY qhorn-1 query up to --max-props propositions
  (deduplicated up to semantic equivalence) and EVERY relation up to
  --max-objects objects, then drives each through the full matrix —
  learner (qhorn1/naive/role-preserving) × oracle transport
  (direct/sql/dbapi-pooled) × driver (pull/sans-io) × parallelism
  (serial/worker-pool), and every evaluation backend — asserting
  bit-identical transcripts, stats and learned queries everywhere, and
  checking Theorem 3.1's question bound on every single instance.  Any
  disagreement is shrunk to a minimal witness and written to the JSONL
  corpus (--out FILE), which `python -m repro.server.loadgen
  --scenario FILE` replays as server load and --resume continues after
  an interruption.  Exit status 1 on any divergence.
"""


def _add_enumerate_arguments(parser: argparse.ArgumentParser) -> None:
    """The `repro enumerate` surface (shared with python -m
    repro.enumerate.runner)."""
    parser.add_argument(
        "--max-props",
        type=int,
        default=2,
        metavar="K",
        help="enumerate every query over up to K propositions "
        "(semantic dedup walks 2^(2^K) objects: K<=4; default 2)",
    )
    parser.add_argument(
        "--max-objects",
        type=int,
        default=2,
        metavar="N",
        help="enumerate every relation with up to N objects (default 2)",
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        default=2,
        metavar="R",
        help="rows (distinct tuples) per enumerated object (default 2)",
    )
    parser.add_argument(
        "--max-exprs",
        type=int,
        default=None,
        metavar="E",
        help="expressions per enumerated query (default: n at each n)",
    )
    parser.add_argument(
        "--vocab",
        choices=("bool", "mixed"),
        default="bool",
        help="store concretization: pure Boolean attributes, or mixed "
        "Boolean/category/numeric (exercises typed SQL rendering)",
    )
    parser.add_argument(
        "--guarantees",
        choices=("true", "both"),
        default="true",
        help="evaluation semantics to enumerate: the paper default, or "
        "also the relaxed no-guarantee variant",
    )
    parser.add_argument(
        "--matrix",
        default="full",
        metavar="SPEC",
        help="conformance matrix: 'full' or axis=a+b pairs joined by ';' "
        "(axes: learners, oracles, drivers, parallel, backends), e.g. "
        "'learners=qhorn1;backends=bitmask+sql;parallel=serial'",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="append the JSONL corpus (queries, stores, verdicts, "
        "divergences, summary) here; doubles as a loadgen scenario file",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip work already verified clean in --out and append",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=2,
        metavar="N",
        help="worker processes for the pool matrix legs "
        "(0 drops those legs entirely; default 2)",
    )
    parser.add_argument(
        "--progress-every",
        type=int,
        default=25,
        metavar="N",
        help="progress line to stderr every N units of work (default 25)",
    )


def build_enumerate_parser() -> argparse.ArgumentParser:
    """Standalone parser for ``python -m repro.enumerate.runner``."""
    parser = argparse.ArgumentParser(
        prog="repro-enumerate",
        description="bounded-exhaustive differential conformance sweep",
    )
    _add_enumerate_arguments(parser)
    return parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="qhorn: learn and verify quantified Boolean queries "
        "by example (PODS 2013)",
        epilog=BACKEND_GUIDE,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.data.backends import REGISTRY

    def add_backend_flag(p, oracle_only: bool = False) -> None:
        # Choices come from the registry's capability flags, not name
        # literals: learn/verify need a backend that can answer
        # membership questions (supports_oracle), demo evaluates a
        # relation and takes every registered backend — including
        # entry-point / REPRO_BACKENDS plugins.  default=None so
        # handlers can tell an explicit --backend from the default
        # (the --parallel conflict check).
        choices = (
            tuple(REGISTRY.names_with(supports_oracle=True))
            if oracle_only
            else tuple(REGISTRY.names())
        )
        p.add_argument(
            "--backend",
            choices=choices,
            default=None,
            help="evaluation backend (default: bitmask; see the guide at "
            "the bottom of `repro --help`)",
        )
        p.add_argument(
            "--backend-opt",
            action="append",
            default=None,
            metavar="KEY=VALUE",
            help="backend constructor option, repeatable, typed coercion "
            "(see the guide at the bottom of `repro --help`)",
        )

    def add_parallel_flag(p) -> None:
        p.add_argument(
            "--parallel",
            type=int,
            default=None,
            metavar="N",
            help="evaluate through N worker processes (0 = one per core; "
            "see the guide at the bottom of `repro --help`)",
        )

    learn = sub.add_parser("learn", help="learn a target query by example")
    learn.add_argument(
        "target",
        nargs="?",
        default=None,
        help="query shorthand, e.g. '∀x1 ∃x2x3' (omit with --serve-stdio: "
        "the remote user is the oracle)",
    )
    learn.add_argument("--n", type=int, default=None)
    learn.add_argument(
        "--learner",
        choices=("qhorn1", "role-preserving"),
        default="role-preserving",
    )
    learn.add_argument("--json", action="store_true", help="emit JSON")
    learn.add_argument(
        "--serve-stdio",
        action="store_true",
        help="serve the learner's question rounds as JSON lines on stdout "
        "and read answer lines from stdin (see the serve guide at the "
        "bottom of `repro --help`); requires --n, ignores the target",
    )
    learn.add_argument(
        "--resume",
        metavar="SNAPSHOT",
        default=None,
        help="with --serve-stdio: resume a parked session from a snapshot "
        "JSON file written by an earlier {\"type\": \"snapshot\"} exchange",
    )
    add_backend_flag(learn, oracle_only=True)
    add_parallel_flag(learn)

    verify = sub.add_parser(
        "verify", help="verify a given query against an intended one"
    )
    verify.add_argument("given")
    verify.add_argument("intended")
    verify.add_argument("--n", type=int, default=None)
    add_backend_flag(verify, oracle_only=True)
    add_parallel_flag(verify)

    revise = sub.add_parser(
        "revise", help="revise a close query toward the intended one"
    )
    revise.add_argument("given")
    revise.add_argument("intended")
    revise.add_argument("--n", type=int, default=None)

    sql = sub.add_parser("sql", help="compile a query to SQL")
    sql.add_argument("query")
    sql.add_argument("--n", type=int, default=None)

    demo = sub.add_parser("demo", help="run the chocolate-store walkthrough")
    add_backend_flag(demo)
    add_parallel_flag(demo)

    serve = sub.add_parser(
        "serve",
        help="multi-session asyncio round server (see the serve guide at "
        "the bottom of `repro --help`)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = pick an ephemeral port and print it)",
    )
    serve.add_argument(
        "--store",
        metavar="FILE",
        default=":memory:",
        help="sqlite session store; file-backed stores let parked "
        "dialogues survive a server restart (default: in-memory)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict sessions idle this long from memory (their snapshots "
        "stay parked in the store; reconnect resumes them)",
    )
    serve.add_argument(
        "--max-outbox",
        type=int,
        default=64,
        metavar="N",
        help="per-connection reply queue bound (backpressure)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="serve from N worker processes on one host:port "
        "(SO_REUSEPORT; 0 = one per core; requires a file-backed "
        "--store — see the fleet guide at the bottom of `repro --help`)",
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="print the merged per-worker counters recorded in --store "
        "by the last fleet shutdown, then exit",
    )

    enumerate_ = sub.add_parser(
        "enumerate",
        help="exhaustive bounded enumeration + differential conformance "
        "(see the enumerate guide at the bottom of `repro --help`)",
    )
    _add_enumerate_arguments(enumerate_)
    return parser


def _backend_opts(args, command: str) -> dict | None:
    """Parse the repeatable ``--backend-opt`` pairs; None + message on error."""
    from repro.data.backends import parse_backend_opts

    try:
        return parse_backend_opts(getattr(args, "backend_opt", None))
    except ValueError as error:
        print(f"repro {command}: {error}", file=sys.stderr)
        return None


def _target_oracle(
    target, backend: str, parallel: int | None = None, options: dict | None = None
):
    """The ground-truth oracle for ``target`` under a backend choice.

    SQL-capable backends (``sql``, ``dbapi``) answer through
    :class:`SqlQueryOracle`'s one-round-trip ``ask_many``.  ``dbapi``
    answers through the pooled oracle (:meth:`SqlQueryOracle.pooled`):
    batches check connections out of a health-checked
    ``PooledConnectionSource`` exactly like ``DbApiBackend`` evaluations
    do, and ``--backend-opt uri=file:...`` / ``pool_size=N`` configure
    the pool.  With ``parallel`` set, the evaluator is wrapped in a
    :class:`ParallelOracle`; SQL evaluators ship as a factory so every
    worker opens a *private* scratch database (a shared file URI or pool
    across processes would race, so those stay coordinator-only).
    Returns ``(oracle, closer)`` where ``closer`` releases the worker or
    connection pool — ``None`` when nothing needs closing.
    """
    from repro.data.backends import REGISTRY

    options = dict(options or {})
    sql_capable = REGISTRY.capabilities(backend).supports_sql
    if not sql_capable and options:
        raise ValueError(
            f"backend {backend!r} answers in process and takes no "
            f"--backend-opt (got: {', '.join(sorted(options))})"
        )
    if parallel is not None:
        import functools

        if sql_capable:
            options.pop("uri", None)
            options.pop("pool_size", None)
            oracle = ParallelOracle(
                factory=functools.partial(SqlQueryOracle, target, **options),
                processes=parallel,
            )
        else:
            oracle = ParallelOracle(QueryOracle(target), processes=parallel)
        return oracle, oracle
    if backend == "dbapi":
        oracle = SqlQueryOracle.pooled(target, **options)
        return oracle, oracle
    if sql_capable:
        return SqlQueryOracle(target, **options), None
    return QueryOracle(target), None


def _n_for(*queries, explicit: int | None) -> int | None:
    return explicit


def _cmd_serve_stdio(args) -> int:
    """Round-per-line JSON session over stdio (DESIGN.md §2e).

    The learner runs sans-io inside a resumable
    :class:`~repro.interactive.session.LearningSession`; whoever is on the
    other side of the pipe answers the rounds.
    """
    from repro.interactive.session import LearningSession, SessionSnapshot
    from repro.protocol.stdio import serve_stdio

    if args.n is None:
        print(
            "repro learn --serve-stdio: --n is required (the remote user "
            "answers; nothing else fixes the variable count)",
            file=sys.stderr,
        )
        return 2
    learner_cls = (
        Qhorn1Learner if args.learner == "qhorn1" else RolePreservingLearner
    )
    session = LearningSession(lambda oracle: learner_cls(oracle), n=args.n)
    resume = None
    if args.resume is not None:
        import json

        with open(args.resume, encoding="utf-8") as fh:
            resume = SessionSnapshot.from_dict(json.load(fh))
    return serve_stdio(session, sys.stdin, sys.stdout, resume=resume)


def _cmd_learn(args) -> int:
    if args.serve_stdio:
        return _cmd_serve_stdio(args)
    if args.target is None:
        print(
            "repro learn: a target query is required (or --serve-stdio)",
            file=sys.stderr,
        )
        return 2
    target = parse_query(args.target, n=args.n)
    options = _backend_opts(args, "learn")
    if options is None:
        return 2
    try:
        evaluator, closer = _target_oracle(
            target, args.backend or "bitmask", args.parallel, options
        )
    except (TypeError, ValueError) as error:
        print(f"repro learn: {error}", file=sys.stderr)
        return 2
    cache = CachingOracle(evaluator)
    oracle = CountingOracle(cache)
    learner_cls = (
        Qhorn1Learner if args.learner == "qhorn1" else RolePreservingLearner
    )
    try:
        result = learner_cls(oracle).learn()
    finally:
        if closer is not None:
            closer.close()
    exact = canonicalize(result.query) == canonicalize(target)
    if args.json:
        print(query_to_json(result.query))
    else:
        print(f"target : {target.shorthand()}")
        print(f"learned: {result.query.shorthand()}")
        print(
            f"questions: {oracle.questions_asked} "
            f"(distinct: {cache.stats.misses}, cache hits: {cache.stats.hits})"
        )
        print(
            f"rounds: {oracle.stats.rounds} "
            f"(mean batch: {oracle.stats.mean_batch:.1f}, "
            f"largest: {oracle.stats.largest_batch})"
        )
        print(f"exact: {exact}")
    return 0 if exact else 1


def _cmd_verify(args) -> int:
    n = args.n
    given = parse_query(args.given, n=n)
    intended = parse_query(args.intended, n=n or given.n)
    if intended.n > given.n:
        given = parse_query(args.given, n=intended.n)
    options = _backend_opts(args, "verify")
    if options is None:
        return 2
    try:
        evaluator, closer = _target_oracle(
            intended, args.backend or "bitmask", args.parallel, options
        )
    except (TypeError, ValueError) as error:
        print(f"repro verify: {error}", file=sys.stderr)
        return 2
    try:
        outcome = Verifier(given).run(evaluator)
    finally:
        if closer is not None:
            closer.close()
    print(f"given   : {given.shorthand()}")
    print(f"intended: {intended.shorthand()}")
    print(f"verified: {outcome.verified} "
          f"({outcome.questions_asked} questions)")
    for d in outcome.disagreements:
        print(f"  {d.describe()}")
    return 0 if outcome.verified else 1


def _cmd_revise(args) -> int:
    n = args.n
    given = parse_query(args.given, n=n)
    intended = parse_query(args.intended, n=n or given.n)
    if intended.n > given.n:
        given = parse_query(args.given, n=intended.n)
    oracle = CountingOracle(QueryOracle(intended))
    result = revise_query(given, oracle)
    exact = canonicalize(result.query) == canonicalize(intended)
    print(f"given  : {given.shorthand()}")
    print(f"revised: {result.query.shorthand()}")
    print(
        f"questions: {oracle.questions_asked} "
        f"in {oracle.stats.rounds} rounds"
    )
    for r in result.repairs:
        print(f"  {r}")
    print(f"exact: {exact}")
    return 0 if exact else 1


def _cmd_sql(args) -> int:
    from repro.data.propositions import BoolIs, Vocabulary
    from repro.data.schema import Attribute, FlatSchema
    from repro.data.sql import to_sql

    query = parse_query(args.query, n=args.n)
    schema = FlatSchema(
        "tuples",
        tuple(Attribute.boolean(f"p{i + 1}") for i in range(query.n)),
    )
    vocabulary = Vocabulary(
        schema,
        [BoolIs(f"p{i + 1}") for i in range(query.n)],
    )
    print(to_sql(query, vocabulary))
    return 0


def _cmd_demo(args) -> int:
    from repro.data.backends import REGISTRY

    # Validate the flag combination before any work happens.  --parallel
    # evaluates through the worker-pool (sharded) layout; an *explicit*
    # --backend without the supports_parallel capability is a conflict
    # the user must resolve, not a choice to silently override (the PR 3
    # behaviour quietly replaced any backend with "sharded").
    backend = args.backend
    if args.parallel is not None:
        if backend is not None and not (
            REGISTRY.capabilities(backend).supports_parallel
        ):
            print(
                f"repro demo: --parallel evaluates through the worker-pool "
                f"(sharded) layout and conflicts with --backend {backend}; "
                f"drop --backend or pass --backend sharded",
                file=sys.stderr,
            )
            return 2
        backend = "sharded"
    backend = backend or "bitmask"
    backend_options = _backend_opts(args, "demo")
    if backend_options is None:
        return 2
    if args.parallel is not None:
        # Process parallelism partitions the relation, which is exactly
        # the sharded layout (validated above).
        backend_options["processes"] = args.parallel

    from repro.data import QueryEngine
    from repro.data.chocolate import (
        intro_query,
        random_store,
        storefront_vocabulary,
    )
    from repro.learning import learn_qhorn1

    vocabulary = storefront_vocabulary()
    store = random_store(100, random.Random(1304))
    print("propositions:")
    print(vocabulary.legend())
    cache = CachingOracle(QueryOracle(intro_query()))
    oracle = CountingOracle(cache)
    result = learn_qhorn1(oracle)
    print(f"\nintended: {intro_query().shorthand()}")
    print(f"learned : {result.query.shorthand()} "
          f"({oracle.questions_asked} questions, "
          f"{cache.stats.misses} distinct, "
          f"{oracle.stats.rounds} rounds)")
    engine = QueryEngine(
        store, vocabulary, backend=backend, backend_options=backend_options
    )
    try:
        try:
            matches = engine.execute_batch(result.query)
        except (TypeError, ValueError) as error:
            print(f"repro demo: {error}", file=sys.stderr)
            return 2
        print(f"matching boxes: {len(matches)} / {len(store)} "
              f"({engine.backend.describe()})")
    finally:
        # Only a backend that actually built needs closing (bad options
        # fail inside the lazy build, leaving nothing behind).
        built = getattr(engine, "_backend", None)
        close = getattr(built, "close", None)
        if close is not None:
            close()
    for box in matches[:5]:
        print(f"  {box.key}")
    return 0


def _cmd_serve(args) -> int:
    """Multi-session round server (DESIGN.md §2f), single-process by
    default; ``--workers N`` serves from an N-process fleet (§2h)."""
    import asyncio
    import json
    import signal

    from repro.server import RoundServer, SessionStore

    if args.stats:
        if args.store == ":memory:":
            print(
                "repro serve --stats: needs --store FILE (an in-memory "
                "store records nothing to report)",
                file=sys.stderr,
            )
            return 2
        with SessionStore(args.store) as store:
            print(json.dumps(store.fleet_stats()))
        return 0
    if args.workers != 1:
        return _cmd_serve_fleet(args)

    async def serve() -> int:
        store = SessionStore(args.store)
        server = RoundServer(
            store,
            max_outbox=args.max_outbox,
            idle_timeout=args.idle_timeout,
        )
        await server.start(args.host, args.port)
        print(
            json.dumps(
                {
                    "type": "listening",
                    "host": args.host,
                    "port": server.port,
                    "store": args.store,
                }
            ),
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        try:
            await stop.wait()
        finally:
            await server.close()
            stats = server.stats()
            store.close()
            print(f"repro serve: shut down clean {stats}", file=sys.stderr)
        return 0

    return asyncio.run(serve())


def _cmd_serve_fleet(args) -> int:
    """The §2h multi-process serving tier: `repro serve --workers N`.

    The parent is a supervisor, not a server: it forks the workers,
    prints the listening handshake, and waits for SIGINT/SIGTERM — which
    it fans out to every worker before joining them and printing the
    merged fleet counters.
    """
    import signal
    import threading

    from repro.server.multiproc import ServerFleet, print_listening

    if args.store == ":memory:":
        print(
            "repro serve: --workers needs a file-backed --store (the "
            "store is the only state the workers share)",
            file=sys.stderr,
        )
        return 2
    fleet = ServerFleet(
        args.store,
        workers=args.workers,
        host=args.host,
        port=args.port,
        max_outbox=args.max_outbox,
        idle_timeout=args.idle_timeout,
    )
    fleet.start()
    print_listening(fleet)
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    try:
        # Wake periodically so a fleet whose workers all died (crash,
        # external kill) does not leave a zombie supervisor behind.
        while not stop.wait(0.2):
            if not fleet.alive():
                break
    finally:
        stats = fleet.stop()
        print(f"repro serve: shut down clean {stats}", file=sys.stderr)
    return 0


def _cmd_enumerate(args) -> int:
    from repro.enumerate.runner import run_from_args

    return run_from_args(args)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "learn": _cmd_learn,
        "verify": _cmd_verify,
        "revise": _cmd_revise,
        "sql": _cmd_sql,
        "demo": _cmd_demo,
        "serve": _cmd_serve,
        "enumerate": _cmd_enumerate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
