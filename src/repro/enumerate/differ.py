"""Differential conformance over the enumerated spaces (DESIGN.md §2j).

Every enumerated (query, store) pair runs through the full cartesian
matrix and every leg must agree **exactly**:

* **Learner matrix** (per query — learners never see the store):
  learner (``qhorn1`` / ``naive`` / ``role-preserving``) × oracle
  transport (in-process ``direct`` / ``sql`` scratch database /
  ``dbapi`` pooled connections) × driver (``pull`` ``learn()`` vs
  manual ``sansio`` :class:`~repro.protocol.core.LearnerProtocol`
  stepping) × parallelism (``serial`` vs a
  :class:`~repro.oracle.ParallelOracle` fanning chunks over a shared
  :class:`~repro.parallel.ShardWorkerPool`).  Across all legs the
  question/answer transcript, the learned query and the
  :class:`~repro.oracle.counting.QuestionStats` must be bit-identical,
  the learned query must be semantically equivalent to the target, and
  the question count must satisfy the paper's bound — Theorem 3.1
  (``12·n·lg n + 12``, the constant the learning suite pins) for the
  qhorn-1 learner, the role-preserving bound
  (``4n³ + 6kn·lg n + 40``) for the §4 learner.
* **Backend matrix** (per (query, store) pair): every registered
  evaluation backend — ``bitmask``, ``sharded`` (python and numpy
  kernels, plus a shared-worker-pool leg), ``numpy``, ``sql``,
  ``dbapi`` — must produce the per-object labels, answer keys and
  answer bitmask that :class:`~repro.core.query.CompiledQuery` computes
  from each object's abstraction.  The ``dbapi`` leg additionally
  answers membership questions through a pooled
  :class:`~repro.oracle.SqlQueryOracle` *sharing the backend's
  connection pool* (:meth:`~repro.oracle.SqlQueryOracle.for_backend`),
  so oracle batching and relation evaluation are checked against each
  other inside one database.

A failed leg becomes a :class:`Divergence` carrying a greedily
**shrunk** witness (expressions dropped from the query, objects and
rows dropped from the store, while the leg still disagrees) — small
enough to paste into a regression test.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from repro.core.normalize import brute_force_equivalent
from repro.core.query import QhornQuery
from repro.core.serialize import query_from_dict, query_to_dict
from repro.core.tuples import Question
from repro.enumerate.space import EnumeratedQuery, EnumeratedStore
from repro.learning import Qhorn1Learner, RolePreservingLearner
from repro.learning.baselines import NaiveQhorn1Learner
from repro.oracle import (
    CountingOracle,
    ParallelOracle,
    QueryOracle,
    SqlQueryOracle,
)
from repro.oracle.counting import RecordingOracle
from repro.protocol.core import Finished, LearnerProtocol
from repro.protocol.drivers import answer_round

__all__ = [
    "Divergence",
    "LearnerOutcome",
    "MatrixSpec",
    "check_backends",
    "check_learners",
    "role_preserving_bound",
    "shrink_query",
    "shrink_store",
    "theorem_31_bound",
]


def theorem_31_bound(n: int) -> float:
    """Theorem 3.1's question bound at the constants the learning suite
    pins (``tests/learning/test_qhorn1.py``): ``12·n·lg n + 12``."""
    return 12 * n * math.log2(max(n, 2)) + 12


def role_preserving_bound(n: int, k: int) -> float:
    """The §4 role-preserving bound as pinned by the learning suite:
    ``4n³ + 6kn·lg n + 40``."""
    return 4 * n**3 + 6 * max(k, 1) * n * math.log2(max(n, 2)) + 40


LEARNER_FACTORIES: dict[str, Callable[[Any], Any]] = {
    "qhorn1": Qhorn1Learner,
    "naive": NaiveQhorn1Learner,
    "role-preserving": RolePreservingLearner,
}

#: (learner kind, n) → question-count bound, or None for unbounded
#: baselines.  ``naive`` is the Θ(n²) control — it must agree
#: everywhere but no paper bound applies.
def question_bound(learner: str, query: QhornQuery) -> float | None:
    if learner == "qhorn1":
        return theorem_31_bound(query.n)
    if learner == "role-preserving":
        return role_preserving_bound(query.n, query.size)
    return None


@dataclass(frozen=True)
class MatrixSpec:
    """Which legs of the conformance matrix to run.

    ``parse`` accepts ``"full"`` or a ``;``-separated spec of
    ``axis=choice+choice`` entries, e.g.
    ``learners=qhorn1+naive;backends=bitmask+sql;drivers=pull``.
    """

    learners: tuple[str, ...] = ("qhorn1", "naive", "role-preserving")
    oracles: tuple[str, ...] = ("direct", "sql", "dbapi")
    drivers: tuple[str, ...] = ("pull", "sansio")
    parallel: tuple[str, ...] = ("serial", "pool")
    backends: tuple[str, ...] = (
        "bitmask",
        "sharded",
        "sharded-numpy",
        "sharded-pool",
        "numpy",
        "sql",
        "dbapi",
    )

    @classmethod
    def parse(cls, spec: str | None) -> "MatrixSpec":
        if spec is None or spec == "full":
            return cls()
        full = cls()
        chosen: dict[str, tuple[str, ...]] = {}
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            axis, _, raw = entry.partition("=")
            axis = axis.strip()
            if axis not in full.__dataclass_fields__:
                raise ValueError(
                    f"unknown matrix axis {axis!r}; choices: "
                    f"{', '.join(full.__dataclass_fields__)}"
                )
            values = tuple(v.strip() for v in raw.split("+") if v.strip())
            allowed = getattr(full, axis)
            for value in values:
                if value not in allowed:
                    raise ValueError(
                        f"unknown {axis} choice {value!r}; choices: "
                        f"{', '.join(allowed)}"
                    )
            chosen[axis] = values
        return replace(full, **chosen)

    def without_numpy(self) -> "MatrixSpec":
        """Drop the numpy-kernel legs (gating a missing dependency)."""
        return replace(
            self,
            backends=tuple(
                b for b in self.backends if "numpy" not in b
            ),
        )

    def without_pool(self) -> "MatrixSpec":
        """Drop the worker-pool legs (``--parallel 0``)."""
        return replace(
            self,
            parallel=tuple(p for p in self.parallel if p != "pool"),
            backends=tuple(b for b in self.backends if b != "sharded-pool"),
        )

    def learner_combos(self) -> list[tuple[str, str, str, str]]:
        return [
            (learner, oracle, driver, parallel)
            for learner in self.learners
            for oracle in self.oracles
            for driver in self.drivers
            for parallel in self.parallel
        ]


@dataclass
class Divergence:
    """One matrix leg that disagreed, with a shrunk witness."""

    site: str  # "backend" | "learner" | "equivalence" | "bound" | "crash"
    query_id: str
    detail: str
    store_id: str | None = None
    combo: dict = field(default_factory=dict)
    shrunk_query: dict | None = None
    shrunk_store: list | None = None

    def to_record(self) -> dict:
        return {
            "kind": "divergence",
            "site": self.site,
            "query": self.query_id,
            "store": self.store_id,
            "combo": self.combo,
            "detail": self.detail,
            "shrunk_query": self.shrunk_query,
            "shrunk_store": self.shrunk_store,
        }


# ----------------------------------------------------------------------
# Learner matrix
# ----------------------------------------------------------------------
@dataclass
class LearnerOutcome:
    """Everything one learner leg must agree on, in comparable form."""

    transcript: tuple
    stats: tuple
    learned: QhornQuery
    questions: int
    rounds: int


def _fresh_pooled_oracle(query_dict: dict) -> SqlQueryOracle:
    """Worker-side factory for the dbapi×pool leg (module level: ships
    pickled to :class:`~repro.parallel.ShardWorkerPool` workers)."""
    return SqlQueryOracle.pooled(query_from_dict(query_dict))


def _transport_oracle(
    target: QhornQuery, oracle_kind: str, parallel_mode: str, pool: Any
) -> tuple[Any, list[Any]]:
    """Build one leg's transport oracle; returns (oracle, closeables)."""
    closeables: list[Any] = []
    if parallel_mode == "pool":
        # chunk_size=1 forces every multi-question batch across the
        # process boundary — the leg exists to exercise the dispatch.
        if oracle_kind == "direct":
            oracle: Any = ParallelOracle(
                QueryOracle(target), pool=pool, chunk_size=1
            )
        elif oracle_kind == "sql":
            oracle = ParallelOracle(
                factory=functools.partial(SqlQueryOracle, target),
                pool=pool,
                chunk_size=1,
            )
        elif oracle_kind == "dbapi":
            oracle = ParallelOracle(
                factory=functools.partial(
                    _fresh_pooled_oracle, query_to_dict(target)
                ),
                pool=pool,
                chunk_size=1,
            )
        else:
            raise ValueError(f"unknown oracle transport {oracle_kind!r}")
        closeables.append(oracle)
        closeables.append(oracle.inner)  # the coordinator-local copy
        return oracle, closeables
    if oracle_kind == "direct":
        return QueryOracle(target), closeables
    if oracle_kind == "sql":
        oracle = SqlQueryOracle(target)
    elif oracle_kind == "dbapi":
        oracle = SqlQueryOracle.pooled(target)
    else:
        raise ValueError(f"unknown oracle transport {oracle_kind!r}")
    closeables.append(oracle)
    return oracle, closeables


def _stats_key(stats: Any) -> tuple:
    return (
        stats.questions,
        stats.tuples,
        stats.rounds,
        stats.batched_questions,
        stats.largest_batch,
    )


def _transcript_key(
    transcript: Sequence[tuple[Question, bool]]
) -> tuple:
    return tuple(
        (q.n, tuple(q.sorted_tuples()), bool(a)) for q, a in transcript
    )


def run_learner_leg(
    target: QhornQuery,
    learner_kind: str,
    oracle_kind: str,
    driver: str,
    parallel_mode: str,
    pool: Any = None,
) -> LearnerOutcome:
    """Run one leg of the learner matrix to completion."""
    transport, closeables = _transport_oracle(
        target, oracle_kind, parallel_mode, pool
    )
    try:
        recording = RecordingOracle(transport)
        counting = CountingOracle(recording)
        learner = LEARNER_FACTORIES[learner_kind](counting)
        if driver == "pull":
            result = learner.learn()
        elif driver == "sansio":
            protocol = LearnerProtocol(learner.steps())
            event = protocol.start()
            while not isinstance(event, Finished):
                event = protocol.feed(answer_round(counting, event))
            result = event.result
        else:
            raise ValueError(f"unknown driver {driver!r}")
        learned = getattr(result, "query", result)
        return LearnerOutcome(
            transcript=_transcript_key(recording.transcript),
            stats=_stats_key(counting.stats),
            learned=learned,
            questions=counting.stats.questions,
            rounds=counting.stats.rounds,
        )
    finally:
        for closeable in closeables:
            close = getattr(closeable, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:
                    pass


def check_learners(
    entry: EnumeratedQuery,
    matrix: MatrixSpec,
    pool: Any = None,
) -> tuple[dict, list[Divergence]]:
    """Run every learner-matrix leg for one enumerated query.

    Returns ``(report, divergences)`` — the report carries per-learner
    question/round counts and the bounds they were checked against.

    Callers gate on ``entry.query.require_guarantees``: the learners
    emit paper-semantics queries, so a relaxed (``footnote-1``) target
    is outside their hypothesis class and the equivalence check would
    flag the semantics gap, not a bug (the runner routes relaxed
    queries through the backend matrix only).
    """
    target = entry.query
    divergences: list[Divergence] = []
    report: dict = {
        "kind": "learner",
        "id": entry.id,
        "n": target.n,
        "combos": 0,
        "questions": {},
        "rounds": {},
        "bounds": {},
        "status": "ok",
    }

    def diverge(site: str, detail: str, combo: dict) -> None:
        shrunk = shrink_query(
            target,
            lambda q: _learner_leg_differs(q, matrix, pool, combo),
        )
        divergences.append(
            Divergence(
                site=site,
                query_id=entry.id,
                detail=detail,
                combo=combo,
                shrunk_query=query_to_dict(shrunk),
            )
        )
        report["status"] = "divergent"

    for learner_kind in matrix.learners:
        reference: LearnerOutcome | None = None
        reference_combo: dict | None = None
        for oracle_kind, driver, parallel_mode in (
            (o, d, p)
            for o in matrix.oracles
            for d in matrix.drivers
            for p in matrix.parallel
        ):
            combo = {
                "learner": learner_kind,
                "oracle": oracle_kind,
                "driver": driver,
                "parallel": parallel_mode,
            }
            try:
                outcome = run_learner_leg(
                    target,
                    learner_kind,
                    oracle_kind,
                    driver,
                    parallel_mode,
                    pool,
                )
            except Exception as error:
                divergences.append(
                    Divergence(
                        site="crash",
                        query_id=entry.id,
                        detail=f"{type(error).__name__}: {error}",
                        combo=combo,
                        shrunk_query=query_to_dict(target),
                    )
                )
                report["status"] = "divergent"
                continue
            report["combos"] += 1
            if reference is None:
                reference = outcome
                reference_combo = combo
                # Correctness + bound checks once per learner: the
                # other legs are then pinned bit-identical to this one.
                if not brute_force_equivalent(outcome.learned, target):
                    diverge(
                        "equivalence",
                        f"{learner_kind} learned "
                        f"{outcome.learned.shorthand()!r}, target "
                        f"{target.shorthand()!r}",
                        combo,
                    )
                bound = question_bound(learner_kind, target)
                report["questions"][learner_kind] = outcome.questions
                report["rounds"][learner_kind] = outcome.rounds
                if bound is not None:
                    report["bounds"][learner_kind] = round(bound, 3)
                    if outcome.questions > bound:
                        divergences.append(
                            Divergence(
                                site="bound",
                                query_id=entry.id,
                                detail=(
                                    f"{learner_kind} asked "
                                    f"{outcome.questions} questions > "
                                    f"bound {bound:.1f} at n={target.n}"
                                ),
                                combo=combo,
                                shrunk_query=query_to_dict(target),
                            )
                        )
                        report["status"] = "divergent"
                continue
            for aspect, got, want in (
                ("transcript", outcome.transcript, reference.transcript),
                ("stats", outcome.stats, reference.stats),
                ("learned", outcome.learned, reference.learned),
            ):
                if got != want:
                    diverge(
                        "learner",
                        f"{aspect} differs from reference combo "
                        f"{reference_combo}",
                        combo,
                    )
                    break
    return report, divergences


def _learner_leg_differs(
    query: QhornQuery, matrix: MatrixSpec, pool: Any, combo: dict
) -> bool:
    """Shrinking predicate: does ``combo``'s leg still disagree with the
    first-configured leg of the same learner on ``query``?"""
    if not _in_learner_class(query, combo["learner"]):
        return False
    try:
        probe = run_learner_leg(
            query,
            combo["learner"],
            combo["oracle"],
            combo["driver"],
            combo["parallel"],
            pool,
        )
        reference = run_learner_leg(
            query,
            combo["learner"],
            matrix.oracles[0],
            matrix.drivers[0],
            matrix.parallel[0],
            pool,
        )
    except Exception:
        return True
    return (
        probe.transcript != reference.transcript
        or probe.stats != reference.stats
        or probe.learned != reference.learned
        or not brute_force_equivalent(probe.learned, query)
    )


def _in_learner_class(query: QhornQuery, learner: str) -> bool:
    if learner in ("qhorn1", "naive"):
        return query.is_qhorn1()
    return query.is_role_preserving()


# ----------------------------------------------------------------------
# Backend matrix
# ----------------------------------------------------------------------
#: Backend leg name → (registry name, constructor options).
BACKEND_LEGS: dict[str, tuple[str, dict]] = {
    "bitmask": ("bitmask", {}),
    "sharded": ("sharded", {"shard_size": 2}),
    "sharded-numpy": ("sharded", {"shard_size": 2, "kernel": "numpy"}),
    "sharded-pool": ("sharded", {"shard_size": 1}),
    "numpy": ("numpy", {}),
    "sql": ("sql", {}),
    "dbapi": ("dbapi", {"pool_size": 2}),
}


def reference_labels(
    query: QhornQuery, relation: Any, vocabulary: Any
) -> list[bool]:
    """The bitmask engine's per-object ground truth: compile once,
    evaluate each object's abstraction."""
    compiled = query.compile()
    return [
        compiled.evaluate(vocabulary.boolean_tuples(obj.rows))
        for obj in relation
    ]


def _build_backend(
    leg: str, relation: Any, vocabulary: Any, pool: Any
) -> Any:
    from repro.data.backends import create_backend

    name, options = BACKEND_LEGS[leg]
    options = dict(options)
    if leg == "sharded-pool":
        options["pool"] = pool
    return create_backend(name, relation, vocabulary, **options)


def check_backends(
    entry: EnumeratedQuery,
    store: EnumeratedStore,
    backends: dict[str, Any],
    relation: Any,
    vocabulary: Any,
) -> tuple[dict, list[Divergence]]:
    """Check every built backend against the reference on one pair.

    ``backends`` maps leg name → built backend (callers build once per
    store and sweep all queries over it).
    """
    query = entry.query
    expected = reference_labels(query, relation, vocabulary)
    expected_keys = [
        obj.key for obj, label in zip(relation, expected) if label
    ]
    expected_bits = 0
    for position, label in enumerate(expected):
        if label:
            expected_bits |= 1 << position
    divergences: list[Divergence] = []
    record = {
        "kind": "instance",
        "query": entry.id,
        "store": store.id,
        "matches": len(expected_keys),
        "backends": sorted(backends),
        "status": "ok",
    }
    for leg, backend in backends.items():
        problem: str | None = None
        try:
            labels = backend.matches_many(query)
            if list(labels) != expected:
                problem = f"matches_many {labels!r} != {expected!r}"
            else:
                keys = [obj.key for obj in backend.execute(query)]
                if sorted(keys) != sorted(expected_keys):
                    problem = f"execute keys {keys!r} != {expected_keys!r}"
                elif backend.matching_bits(query) != expected_bits:
                    problem = (
                        f"matching_bits {backend.matching_bits(query):#x} "
                        f"!= {expected_bits:#x}"
                    )
        except Exception as error:
            problem = f"{type(error).__name__}: {error}"
        if problem is None and leg == "dbapi":
            problem = _check_pooled_oracle(query, backend, store)
        if problem is not None:
            shrunk_query, shrunk_store = shrink_backend_case(
                query, store, leg
            )
            divergences.append(
                Divergence(
                    site="backend",
                    query_id=entry.id,
                    store_id=store.id,
                    detail=problem,
                    combo={"backend": leg},
                    shrunk_query=query_to_dict(shrunk_query),
                    shrunk_store=[sorted(m) for m in shrunk_store],
                )
            )
            record["status"] = "divergent"
    return record, divergences


def _check_pooled_oracle(
    query: QhornQuery, backend: Any, store: EnumeratedStore
) -> str | None:
    """The §2j pooled-oracle cross-check: membership answers through the
    *backend's own* connection pool must match the compiled query on
    every (non-empty) object of the store."""
    questions = [
        Question.of(store.n, masks) for masks in store.mask_sets if masks
    ]
    if not questions:
        return None
    compiled = query.compile()
    expected = [compiled.evaluate(q.tuples) for q in questions]
    oracle = SqlQueryOracle.for_backend(query, backend)
    try:
        got = oracle.ask_many(questions)
    except Exception as error:
        return f"pooled oracle: {type(error).__name__}: {error}"
    finally:
        oracle.close()
    if got != expected:
        return f"pooled oracle answers {got!r} != {expected!r}"
    return None


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def shrink_query(
    query: QhornQuery,
    still_fails: Callable[[QhornQuery], bool],
    max_probes: int = 200,
) -> QhornQuery:
    """Greedily drop expressions while the failure persists."""
    probes = 0
    improved = True
    current = query
    while improved and probes < max_probes:
        improved = False
        for kind in ("universals", "existentials"):
            for expression in sorted(getattr(current, kind)):
                candidate = QhornQuery(
                    n=current.n,
                    universals=(
                        current.universals - {expression}
                        if kind == "universals"
                        else current.universals
                    ),
                    existentials=(
                        current.existentials - {expression}
                        if kind == "existentials"
                        else current.existentials
                    ),
                    require_guarantees=current.require_guarantees,
                )
                probes += 1
                try:
                    fails = still_fails(candidate)
                except Exception:
                    fails = True
                if fails:
                    current = candidate
                    improved = True
                    break
                if probes >= max_probes:
                    break
            if improved:
                break
    return current


def shrink_store(
    mask_sets: Sequence[frozenset[int]],
    still_fails: Callable[[list[frozenset[int]]], bool],
    max_probes: int = 200,
) -> list[frozenset[int]]:
    """Greedily drop whole objects, then single rows, while failing."""
    probes = 0
    current = list(mask_sets)
    improved = True
    while improved and probes < max_probes:
        improved = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1 :]
            probes += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
        if improved:
            continue
        for index, masks in enumerate(current):
            for mask in sorted(masks):
                candidate = list(current)
                candidate[index] = masks - {mask}
                probes += 1
                if still_fails(candidate):
                    current = candidate
                    improved = True
                    break
            if improved:
                break
    return current


def shrink_backend_case(
    query: QhornQuery, store: EnumeratedStore, leg: str
) -> tuple[QhornQuery, list[frozenset[int]]]:
    """Minimize a backend divergence along both axes (store first —
    fewer objects make the query shrink probes cheaper)."""

    def fails(q: QhornQuery, mask_sets: list[frozenset[int]]) -> bool:
        probe_store = EnumeratedStore(
            id="shrink",
            n=store.n,
            objects=tuple(tuple(sorted(m)) for m in mask_sets),
        )
        from repro.enumerate.space import store_vocabulary

        vocabulary = store_vocabulary(store.n, "bool")
        relation = probe_store.relation(vocabulary)
        backend = None
        try:
            backend = _build_backend(leg, relation, vocabulary, None)
            expected = reference_labels(q, relation, vocabulary)
            if list(backend.matches_many(q)) != expected:
                return True
            if leg == "dbapi":
                return (
                    _check_pooled_oracle(q, backend, probe_store) is not None
                )
            return False
        except Exception:
            return True
        finally:
            close = getattr(backend, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:
                    pass

    if leg == "sharded-pool":
        # The shared pool is not available inside shrink probes; fall
        # back to the serial sharded layout, which shares the kernel.
        leg = "sharded"
    masks = shrink_store(
        store.mask_sets, lambda candidate: fails(query, candidate)
    )
    shrunk = shrink_query(query, lambda q: fails(q, masks))
    return shrunk, masks
