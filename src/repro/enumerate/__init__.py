"""Bounded-exhaustive enumeration + differential conformance (DESIGN.md §2j).

The property suites sample; this package *enumerates*.  ``space``
generates every qhorn query and every relation up to small size bounds
(deduplicated up to semantic equivalence, stable content-hash ids), and
``differ`` drives each enumerated (query, store) pair through the full
learner × backend × transport × parallelism matrix, asserting
bit-identical behaviour everywhere and checking the paper's Theorem 3.1
question bound exactly on every instance.  ``runner`` adds the
``repro enumerate`` CLI face: JSONL corpus export (which
``repro.server.loadgen --scenario`` replays), resume-from-checkpoint and
progress reporting.
"""

from repro.enumerate.space import (
    EnumeratedQuery,
    EnumeratedStore,
    enumerate_queries,
    enumerate_stores,
    query_signature,
)
from repro.enumerate.differ import (
    Divergence,
    MatrixSpec,
    role_preserving_bound,
    theorem_31_bound,
)

__all__ = [
    "EnumeratedQuery",
    "EnumeratedStore",
    "enumerate_queries",
    "enumerate_stores",
    "query_signature",
    "Divergence",
    "MatrixSpec",
    "theorem_31_bound",
    "role_preserving_bound",
]
