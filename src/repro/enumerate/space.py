"""Canonical enumerators for the qhorn query space and the store space.

The ROADMAP's bounded-model complement to the sampled property suites:
instead of ≥1000 *random* (query, relation) cases, provably cover
**every** case up to a size bound.

Query space
-----------
:func:`enumerate_queries` walks, for each ``n ≤ max_props``, every
subset (up to ``max_exprs`` expressions — Def. 2.5's query size ``k``)
of the full expression universe over ``n`` Boolean variables: all
``n·2^(n-1)`` universal Horn expressions ``∀B→h`` (empty bodies
included) and all ``2^n − 1`` existential conjunctions ``∃C``.  Each
candidate is filtered to the requested class (qhorn-1 by default) and
then **deduplicated up to semantic equivalence** with the bitmask
engine: the query compiles once and evaluates over *every* object on
``n`` variables (all ``2^(2^n)`` subsets of the tuple space, empty
object included), and two queries with the same truth table are the
same query.  What survives is a canonical transversal of the bounded
query space — every behaviour exactly once.

Store space
-----------
:func:`enumerate_stores` yields every relation with up to
``max_objects`` objects whose abstractions are mask sets of up to
``max_rows`` rows, deduplicated up to object order (objects have no
identity beyond their rows — Def. 2.1's sets).  Each store concretizes
to a :class:`~repro.data.relation.NestedRelation` under either a pure
Boolean vocabulary or a mixed typed one (Boolean / category-equality /
numeric-comparison propositions), so the typed SQL rendering paths are
enumerable too.

Both enumerators are deterministic and yield stable content-hash ids,
so runs shard by id and resume by skipping ids already done.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from itertools import combinations, combinations_with_replacement
from typing import Iterator, Sequence

from repro.core.expressions import ExistentialConjunction, UniversalHorn
from repro.core.normalize import enumerate_objects
from repro.core.query import QhornQuery
from repro.core.serialize import query_to_dict
from repro.data.propositions import BoolIs, Equals, LessThan, Vocabulary
from repro.data.relation import NestedRelation
from repro.data.schema import Attribute, FlatSchema, NestedSchema

__all__ = [
    "EnumeratedQuery",
    "EnumeratedStore",
    "enumerate_queries",
    "enumerate_stores",
    "expression_universe",
    "query_signature",
    "store_vocabulary",
    "QUERY_KINDS",
    "STORE_VOCABULARIES",
]

#: Class filters for the query space, in restrictiveness order.
QUERY_KINDS = ("qhorn1", "role-preserving", "qhorn")

#: Concretization flavours for the store space.
STORE_VOCABULARIES = ("bool", "mixed")

#: Signature enumeration is 2^(2^n) objects; the hard feasibility wall.
MAX_PROPS = 4


def _content_id(prefix: str, payload: object) -> str:
    digest = hashlib.sha1(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
    return f"{prefix}-{digest[:10]}"


# ----------------------------------------------------------------------
# Query space
# ----------------------------------------------------------------------
def expression_universe(
    n: int,
) -> list[UniversalHorn | ExistentialConjunction]:
    """Every qhorn expression over ``n`` variables, in canonical order.

    Universal Horn expressions first (by head, then body), then
    existential conjunctions (by variable set) — a fixed order, so
    subset enumeration (and therefore every id downstream) is stable.
    """
    universe: list[UniversalHorn | ExistentialConjunction] = []
    variables = list(range(n))
    for head in variables:
        others = [v for v in variables if v != head]
        for size in range(len(others) + 1):
            for body in combinations(others, size):
                universe.append(
                    UniversalHorn(head=head, body=frozenset(body))
                )
    for size in range(1, n + 1):
        for conj in combinations(variables, size):
            universe.append(ExistentialConjunction(frozenset(conj)))
    return universe


def query_signature(query: QhornQuery) -> int:
    """The query's full truth table over every object on ``n`` variables
    (empty object included), packed into one integer — the bitmask
    engine's definition of semantic identity at enumerable ``n``."""
    compiled = query.compile()
    signature = 0
    for index, obj in enumerate(
        enumerate_objects(query.n, include_empty=True)
    ):
        if compiled.evaluate(obj):
            signature |= 1 << index
    return signature


def _in_kind(query: QhornQuery, kind: str) -> bool:
    if kind == "qhorn1":
        return query.is_qhorn1()
    if kind == "role-preserving":
        return query.is_role_preserving()
    if kind == "qhorn":
        return True
    raise ValueError(
        f"unknown query kind {kind!r}; choices: {', '.join(QUERY_KINDS)}"
    )


@dataclass(frozen=True)
class EnumeratedQuery:
    """One semantically-distinct point of the bounded query space."""

    id: str
    query: QhornQuery
    #: Truth table over ``enumerate_objects(n, include_empty=True)``.
    signature: int

    @property
    def n(self) -> int:
        return self.query.n

    def to_record(self) -> dict:
        """The corpus line (`repro.server.loadgen --scenario` replays
        these: one dialogue per enumerated query)."""
        return {
            "kind": "query",
            "id": self.id,
            "n": self.query.n,
            "size": self.query.size,
            "qhorn1": self.query.is_qhorn1(),
            "role_preserving": self.query.is_role_preserving(),
            "query": query_to_dict(self.query),
        }


def enumerate_queries(
    max_props: int,
    max_exprs: int | None = None,
    kind: str = "qhorn1",
    guarantees: Sequence[bool] = (True,),
    include_trivial: bool = False,
) -> Iterator[EnumeratedQuery]:
    """Every semantically-distinct ``kind`` query with ``n ≤ max_props``.

    ``max_exprs`` caps the expression count per query (Def. 2.5 size;
    default: ``n`` expressions at each ``n``).  ``guarantees`` selects
    the evaluation semantics to enumerate — ``(True,)`` for the paper
    default, ``(True, False)`` to also cover the footnote-1 relaxation
    (deduplication is semantic, so a relaxation that changes nothing for
    a given structure is not re-yielded).  ``include_trivial`` adds the
    empty query (every object answers).
    """
    if max_props < 1:
        raise ValueError(f"max_props must be positive, got {max_props}")
    if max_props > MAX_PROPS:
        raise ValueError(
            f"max_props={max_props}: semantic deduplication enumerates "
            f"2^(2^n) objects and is infeasible beyond n={MAX_PROPS}"
        )
    for n in range(1, max_props + 1):
        universe = expression_universe(n)
        cap = max_exprs if max_exprs is not None else n
        cap = min(cap, len(universe))
        seen: set[int] = set()
        start = 0 if include_trivial else 1
        for size in range(start, cap + 1):
            for subset in combinations(universe, size):
                universals = frozenset(
                    e for e in subset if isinstance(e, UniversalHorn)
                )
                existentials = frozenset(
                    e for e in subset if isinstance(e, ExistentialConjunction)
                )
                for require_guarantees in guarantees:
                    query = QhornQuery(
                        n=n,
                        universals=universals,
                        existentials=existentials,
                        require_guarantees=require_guarantees,
                    )
                    if not _in_kind(query, kind):
                        continue
                    signature = query_signature(query)
                    if signature in seen:
                        continue
                    seen.add(signature)
                    yield EnumeratedQuery(
                        id=_content_id(f"q{n}", query_to_dict(query)),
                        query=query,
                        signature=signature,
                    )


# ----------------------------------------------------------------------
# Store space
# ----------------------------------------------------------------------
def store_vocabulary(n: int, flavor: str = "bool") -> Vocabulary:
    """The concretization vocabulary for enumerated stores.

    ``bool``: ``n`` independent Boolean attributes (``BoolIs`` over
    ``b1..bn``) — masks are rows, the property-suite convention.
    ``mixed``: proposition types cycle Boolean / category equality /
    integer comparison, so enumerated stores also exercise the typed
    predicate rendering of the SQL backends.
    """
    if flavor not in STORE_VOCABULARIES:
        raise ValueError(
            f"unknown store vocabulary {flavor!r}; "
            f"choices: {', '.join(STORE_VOCABULARIES)}"
        )
    attributes: list[Attribute] = []
    propositions = []
    for i in range(n):
        if flavor == "bool" or i % 3 == 0:
            attributes.append(Attribute.boolean(f"b{i + 1}"))
            propositions.append(BoolIs(f"b{i + 1}"))
        elif i % 3 == 1:
            attributes.append(
                Attribute.category(f"c{i + 1}", universe=("dark", "milk"))
            )
            propositions.append(Equals(f"c{i + 1}", "dark"))
        else:
            attributes.append(Attribute.integer(f"v{i + 1}"))
            propositions.append(LessThan(f"v{i + 1}", 10))
    schema = FlatSchema(name=f"{flavor}{n}", attributes=tuple(attributes))
    return Vocabulary(schema, propositions)


def _row_for_mask(
    vocabulary: Vocabulary, mask: int
) -> dict[str, object]:
    """One concrete row whose abstraction under ``vocabulary`` is
    exactly ``mask`` (each proposition decided independently)."""
    row: dict[str, object] = {}
    for v, prop in enumerate(vocabulary.propositions):
        want = bool(mask >> v & 1)
        if isinstance(prop, BoolIs):
            row[prop.attribute] = want is prop.value
        elif isinstance(prop, Equals):
            row[prop.attribute] = prop.constant if want else "milk"
        elif isinstance(prop, LessThan):
            row[prop.attribute] = (
                int(prop.constant) - 5 if want else int(prop.constant) + 5
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"no concretization for {type(prop).__name__}")
    return row


@dataclass(frozen=True)
class EnumeratedStore:
    """One point of the bounded store space: object abstractions only —
    concrete rows materialize per vocabulary via :meth:`relation`."""

    id: str
    n: int
    #: Sorted masks per object; objects in canonical order.
    objects: tuple[tuple[int, ...], ...]

    @property
    def mask_sets(self) -> list[frozenset[int]]:
        return [frozenset(masks) for masks in self.objects]

    def relation(
        self, vocabulary: Vocabulary
    ) -> NestedRelation:
        """Concretize under ``vocabulary`` (one row per mask, object
        keys positional)."""
        schema = NestedSchema(
            name=f"store_{self.id.replace('-', '_')}",
            embedded=vocabulary.schema,
        )
        relation = NestedRelation(schema)
        for index, masks in enumerate(self.objects):
            relation.add_object(
                f"obj-{index}",
                rows=[_row_for_mask(vocabulary, m) for m in masks],
            )
        return relation

    def to_record(self) -> dict:
        return {
            "kind": "store",
            "id": self.id,
            "n": self.n,
            "objects": [list(masks) for masks in self.objects],
        }


def enumerate_stores(
    n: int,
    max_objects: int,
    max_rows: int | None = 2,
    include_empty_object: bool = True,
) -> Iterator[EnumeratedStore]:
    """Every relation (up to object order) with ``≤ max_objects``
    objects over ``n`` variables, each object ``≤ max_rows`` distinct
    rows (``None``: the full ``2^n`` tuple space per object).

    The empty relation and (by default) empty objects are included —
    both are boundary cases the guarantee-clause semantics care about.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    universe_cap = 1 << n
    row_cap = universe_cap if max_rows is None else min(max_rows, universe_cap)
    object_universe: list[tuple[int, ...]] = []
    start = 0 if include_empty_object else 1
    for size in range(start, row_cap + 1):
        for masks in combinations(range(universe_cap), size):
            object_universe.append(masks)
    for count in range(max_objects + 1):
        for objects in combinations_with_replacement(object_universe, count):
            yield EnumeratedStore(
                id=_content_id(f"s{n}", [list(m) for m in objects]),
                n=n,
                objects=objects,
            )
