"""The ``repro enumerate`` run loop: orchestration + JSONL corpus IO.

One run walks the bounded spaces from :mod:`repro.enumerate.space`,
drives every leg of the :class:`~repro.enumerate.differ.MatrixSpec`
through :func:`~repro.enumerate.differ.check_learners` /
:func:`~repro.enumerate.differ.check_backends`, and appends one JSONL
record per unit of work to the corpus file:

``meta``
    the run configuration (first line);
``query`` / ``store``
    the enumerated spaces themselves — ``query`` records double as
    scenarios for ``repro.server.loadgen --scenario``;
``learner``
    per-query matrix verdict with question/round counts and the paper
    bounds they were checked against;
``instance``
    per-(query, store) backend-matrix verdict;
``divergence``
    any disagreement, with a shrunk witness;
``summary``
    exhaustive coverage counts (last line).

Because every record carries the stable content-hash id of its subject,
``--resume`` replays the corpus file, collects the ids already verified
and appends only the remainder — a checkpointed exhaustive sweep.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, TextIO

from repro.enumerate.differ import (
    BACKEND_LEGS,
    Divergence,
    MatrixSpec,
    _build_backend,
    check_backends,
    check_learners,
)
from repro.enumerate.space import (
    EnumeratedQuery,
    enumerate_queries,
    enumerate_stores,
    store_vocabulary,
)

__all__ = ["RunConfig", "RunResult", "load_done", "run"]


@dataclass(frozen=True)
class RunConfig:
    """Everything ``repro enumerate`` needs to reproduce a run."""

    max_props: int = 2
    max_objects: int = 2
    max_rows: int = 2
    max_exprs: int | None = None
    vocab: str = "bool"
    guarantees: str = "true"  # "true" | "both"
    matrix: str = "full"
    parallel: int = 2
    progress_every: int = 25

    def matrix_spec(self) -> MatrixSpec:
        spec = MatrixSpec.parse(self.matrix)
        if self.parallel == 0:
            spec = spec.without_pool()
        if not _numpy_available():
            spec = spec.without_numpy()
        return spec

    def guarantee_values(self) -> tuple[bool, ...]:
        return (True,) if self.guarantees == "true" else (True, False)

    def to_record(self) -> dict:
        return {
            "kind": "meta",
            "max_props": self.max_props,
            "max_objects": self.max_objects,
            "max_rows": self.max_rows,
            "max_exprs": self.max_exprs,
            "vocab": self.vocab,
            "guarantees": self.guarantees,
            "matrix": self.matrix,
            "parallel": self.parallel,
        }


@dataclass
class RunResult:
    """Coverage counters; ``summary()`` is the run's last JSONL line."""

    queries: int = 0
    stores: int = 0
    pairs: int = 0
    learner_runs: int = 0
    backend_checks: int = 0
    max_questions: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    skipped: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> dict:
        return {
            "kind": "summary",
            "queries": self.queries,
            "stores": self.stores,
            "pairs": self.pairs,
            "learner_runs": self.learner_runs,
            "backend_checks": self.backend_checks,
            "max_questions": self.max_questions,
            "divergences": len(self.divergences),
            "skipped": self.skipped,
            "bound_ok": self.ok,
            "status": "ok" if self.ok else "divergent",
        }


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except Exception:
        return False
    return True


def load_done(path: str) -> tuple[set[str], set[tuple[str, str]]]:
    """Parse a partial corpus: ids already verified clean.

    Returns ``(learner_query_ids, (query_id, store_id) pairs)``.  Only
    ``status: ok`` records count — divergent work reruns.
    """
    learners: set[str] = set()
    pairs: set[tuple[str, str]] = set()
    try:
        handle = open(path, encoding="utf-8")
    except FileNotFoundError:
        return learners, pairs
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail line from an interrupted run
            if record.get("status") != "ok":
                continue
            if record.get("kind") == "learner":
                learners.add(record["id"])
            elif record.get("kind") == "instance":
                pairs.add((record["query"], record["store"]))
    return learners, pairs


def run(
    config: RunConfig,
    out: TextIO,
    resume: tuple[set[str], set[tuple[str, str]]] | None = None,
    progress: Callable[[str], None] | None = None,
) -> RunResult:
    """Execute one exhaustive sweep, appending JSONL records to ``out``."""
    matrix = config.matrix_spec()
    done_learners, done_pairs = resume if resume is not None else (set(), set())
    result = RunResult()

    def emit(record: dict) -> None:
        out.write(json.dumps(record, sort_keys=True) + "\n")

    def tick(message: str) -> None:
        if progress is not None:
            progress(message)

    emit(config.to_record())

    pool = None
    needs_pool = "pool" in matrix.parallel or "sharded-pool" in matrix.backends
    if needs_pool and config.parallel > 0:
        from repro.parallel import ShardWorkerPool

        pool = ShardWorkerPool(processes=config.parallel)
    try:
        queries_by_n: dict[int, list[EnumeratedQuery]] = {}
        for entry in enumerate_queries(
            config.max_props,
            max_exprs=config.max_exprs,
            guarantees=config.guarantee_values(),
        ):
            queries_by_n.setdefault(entry.n, []).append(entry)
            result.queries += 1
            emit(entry.to_record())
        tick(f"enumerated {result.queries} queries (n<={config.max_props})")

        # Learner matrix: per query, store-independent.
        done_units = 0
        for entries in queries_by_n.values():
            for entry in entries:
                if not entry.query.require_guarantees:
                    # Learners implement the paper's guarantee-clause
                    # semantics; a relaxed target is not in their
                    # hypothesis class (it differs exactly on
                    # witness-free objects).  Relaxed queries still run
                    # the full backend matrix below.
                    continue
                if entry.id in done_learners:
                    result.skipped += 1
                    continue
                report, divergences = check_learners(entry, matrix, pool)
                result.learner_runs += report["combos"]
                if report["questions"]:
                    result.max_questions = max(
                        result.max_questions, max(report["questions"].values())
                    )
                for divergence in divergences:
                    result.divergences.append(divergence)
                    emit(divergence.to_record())
                emit(report)
                done_units += 1
                if done_units % config.progress_every == 0:
                    tick(
                        f"learner matrix: {done_units} queries, "
                        f"{result.learner_runs} legs, "
                        f"{len(result.divergences)} divergences"
                    )
        tick(
            f"learner matrix done: {result.learner_runs} legs over "
            f"{result.queries} queries"
        )

        # Backend matrix: stores outer (backends build once per store).
        done_units = 0
        for n, entries in sorted(queries_by_n.items()):
            vocabulary = store_vocabulary(n, config.vocab)
            for store in enumerate_stores(
                n, config.max_objects, max_rows=config.max_rows
            ):
                result.stores += 1
                emit(store.to_record())
                pending = [
                    e for e in entries if (e.id, store.id) not in done_pairs
                ]
                result.skipped += len(entries) - len(pending)
                result.pairs += len(entries)
                if not pending:
                    continue
                relation = store.relation(vocabulary)
                backends = {
                    leg: _build_backend(leg, relation, vocabulary, pool)
                    for leg in matrix.backends
                    if leg in BACKEND_LEGS
                }
                try:
                    for entry in pending:
                        record, divergences = check_backends(
                            entry, store, backends, relation, vocabulary
                        )
                        result.backend_checks += len(backends)
                        for divergence in divergences:
                            result.divergences.append(divergence)
                            emit(divergence.to_record())
                        emit(record)
                        done_units += 1
                        if done_units % config.progress_every == 0:
                            tick(
                                f"backend matrix: {done_units} pairs, "
                                f"{result.backend_checks} checks, "
                                f"{len(result.divergences)} divergences"
                            )
                finally:
                    for backend in backends.values():
                        close = getattr(backend, "close", None)
                        if close is not None:
                            try:
                                close()
                            except Exception:
                                pass
        tick(
            f"backend matrix done: {result.backend_checks} checks over "
            f"{result.pairs} pairs ({result.stores} stores)"
        )
    finally:
        if pool is not None:
            pool.close()

    emit(result.summary())
    return result


def iter_records(path: str) -> Iterator[dict[str, Any]]:
    """Stream a corpus file's JSON records (skipping torn lines)."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (`python -m repro.enumerate.runner`);
    ``repro enumerate`` wraps this with the shared CLI surface."""
    from repro.cli import build_enumerate_parser

    parser = build_enumerate_parser()
    args = parser.parse_args(argv)
    return run_from_args(args)


def run_from_args(args: Any) -> int:
    """Shared driver for ``repro enumerate`` and ``python -m``."""
    config = RunConfig(
        max_props=args.max_props,
        max_objects=args.max_objects,
        max_rows=args.max_rows,
        max_exprs=args.max_exprs,
        vocab=args.vocab,
        guarantees=args.guarantees,
        matrix=args.matrix,
        parallel=args.parallel,
        progress_every=args.progress_every,
    )
    resume = None
    if args.out is not None and args.resume:
        resume = load_done(args.out)
        skipping = len(resume[0]) + len(resume[1])
        if skipping:
            print(
                f"resuming: {len(resume[0])} queries / {len(resume[1])} "
                "pairs already verified",
                file=sys.stderr,
            )

    def progress(message: str) -> None:
        print(f"enumerate: {message}", file=sys.stderr)

    if args.out is None:
        import io

        sink: TextIO = io.StringIO()  # corpus discarded, summary kept
        result = run(config, sink, resume=resume, progress=progress)
    else:
        mode = "a" if args.resume else "w"
        with open(args.out, mode, encoding="utf-8") as sink:
            result = run(config, sink, resume=resume, progress=progress)
    print(json.dumps(result.summary(), sort_keys=True))
    return 0 if result.ok else 1
